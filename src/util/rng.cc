#include "util/rng.h"

#include "util/logging.h"

namespace atum {

uint64_t
Rng::Next64()
{
    // SplitMix64 (Steele, Lea, Flood 2014): passes BigCrush, two ALU ops
    // per 64 bits, and trivially seedable -- ideal for reproducible sims.
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint32_t
Rng::Below(uint32_t bound)
{
    if (bound == 0)
        Panic("Rng::Below called with bound 0");
    // Multiply-shift rejection-free mapping; bias is < 2^-32, far below
    // anything observable in our workload sizes.
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(Next32()) * bound) >> 32);
}

uint32_t
Rng::Range(uint32_t lo, uint32_t hi)
{
    if (lo > hi)
        Panic("Rng::Range called with lo > hi");
    return lo + Below(hi - lo + 1);
}

double
Rng::NextDouble()
{
    return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

}  // namespace atum
