#ifndef ATUM_UTIL_TABLE_H_
#define ATUM_UTIL_TABLE_H_

/**
 * @file
 * A simple fixed-column text table used by the benchmark harnesses to print
 * paper-style result tables (and CSV for downstream plotting).
 */

#include <string>
#include <vector>

namespace atum {

/**
 * Collects rows of strings and renders them with aligned columns.
 *
 * Example:
 *   Table t({"cache", "miss%"});
 *   t.AddRow({"16K", "4.2"});
 *   std::cout << t.ToString();
 */
class Table
{
  public:
    /** Creates a table with the given column headers. */
    explicit Table(std::vector<std::string> headers);

    /** Appends one row; must have exactly as many cells as headers. */
    void AddRow(std::vector<std::string> cells);

    /** Formats a double with `prec` digits after the decimal point. */
    static std::string Fmt(double v, int prec = 3);

    /** Renders with space-aligned columns and a header separator line. */
    std::string ToString() const;

    /** Renders as comma-separated values (header row first). */
    std::string ToCsv() const;

    size_t NumRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

}  // namespace atum

#endif  // ATUM_UTIL_TABLE_H_
