#ifndef ATUM_UTIL_RNG_H_
#define ATUM_UTIL_RNG_H_

/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * The simulator must be bit-reproducible, so all randomness flows through
 * explicitly seeded Rng instances (SplitMix64); there is no global RNG
 * state anywhere in atum.
 */

#include <cstdint>

namespace atum {

/** A small, fast, deterministic generator (SplitMix64). Copyable. */
class Rng
{
  public:
    /** Creates a generator with the given seed; equal seeds ⇒ equal streams. */
    explicit Rng(uint64_t seed) : state_(seed) {}

    /** Returns the next 64 pseudo-random bits. */
    uint64_t Next64();

    /** Returns the next 32 pseudo-random bits. */
    uint32_t Next32() { return static_cast<uint32_t>(Next64() >> 32); }

    /** Returns a value uniformly distributed in [0, bound); bound > 0. */
    uint32_t Below(uint32_t bound);

    /** Returns a value uniformly distributed in [lo, hi]; lo <= hi. */
    uint32_t Range(uint32_t lo, uint32_t hi);

    /** Returns a double uniformly distributed in [0, 1). */
    double NextDouble();

  private:
    uint64_t state_;
};

}  // namespace atum

#endif  // ATUM_UTIL_RNG_H_
