#ifndef ATUM_UTIL_JSON_H_
#define ATUM_UTIL_JSON_H_

/**
 * @file
 * Minimal JSON support for the observability layer: a streaming writer
 * (metrics JSONL, BENCH_*.json, RUN.json manifests) and a small
 * recursive-descent parser (atum-top, schema tests). Deliberately tiny —
 * no external dependency, no DOM mutation API, doubles for all numbers
 * on the read side (counters in practice stay far below 2^53).
 */

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "util/status.h"

namespace atum::util {

/** Escapes `s` for inclusion inside a JSON string literal (no quotes). */
std::string JsonEscape(const std::string& s);

/**
 * Appends JSON tokens to an owned string. The caller supplies structure
 * (Begin/End pairs); the writer handles comma placement and escaping.
 * Misuse (unbalanced Begin/End) is the caller's bug, not checked here.
 */
class JsonWriter
{
  public:
    void BeginObject();
    void EndObject();
    void BeginArray();
    void EndArray();

    /** Emits `"key":` inside an object; follow with a value call. */
    void Key(const std::string& key);

    void Value(const std::string& s);
    void Value(const char* s);
    void Value(bool b);
    void Value(uint64_t v);
    void Value(int64_t v);
    void Value(uint32_t v) { Value(static_cast<uint64_t>(v)); }
    void Value(int v) { Value(static_cast<int64_t>(v)); }
    /** Doubles are emitted with enough digits to round-trip; NaN and
     *  infinities (not representable in JSON) are emitted as null. */
    void Value(double d);
    void Null();

    /**
     * Splices `json` — one pre-serialized JSON value — verbatim into the
     * stream. For canonical sub-documents that must not be re-encoded
     * (the serve sweep rows are compared byte-for-byte across crash
     * recovery); the caller guarantees the bytes are valid JSON.
     */
    void RawValue(const std::string& json);

    /** Key+value in one call. */
    template <typename T>
    void KeyValue(const std::string& key, T&& value)
    {
        Key(key);
        Value(std::forward<T>(value));
    }

    const std::string& str() const { return out_; }
    std::string TakeStr() { return std::move(out_); }

  private:
    void Comma();

    std::string out_;
    /** Whether a value was already written at the current nesting depth
     *  (one bit per depth; depth 0 is the top level). */
    std::vector<bool> need_comma_ = {false};
};

/** A parsed JSON value (immutable tree). */
class JsonValue
{
  public:
    enum class Kind : uint8_t {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject,
    };

    Kind kind() const { return kind_; }
    bool is_null() const { return kind_ == Kind::kNull; }
    bool is_object() const { return kind_ == Kind::kObject; }
    bool is_array() const { return kind_ == Kind::kArray; }
    bool is_number() const { return kind_ == Kind::kNumber; }
    bool is_string() const { return kind_ == Kind::kString; }
    bool is_bool() const { return kind_ == Kind::kBool; }

    /** Value accessors; wrong-kind access returns a zero value. */
    bool AsBool() const { return kind_ == Kind::kBool && bool_; }
    double AsDouble() const { return kind_ == Kind::kNumber ? num_ : 0.0; }
    uint64_t AsU64() const;
    const std::string& AsString() const { return str_; }
    const std::vector<JsonValue>& AsArray() const { return array_; }
    const std::map<std::string, JsonValue>& AsObject() const
    {
        return object_;
    }

    /** Object member lookup; returns null-kind value when absent. */
    const JsonValue& Get(const std::string& key) const;
    bool Has(const std::string& key) const
    {
        return object_.find(key) != object_.end();
    }

    /**
     * Parses one JSON document. Trailing garbage after the document is
     * an error (a JSONL line holds exactly one document).
     */
    static StatusOr<JsonValue> Parse(const std::string& text);

  private:
    friend class JsonParser;

    Kind kind_ = Kind::kNull;
    bool bool_ = false;
    double num_ = 0.0;
    std::string str_;
    std::vector<JsonValue> array_;
    std::map<std::string, JsonValue> object_;
};

}  // namespace atum::util

#endif  // ATUM_UTIL_JSON_H_
