#ifndef ATUM_UTIL_BITOPS_H_
#define ATUM_UTIL_BITOPS_H_

/**
 * @file
 * Small bit-manipulation helpers shared across the simulator.
 */

#include <cstdint>

namespace atum {

/** Returns true iff `v` is a (nonzero) power of two. */
constexpr bool
IsPowerOfTwo(uint64_t v)
{
    return v != 0 && (v & (v - 1)) == 0;
}

/** Returns floor(log2(v)); v must be nonzero. */
constexpr unsigned
Log2Floor(uint64_t v)
{
    unsigned r = 0;
    while (v >>= 1)
        ++r;
    return r;
}

/** Rounds `v` down to a multiple of power-of-two `align`. */
constexpr uint64_t
AlignDown(uint64_t v, uint64_t align)
{
    return v & ~(align - 1);
}

/** Rounds `v` up to a multiple of power-of-two `align`. */
constexpr uint64_t
AlignUp(uint64_t v, uint64_t align)
{
    return (v + align - 1) & ~(align - 1);
}

/** Extracts bits [lo, hi] (inclusive) of `v`, right-justified. */
constexpr uint32_t
Bits(uint32_t v, unsigned hi, unsigned lo)
{
    return (v >> lo) & ((hi - lo == 31u) ? ~0u : ((1u << (hi - lo + 1)) - 1));
}

/** Sign-extends the low `bits` bits of `v` to 32 bits. */
constexpr int32_t
SignExtend(uint32_t v, unsigned bits)
{
    const uint32_t m = 1u << (bits - 1);
    return static_cast<int32_t>((v ^ m) - m);
}

}  // namespace atum

#endif  // ATUM_UTIL_BITOPS_H_
