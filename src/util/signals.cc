#include "util/signals.h"

#include <cerrno>
#include <cstdio>

#include "util/status.h"

namespace atum::util {

namespace {

volatile std::sig_atomic_t* g_stop_flag = nullptr;

extern "C" void
StopHandler(int signum)
{
    if (g_stop_flag != nullptr)
        *g_stop_flag = signum;
}

}  // namespace

void
IgnoreSigpipe()
{
#ifdef SIGPIPE
    std::signal(SIGPIPE, SIG_IGN);
#endif
}

void
InstallStopSignalHandlers(volatile std::sig_atomic_t* flag)
{
    g_stop_flag = flag;
    std::signal(SIGINT, StopHandler);
    std::signal(SIGTERM, StopHandler);
}

int
FinishStdout(int code)
{
    errno = 0;
    if (std::fflush(stdout) == 0 && !std::ferror(stdout))
        return code;
    // EPIPE: the reader closed the pipe after taking what it needed
    // (| head); that is success, not an error worth a dirty exit.
    if (errno == EPIPE)
        return code == kExitOk ? kExitOk : code;
    return code == kExitOk ? kExitIo : code;
}

}  // namespace atum::util
