#ifndef ATUM_UTIL_SERIALIZE_H_
#define ATUM_UTIL_SERIALIZE_H_

/**
 * @file
 * Bounded little-endian state serialization: StateWriter / StateReader.
 *
 * The checkpoint subsystem (core/checkpoint.h) snapshots every layer of
 * the machine — CPU, physical memory, MMU/TLB, tracer counters — through
 * Save(StateWriter&)/Restore(StateReader&) hooks. The writer is an
 * append-only byte buffer; the reader is bounds-checked and *latching*:
 * the first overrun or failed validation records a data-loss Status,
 * every later read returns zero, and the caller checks status() once at
 * the end instead of threading a Status through every field. No byte of
 * a corrupt checkpoint can crash the process.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"

namespace atum::util {

/** Append-only little-endian byte buffer. */
class StateWriter
{
  public:
    void U8(uint8_t v) { bytes_.push_back(v); }
    void U16(uint16_t v)
    {
        U8(static_cast<uint8_t>(v));
        U8(static_cast<uint8_t>(v >> 8));
    }
    void U32(uint32_t v)
    {
        U16(static_cast<uint16_t>(v));
        U16(static_cast<uint16_t>(v >> 16));
    }
    void U64(uint64_t v)
    {
        U32(static_cast<uint32_t>(v));
        U32(static_cast<uint32_t>(v >> 32));
    }
    void Bool(bool v) { U8(v ? 1 : 0); }

    /** Raw bytes, no length prefix (fixed-size fields). */
    void Bytes(const void* data, size_t len);

    /** u32 length prefix + bytes. */
    void Blob(const void* data, size_t len);
    void Str(const std::string& s) { Blob(s.data(), s.size()); }

    const std::vector<uint8_t>& bytes() const { return bytes_; }
    std::vector<uint8_t> Take() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Bounds-checked reader over a borrowed buffer; errors latch. */
class StateReader
{
  public:
    StateReader(const uint8_t* data, size_t len) : data_(data), len_(len) {}
    explicit StateReader(const std::vector<uint8_t>& bytes)
        : StateReader(bytes.data(), bytes.size())
    {
    }

    uint8_t U8();
    uint16_t U16();
    uint32_t U32();
    uint64_t U64();
    bool Bool() { return U8() != 0; }

    /** Copies `len` raw bytes out; zero-fills on overrun. */
    void Bytes(void* dst, size_t len);

    /** Reads a u32-length-prefixed blob; empty on overrun. */
    std::vector<uint8_t> Blob();
    std::string Str();

    /**
     * Latches a validation failure found by the caller (e.g. a geometry
     * mismatch), so Restore hooks can flag bad fields without extra
     * plumbing. The first latched error wins.
     */
    void Fail(Status status);

    size_t remaining() const { return len_ - pos_; }
    bool AtEnd() const { return pos_ == len_; }

    /** OK until the first overrun or Fail(); kDataLoss afterwards. */
    const Status& status() const { return status_; }
    bool ok() const { return status_.ok(); }

  private:
    bool Need(size_t n);

    const uint8_t* data_;
    size_t len_;
    size_t pos_ = 0;
    Status status_;
};

}  // namespace atum::util

#endif  // ATUM_UTIL_SERIALIZE_H_
