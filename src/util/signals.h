#ifndef ATUM_UTIL_SIGNALS_H_
#define ATUM_UTIL_SIGNALS_H_

/**
 * @file
 * Process-signal plumbing shared by the command-line tools.
 *
 * Two concerns live here:
 *
 *  - *Broken pipes.* `atum-report trace.atum | head` must exit cleanly,
 *    not die with SIGPIPE, so tools ignore the signal and instead notice
 *    the EPIPE write error when flushing stdout at exit. A broken pipe
 *    means the consumer got everything it wanted — it is a success.
 *
 *  - *Graceful shutdown.* A long capture interrupted with SIGINT/SIGTERM
 *    must stop at a safe drain boundary, seal its trace and write a final
 *    checkpoint instead of dying mid-chunk. The handler installed here
 *    only latches the signal number into a sig_atomic_t flag; the
 *    supervised session loop (core/session.h) polls it between
 *    instructions.
 */

#include <csignal>

namespace atum::util {

/** Ignores SIGPIPE so piped tools see EPIPE write errors instead. */
void IgnoreSigpipe();

/**
 * Installs SIGINT and SIGTERM handlers that store the signal number into
 * `*flag` (which must have static storage duration and outlive the
 * handlers). Repeated signals simply re-latch; the second Ctrl-C does not
 * force a hard kill — use SIGKILL for that.
 */
void InstallStopSignalHandlers(volatile std::sig_atomic_t* flag);

/**
 * Flushes stdout and returns the exit code a tool should use: `code`
 * normally, but a clean 0 when the only failure was a broken pipe
 * (the `| head` case), and an I/O exit code when the flush failed for
 * a real reason while `code` claimed success.
 */
int FinishStdout(int code);

}  // namespace atum::util

#endif  // ATUM_UTIL_SIGNALS_H_
