#ifndef ATUM_REPLAY_SWEEP_H_
#define ATUM_REPLAY_SWEEP_H_

/**
 * @file
 * Parallel multi-configuration trace replay. One captured trace is read
 * by many simulator configurations at once: the record vector is shared
 * read-only, each worker owns a private simulator (Cache + driver,
 * CacheHierarchy, or TlbSim), and results land in a pre-sized table slot
 * keyed by input position. Nothing on the hot path takes a lock, and the
 * output is bit-identical to running the same configs serially in input
 * order — replay order across configs is irrelevant because configs
 * never interact.
 */

#include <csignal>
#include <cstdint>
#include <string>
#include <vector>

#include "cache/cache.h"
#include "cache/hierarchy.h"
#include "cache/trace_driver.h"
#include "tlbsim/tlb_sim.h"
#include "trace/record.h"
#include "util/status.h"

namespace atum::replay {

/** One replay job: which simulator to run over the shared trace. */
struct SweepConfig {
    enum class Kind : uint8_t { kCache, kHierarchy, kTlb };

    Kind kind = Kind::kCache;
    std::string label;  ///< row label in reports (defaults to a config string)

    // kCache: a single cache behind the record filter/discipline driver.
    cache::CacheConfig cache;
    cache::DriverOptions driver;

    // kHierarchy: split L1s + unified L2.
    cache::HierarchyConfig hierarchy;

    // kTlb: translation-buffer simulation.
    tlbsim::TlbSimConfig tlb;
};

/** Builds a kCache job. */
SweepConfig MakeCacheJob(const cache::CacheConfig& cache,
                         const cache::DriverOptions& driver = {},
                         std::string label = {});
/** Builds a kHierarchy job. */
SweepConfig MakeHierarchyJob(const cache::HierarchyConfig& hierarchy,
                             std::string label = {});
/** Builds a kTlb job. */
SweepConfig MakeTlbJob(const tlbsim::TlbSimConfig& tlb,
                       std::string label = {});

/** Final statistics of one job, at the same index as its SweepConfig. */
struct SweepResult {
    SweepConfig::Kind kind = SweepConfig::Kind::kCache;
    std::string label;

    /**
     * Per-row outcome. A config that fails validation (or whose simulator
     * throws) reports its error here with zeroed statistics; the other
     * rows of the sweep are unaffected.
     */
    util::Status status;

    // kCache
    cache::CacheStats cache_stats;
    uint64_t fed = 0;       ///< records accepted by the driver filters
    uint64_t filtered = 0;  ///< records rejected by the driver filters

    // kHierarchy
    cache::CacheStats l1i_stats;
    cache::CacheStats l1d_stats;
    cache::CacheStats l2_stats;
    uint64_t hierarchy_accesses = 0;
    uint64_t memory_accesses = 0;
    double global_miss_rate = 0.0;
    double amat = 0.0;

    // kTlb
    tlbsim::TlbSimStats tlb_stats;

    /** The job's headline miss rate, whatever its kind. */
    double MissRate() const;
};

/**
 * Slice-boundary controls for one config's replay. The record loop
 * checks them every `slice_records` records, so a long replay can be
 * stopped (serve cancellation/drain) or bounded in wall time (per-config
 * timeout) without any cost on the per-record hot path beyond a masked
 * counter test. Both default off; the default-constructed control is the
 * legacy unbounded replay.
 */
struct ReplayControl {
    /** Cooperative stop latch; non-zero stops at the next slice with
     *  status kInterrupted. May be null. */
    volatile std::sig_atomic_t* stop_flag = nullptr;
    /** Wall-clock budget for this one config; 0 = unbounded. Exceeding
     *  it stops at the next slice with status kUnavailable (the row is
     *  retryable, unlike a bad geometry). */
    uint64_t deadline_ms = 0;
    /** Records between control checks (power of two; default 4096). */
    uint32_t slice_records = 4096;
};

/** Replays one job over `records` serially (the legacy inner loop). */
SweepResult ReplayOne(const std::vector<trace::Record>& records,
                      const SweepConfig& config);

/** ReplayOne with slice-boundary cancellation and a wall-clock budget.
 *  A stopped or timed-out replay reports it in the row's status with
 *  zeroed statistics; partial simulator state is never published. */
SweepResult ReplayOne(const std::vector<trace::Record>& records,
                      const SweepConfig& config,
                      const ReplayControl& control);

/**
 * Evaluates many configurations over one in-memory trace concurrently.
 * Results are returned in input order regardless of which worker
 * finished first, and are bit-identical to calling ReplayOne in a loop.
 */
class SweepRunner
{
  public:
    /** `jobs` worker threads; 0 means one per hardware thread. */
    explicit SweepRunner(unsigned jobs = 0) : jobs_(jobs) {}

    std::vector<SweepResult> Run(
        const std::vector<trace::Record>& records,
        const std::vector<SweepConfig>& configs) const;

  private:
    unsigned jobs_;
};

}  // namespace atum::replay

#endif  // ATUM_REPLAY_SWEEP_H_
