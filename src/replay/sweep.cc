#include "replay/sweep.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "obs/spans.h"
#include "replay/thread_pool.h"

namespace atum::replay {

SweepConfig
MakeCacheJob(const cache::CacheConfig& cache,
             const cache::DriverOptions& driver, std::string label)
{
    SweepConfig job;
    job.kind = SweepConfig::Kind::kCache;
    job.cache = cache;
    job.driver = driver;
    job.label = label.empty() ? cache.ToString() : std::move(label);
    return job;
}

SweepConfig
MakeHierarchyJob(const cache::HierarchyConfig& hierarchy, std::string label)
{
    SweepConfig job;
    job.kind = SweepConfig::Kind::kHierarchy;
    job.hierarchy = hierarchy;
    job.label = label.empty() ? "L2 " + hierarchy.l2.ToString()
                              : std::move(label);
    return job;
}

SweepConfig
MakeTlbJob(const tlbsim::TlbSimConfig& tlb, std::string label)
{
    SweepConfig job;
    job.kind = SweepConfig::Kind::kTlb;
    job.tlb = tlb;
    job.label = label.empty()
                    ? "tlb " + std::to_string(tlb.entries) + "e"
                    : std::move(label);
    return job;
}

double
SweepResult::MissRate() const
{
    switch (kind) {
      case SweepConfig::Kind::kCache:
        return cache_stats.MissRate();
      case SweepConfig::Kind::kHierarchy:
        return global_miss_rate;
      case SweepConfig::Kind::kTlb:
        return tlb_stats.MissRate();
    }
    return 0.0;
}

namespace {

/** Geometry checks for every simulator the job would construct. */
util::Status
ValidateJob(const SweepConfig& config)
{
    switch (config.kind) {
      case SweepConfig::Kind::kCache:
        return cache::ValidateConfig(config.cache);
      case SweepConfig::Kind::kHierarchy:
        if (util::Status s = cache::ValidateConfig(config.hierarchy.l1i);
            !s.ok())
            return util::InvalidArgument("l1i: ", s.message());
        if (util::Status s = cache::ValidateConfig(config.hierarchy.l1d);
            !s.ok())
            return util::InvalidArgument("l1d: ", s.message());
        if (util::Status s = cache::ValidateConfig(config.hierarchy.l2);
            !s.ok())
            return util::InvalidArgument("l2: ", s.message());
        return util::OkStatus();
      case SweepConfig::Kind::kTlb:
        return tlbsim::ValidateConfig(config.tlb);
    }
    return util::InvalidArgument("unknown sweep job kind");
}

/**
 * Watches the slice-boundary stop conditions for one config's replay.
 * The deadline is sampled lazily: the clock is only read at slice
 * boundaries, and only when a deadline is set at all, so the
 * control-free replay pays nothing but a masked counter test.
 */
class ReplayGovernor
{
  public:
    explicit ReplayGovernor(const ReplayControl& control)
        : control_(control),
          mask_(control.slice_records > 0 ? control.slice_records - 1
                                          : 4095),
          armed_(control.stop_flag != nullptr || control.deadline_ms > 0)
    {
        if (control_.deadline_ms > 0)
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(control_.deadline_ms);
    }

    /** True when the replay must stop; Verdict() then says why. */
    bool ShouldStop(uint64_t index)
    {
        if (!armed_ || (index & mask_) != 0)
            return false;
        if (control_.stop_flag != nullptr && *control_.stop_flag != 0) {
            verdict_ = util::Interrupted("replay stopped at record ",
                                         index, " of a sweep config");
            return true;
        }
        if (control_.deadline_ms > 0 &&
            std::chrono::steady_clock::now() >= deadline_) {
            verdict_ = util::Unavailable("replay timed out after ",
                                         control_.deadline_ms,
                                         " ms at record ", index);
            return true;
        }
        return false;
    }

    const util::Status& Verdict() const { return verdict_; }

  private:
    const ReplayControl& control_;
    const uint64_t mask_;
    const bool armed_;
    std::chrono::steady_clock::time_point deadline_;
    util::Status verdict_;
};

/** The legacy replay body; runs after ValidateJob has passed. Returns
 *  non-OK (leaving the result to be zeroed by the caller) when the
 *  control stopped the replay early. */
util::Status
ReplayOneChecked(const std::vector<trace::Record>& records,
                 const SweepConfig& config, const ReplayControl& control,
                 SweepResult& result)
{
    ReplayGovernor governor(control);
    switch (config.kind) {
      case SweepConfig::Kind::kCache: {
        cache::Cache c(config.cache);
        cache::TraceCacheDriver driver(c, config.driver);
        for (uint64_t i = 0; i < records.size(); ++i) {
            if (governor.ShouldStop(i))
                return governor.Verdict();
            driver.Feed(records[i]);
        }
        result.cache_stats = c.stats();
        result.fed = driver.fed();
        result.filtered = driver.filtered();
        break;
      }
      case SweepConfig::Kind::kHierarchy: {
        cache::CacheHierarchy h(config.hierarchy);
        for (uint64_t i = 0; i < records.size(); ++i) {
            if (governor.ShouldStop(i))
                return governor.Verdict();
            h.Feed(records[i]);
        }
        result.l1i_stats = h.l1i().stats();
        result.l1d_stats = h.l1d().stats();
        result.l2_stats = h.l2().stats();
        result.hierarchy_accesses = h.accesses();
        result.memory_accesses = h.memory_accesses();
        result.global_miss_rate = h.GlobalMissRate();
        result.amat = h.Amat();
        break;
      }
      case SweepConfig::Kind::kTlb: {
        tlbsim::TlbSim sim(config.tlb);
        for (uint64_t i = 0; i < records.size(); ++i) {
            if (governor.ShouldStop(i))
                return governor.Verdict();
            sim.Feed(records[i]);
        }
        result.tlb_stats = sim.stats();
        break;
      }
    }
    return util::OkStatus();
}

}  // namespace

SweepResult
ReplayOne(const std::vector<trace::Record>& records,
          const SweepConfig& config)
{
    return ReplayOne(records, config, ReplayControl{});
}

SweepResult
ReplayOne(const std::vector<trace::Record>& records,
          const SweepConfig& config, const ReplayControl& control)
{
    SweepResult result;
    result.kind = config.kind;
    result.label = config.label;
    // Validate before constructing: the simulators Fatal on a bad
    // geometry, and one bad row must not take down a 100-config sweep.
    result.status = ValidateJob(config);
    if (!result.status.ok())
        return result;
    try {
        util::Status ran = ReplayOneChecked(records, config, control,
                                            result);
        if (!ran.ok()) {
            // Stopped early: partial simulator state must never read as
            // a finished row.
            result = SweepResult{};
            result.kind = config.kind;
            result.label = config.label;
            result.status = ran;
        }
    } catch (const std::exception& e) {
        result = SweepResult{};
        result.kind = config.kind;
        result.label = config.label;
        result.status = util::InternalError("replay failed: ", e.what());
    }
    return result;
}

std::vector<SweepResult>
SweepRunner::Run(const std::vector<trace::Record>& records,
                 const std::vector<SweepConfig>& configs) const
{
    std::vector<SweepResult> results(configs.size());
    if (configs.empty())
        return results;

    unsigned jobs = jobs_;
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    jobs = std::min<unsigned>(jobs, static_cast<unsigned>(configs.size()));

    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("replay.sweeps").Add(1);
    obs::Counter& configs_done = registry.GetCounter("replay.configs");
    obs::Gauge& active_workers = registry.GetGauge("replay.active_workers");
    obs::Histogram& config_wall_ms =
        registry.GetHistogram("replay.config_wall_ms");

    ATUM_SPAN_NAMED(sweep_span, "replay", "sweep.run");
    sweep_span.set_arg("configs", configs.size());
    sweep_span.set_arg("jobs", jobs);

    // Each task owns its simulator and writes one pre-sized result slot;
    // the trace is shared read-only. No synchronization on the hot path —
    // the metrics below are relaxed atomics, updated once per config.
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        pool.Submit([&records, &configs, &results, &configs_done,
                     &active_workers, &config_wall_ms, i] {
            ATUM_SPAN_NAMED(config_span, "replay", "sweep.config");
            config_span.set_detail(configs[i].label);
            active_workers.Add(1);
            const auto t0 = std::chrono::steady_clock::now();
            results[i] = ReplayOne(records, configs[i]);
            config_wall_ms.Add(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
            configs_done.Add(1);
            active_workers.Add(-1);
        });
    }
    pool.Wait();
    return results;
}

}  // namespace atum::replay
