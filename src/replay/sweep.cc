#include "replay/sweep.h"

#include <algorithm>
#include <chrono>
#include <exception>

#include "obs/metrics.h"
#include "replay/thread_pool.h"

namespace atum::replay {

SweepConfig
MakeCacheJob(const cache::CacheConfig& cache,
             const cache::DriverOptions& driver, std::string label)
{
    SweepConfig job;
    job.kind = SweepConfig::Kind::kCache;
    job.cache = cache;
    job.driver = driver;
    job.label = label.empty() ? cache.ToString() : std::move(label);
    return job;
}

SweepConfig
MakeHierarchyJob(const cache::HierarchyConfig& hierarchy, std::string label)
{
    SweepConfig job;
    job.kind = SweepConfig::Kind::kHierarchy;
    job.hierarchy = hierarchy;
    job.label = label.empty() ? "L2 " + hierarchy.l2.ToString()
                              : std::move(label);
    return job;
}

SweepConfig
MakeTlbJob(const tlbsim::TlbSimConfig& tlb, std::string label)
{
    SweepConfig job;
    job.kind = SweepConfig::Kind::kTlb;
    job.tlb = tlb;
    job.label = label.empty()
                    ? "tlb " + std::to_string(tlb.entries) + "e"
                    : std::move(label);
    return job;
}

double
SweepResult::MissRate() const
{
    switch (kind) {
      case SweepConfig::Kind::kCache:
        return cache_stats.MissRate();
      case SweepConfig::Kind::kHierarchy:
        return global_miss_rate;
      case SweepConfig::Kind::kTlb:
        return tlb_stats.MissRate();
    }
    return 0.0;
}

namespace {

/** Geometry checks for every simulator the job would construct. */
util::Status
ValidateJob(const SweepConfig& config)
{
    switch (config.kind) {
      case SweepConfig::Kind::kCache:
        return cache::ValidateConfig(config.cache);
      case SweepConfig::Kind::kHierarchy:
        if (util::Status s = cache::ValidateConfig(config.hierarchy.l1i);
            !s.ok())
            return util::InvalidArgument("l1i: ", s.message());
        if (util::Status s = cache::ValidateConfig(config.hierarchy.l1d);
            !s.ok())
            return util::InvalidArgument("l1d: ", s.message());
        if (util::Status s = cache::ValidateConfig(config.hierarchy.l2);
            !s.ok())
            return util::InvalidArgument("l2: ", s.message());
        return util::OkStatus();
      case SweepConfig::Kind::kTlb:
        return tlbsim::ValidateConfig(config.tlb);
    }
    return util::InvalidArgument("unknown sweep job kind");
}

/** The legacy replay body; runs after ValidateJob has passed. */
void
ReplayOneChecked(const std::vector<trace::Record>& records,
                 const SweepConfig& config, SweepResult& result)
{
    switch (config.kind) {
      case SweepConfig::Kind::kCache: {
        cache::Cache c(config.cache);
        cache::TraceCacheDriver driver(c, config.driver);
        for (const trace::Record& r : records)
            driver.Feed(r);
        result.cache_stats = c.stats();
        result.fed = driver.fed();
        result.filtered = driver.filtered();
        break;
      }
      case SweepConfig::Kind::kHierarchy: {
        cache::CacheHierarchy h(config.hierarchy);
        for (const trace::Record& r : records)
            h.Feed(r);
        result.l1i_stats = h.l1i().stats();
        result.l1d_stats = h.l1d().stats();
        result.l2_stats = h.l2().stats();
        result.hierarchy_accesses = h.accesses();
        result.memory_accesses = h.memory_accesses();
        result.global_miss_rate = h.GlobalMissRate();
        result.amat = h.Amat();
        break;
      }
      case SweepConfig::Kind::kTlb: {
        tlbsim::TlbSim sim(config.tlb);
        for (const trace::Record& r : records)
            sim.Feed(r);
        result.tlb_stats = sim.stats();
        break;
      }
    }
}

}  // namespace

SweepResult
ReplayOne(const std::vector<trace::Record>& records,
          const SweepConfig& config)
{
    SweepResult result;
    result.kind = config.kind;
    result.label = config.label;
    // Validate before constructing: the simulators Fatal on a bad
    // geometry, and one bad row must not take down a 100-config sweep.
    result.status = ValidateJob(config);
    if (!result.status.ok())
        return result;
    try {
        ReplayOneChecked(records, config, result);
    } catch (const std::exception& e) {
        result = SweepResult{};
        result.kind = config.kind;
        result.label = config.label;
        result.status = util::InternalError("replay failed: ", e.what());
    }
    return result;
}

std::vector<SweepResult>
SweepRunner::Run(const std::vector<trace::Record>& records,
                 const std::vector<SweepConfig>& configs) const
{
    std::vector<SweepResult> results(configs.size());
    if (configs.empty())
        return results;

    unsigned jobs = jobs_;
    if (jobs == 0)
        jobs = std::thread::hardware_concurrency();
    if (jobs == 0)
        jobs = 1;
    jobs = std::min<unsigned>(jobs, static_cast<unsigned>(configs.size()));

    obs::Registry& registry = obs::Registry::Global();
    registry.GetCounter("replay.sweeps").Add(1);
    obs::Counter& configs_done = registry.GetCounter("replay.configs");
    obs::Gauge& active_workers = registry.GetGauge("replay.active_workers");
    obs::Histogram& config_wall_ms =
        registry.GetHistogram("replay.config_wall_ms");

    // Each task owns its simulator and writes one pre-sized result slot;
    // the trace is shared read-only. No synchronization on the hot path —
    // the metrics below are relaxed atomics, updated once per config.
    ThreadPool pool(jobs);
    for (std::size_t i = 0; i < configs.size(); ++i) {
        pool.Submit([&records, &configs, &results, &configs_done,
                     &active_workers, &config_wall_ms, i] {
            active_workers.Add(1);
            const auto t0 = std::chrono::steady_clock::now();
            results[i] = ReplayOne(records, configs[i]);
            config_wall_ms.Add(static_cast<uint64_t>(
                std::chrono::duration_cast<std::chrono::milliseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count()));
            configs_done.Add(1);
            active_workers.Add(-1);
        });
    }
    pool.Wait();
    return results;
}

}  // namespace atum::replay
