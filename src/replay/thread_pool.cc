#include "replay/thread_pool.h"

namespace atum::replay {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;  // hardware_concurrency may report 0
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::Submit(std::function<void()> task)
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    work_cv_.notify_one();
}

void
ThreadPool::Wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::WorkerLoop()
{
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        std::function<void()> task = std::move(queue_.front());
        queue_.pop_front();
        ++active_;
        lock.unlock();
        try {
            task();
        } catch (...) {
            lock.lock();
            if (!first_error_)
                first_error_ = std::current_exception();
            lock.unlock();
        }
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idle_cv_.notify_all();
    }
}

}  // namespace atum::replay
