#include "replay/thread_pool.h"

#include "obs/spans.h"

namespace atum::replay {

ThreadPool::ThreadPool(unsigned threads)
{
    if (threads == 0)
        threads = std::thread::hardware_concurrency();
    if (threads == 0)
        threads = 1;  // hardware_concurrency may report 0
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back([this] { WorkerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mu_);
        stop_ = true;
    }
    work_cv_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::Submit(std::function<void()> task,
                   const CancellationToken* token)
{
    if (token != nullptr && token->cancelled()) {
        abandoned_.fetch_add(1, std::memory_order_relaxed);
        return;
    }
    {
        std::unique_lock<std::mutex> lock(mu_);
        queue_.push_back(Task{std::move(task), token});
    }
    work_cv_.notify_one();
}

std::size_t
ThreadPool::AbandonPending()
{
    std::size_t dropped = 0;
    {
        std::unique_lock<std::mutex> lock(mu_);
        dropped = queue_.size();
        queue_.clear();
        if (active_ == 0)
            idle_cv_.notify_all();
    }
    abandoned_.fetch_add(dropped, std::memory_order_relaxed);
    return dropped;
}

void
ThreadPool::Wait()
{
    std::unique_lock<std::mutex> lock(mu_);
    idle_cv_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
    if (first_error_) {
        std::exception_ptr error = first_error_;
        first_error_ = nullptr;
        std::rethrow_exception(error);
    }
}

void
ThreadPool::WorkerLoop()
{
    obs::SetCurrentThreadName("pool-worker");
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
        work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
        if (queue_.empty()) {
            if (stop_)
                return;
            continue;
        }
        Task task = std::move(queue_.front());
        queue_.pop_front();
        if (task.token != nullptr && task.token->cancelled()) {
            // Abandoned at dequeue time: never started, so it neither
            // counts as active nor runs. Wait() may now be satisfied.
            abandoned_.fetch_add(1, std::memory_order_relaxed);
            if (queue_.empty() && active_ == 0)
                idle_cv_.notify_all();
            continue;
        }
        ++active_;
        lock.unlock();
        try {
            task.fn();
        } catch (...) {
            lock.lock();
            if (!first_error_)
                first_error_ = std::current_exception();
            lock.unlock();
        }
        lock.lock();
        --active_;
        if (queue_.empty() && active_ == 0)
            idle_cv_.notify_all();
    }
}

}  // namespace atum::replay
