#ifndef ATUM_REPLAY_THREAD_POOL_H_
#define ATUM_REPLAY_THREAD_POOL_H_

/**
 * @file
 * A small fixed-size worker pool over a mutex/condvar work queue — the
 * only concurrency primitive the replay engine needs. Tasks are opaque
 * closures; the pool makes no fairness or ordering promises beyond
 * "every submitted task runs exactly once". Determinism of replay
 * results is the *callers'* job: workers must write to disjoint,
 * pre-sized output slots so the answer never depends on scheduling.
 */

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

namespace atum::replay {

/**
 * A cooperative cancellation flag shared between whoever submits work
 * and whoever drains it. A task submitted with a token is *abandoned* —
 * dequeued and dropped without running — once the token is cancelled,
 * so a drain (daemon shutdown, sweep abort) does not have to execute a
 * backlog it no longer wants. Cancellation is one-way and sticky; a
 * token outlives no task that references it (callers keep it alive at
 * least until Wait() returns).
 */
class CancellationToken
{
  public:
    void Cancel() { cancelled_.store(true, std::memory_order_relaxed); }
    bool cancelled() const
    {
        return cancelled_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<bool> cancelled_{false};
};

class ThreadPool
{
  public:
    /** Spawns `threads` workers; 0 means one per hardware thread. */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue (Wait semantics), then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned thread_count() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /**
     * Enqueues one task. Safe from any thread, including workers — and
     * safe to race with AbandonPending() or the token's Cancel(): the
     * task either runs exactly once or is dropped, never both and never
     * a crash. A task whose `token` is already cancelled at dequeue time
     * (or at submit time) is abandoned without running; `abandoned()`
     * counts every such drop.
     */
    void Submit(std::function<void()> task,
                const CancellationToken* token = nullptr);

    /**
     * Drops every queued-but-unstarted task (regardless of token);
     * already-running tasks finish. Returns the number dropped. The
     * drain path for a shutdown that wants "stop soon" rather than
     * "finish the backlog".
     */
    std::size_t AbandonPending();

    /** Tasks dropped unrun (cancelled token or AbandonPending). */
    std::size_t abandoned() const
    {
        return abandoned_.load(std::memory_order_relaxed);
    }

    /**
     * Blocks until every submitted task has finished. If any task threw,
     * the first captured exception is rethrown here (subsequent tasks
     * still ran — an exception never wedges the pool or the queue).
     */
    void Wait();

  private:
    struct Task {
        std::function<void()> fn;
        const CancellationToken* token = nullptr;
    };

    void WorkerLoop();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers: queue non-empty or stop
    std::condition_variable idle_cv_;  ///< Wait(): everything finished
    std::deque<Task> queue_;
    std::size_t active_ = 0;  ///< tasks currently executing
    bool stop_ = false;
    std::exception_ptr first_error_;
    std::atomic<std::size_t> abandoned_{0};
};

}  // namespace atum::replay

#endif  // ATUM_REPLAY_THREAD_POOL_H_
