#ifndef ATUM_REPLAY_THREAD_POOL_H_
#define ATUM_REPLAY_THREAD_POOL_H_

/**
 * @file
 * A small fixed-size worker pool over a mutex/condvar work queue — the
 * only concurrency primitive the replay engine needs. Tasks are opaque
 * closures; the pool makes no fairness or ordering promises beyond
 * "every submitted task runs exactly once". Determinism of replay
 * results is the *callers'* job: workers must write to disjoint,
 * pre-sized output slots so the answer never depends on scheduling.
 */

#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace atum::replay {

class ThreadPool
{
  public:
    /** Spawns `threads` workers; 0 means one per hardware thread. */
    explicit ThreadPool(unsigned threads = 0);

    /** Drains the queue (Wait semantics), then joins the workers. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned thread_count() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueues one task. Safe from any thread, including workers. */
    void Submit(std::function<void()> task);

    /**
     * Blocks until every submitted task has finished. If any task threw,
     * the first captured exception is rethrown here (subsequent tasks
     * still ran — an exception never wedges the pool or the queue).
     */
    void Wait();

  private:
    void WorkerLoop();

    std::vector<std::thread> workers_;
    std::mutex mu_;
    std::condition_variable work_cv_;  ///< workers: queue non-empty or stop
    std::condition_variable idle_cv_;  ///< Wait(): everything finished
    std::deque<std::function<void()>> queue_;
    std::size_t active_ = 0;  ///< tasks currently executing
    bool stop_ = false;
    std::exception_ptr first_error_;
};

}  // namespace atum::replay

#endif  // ATUM_REPLAY_THREAD_POOL_H_
