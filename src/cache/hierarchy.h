#ifndef ATUM_CACHE_HIERARCHY_H_
#define ATUM_CACHE_HIERARCHY_H_

/**
 * @file
 * A two-level cache hierarchy: split L1 I/D caches in front of a unified
 * L2. L1 misses and L1 dirty writebacks propagate into L2. Average memory
 * access time (AMAT) is computed from configurable level latencies —
 * the metric late-80s multi-level studies optimized once full-system
 * traces made realistic miss rates available.
 */

#include <cstdint>

#include "cache/cache.h"
#include "trace/record.h"
#include "trace/sink.h"

namespace atum::cache {

struct HierarchyConfig {
    CacheConfig l1i{.size_bytes = 4u << 10, .block_bytes = 16, .assoc = 1};
    CacheConfig l1d{.size_bytes = 4u << 10, .block_bytes = 16, .assoc = 1};
    CacheConfig l2{.size_bytes = 128u << 10, .block_bytes = 32, .assoc = 2};
    uint32_t l1_hit_cycles = 1;
    uint32_t l2_hit_cycles = 8;
    uint32_t memory_cycles = 40;
    bool flush_on_switch = false;  ///< flush all levels at context switches
};

class CacheHierarchy
{
  public:
    explicit CacheHierarchy(const HierarchyConfig& config);

    /** One reference; `is_ifetch` routes to L1I, otherwise L1D. */
    void Access(uint32_t addr, bool is_write, bool is_ifetch,
                uint16_t pid = 0);

    /** Feeds a trace record (markers handle context switches). */
    void Feed(const trace::Record& record);
    void DriveAll(trace::TraceSource& source);

    const Cache& l1i() const { return l1i_; }
    const Cache& l1d() const { return l1d_; }
    const Cache& l2() const { return l2_; }

    uint64_t accesses() const { return accesses_; }
    /** References that missed in both levels. */
    uint64_t memory_accesses() const { return memory_accesses_; }
    /** Global miss rate: references served by memory / all references. */
    double GlobalMissRate() const;
    /** Average memory access time in cycles, per the config latencies. */
    double Amat() const;

  private:
    HierarchyConfig config_;
    Cache l1i_;
    Cache l1d_;
    Cache l2_;
    uint64_t accesses_ = 0;
    uint64_t l1_misses_ = 0;
    uint64_t memory_accesses_ = 0;
    uint16_t current_pid_ = 0;
};

}  // namespace atum::cache

#endif  // ATUM_CACHE_HIERARCHY_H_
