#ifndef ATUM_CACHE_WRITE_BUFFER_H_
#define ATUM_CACHE_WRITE_BUFFER_H_

/**
 * @file
 * A coalescing write buffer for write-through caches.
 *
 * Mid-80s machines (the 8200 family included) were mostly write-through,
 * so the write buffer was the component that decided whether stores
 * stalled the processor. The model: the processor advances one cycle per
 * reference; each buffered write occupies the memory bus for
 * `retire_cycles`; the buffer holds `depth` entries; a store arriving at
 * a full buffer stalls the processor until a slot retires. Stores to a
 * block already pending may coalesce.
 */

#include <cstdint>
#include <deque>

namespace atum::cache {

struct WriteBufferConfig {
    uint32_t depth = 4;
    uint32_t retire_cycles = 6;  ///< memory-bus occupancy per entry
    uint32_t block_bytes = 4;    ///< coalescing granule
    bool coalesce = true;
};

class WriteBuffer
{
  public:
    explicit WriteBuffer(const WriteBufferConfig& config);

    /** Advances processor time by one non-store reference. */
    void OnReference() { ++now_; Drain(); }

    /**
     * Enqueues a store to `addr`. Returns the stall cycles incurred
     * (0 when a slot was free or the store coalesced).
     */
    uint32_t Write(uint32_t addr);

    uint64_t writes() const { return writes_; }
    uint64_t coalesced() const { return coalesced_; }
    uint64_t stall_cycles() const { return stall_cycles_; }
    uint64_t now() const { return now_; }
    /** Average stall cycles per store. */
    double StallsPerWrite() const;

  private:
    void Drain();

    WriteBufferConfig config_;
    /** Pending entries: block number and bus-completion time. */
    struct Entry {
        uint32_t block;
        uint64_t done_at;
    };
    std::deque<Entry> pending_;
    uint64_t now_ = 0;
    uint64_t bus_free_at_ = 0;
    uint64_t writes_ = 0;
    uint64_t coalesced_ = 0;
    uint64_t stall_cycles_ = 0;
};

}  // namespace atum::cache

#endif  // ATUM_CACHE_WRITE_BUFFER_H_
