#include "cache/write_buffer.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace atum::cache {

WriteBuffer::WriteBuffer(const WriteBufferConfig& config) : config_(config)
{
    if (config.depth == 0)
        Fatal("write buffer depth must be nonzero");
    if (config.retire_cycles == 0)
        Fatal("retire_cycles must be nonzero");
    if (!IsPowerOfTwo(config.block_bytes))
        Fatal("write-buffer block size must be a power of two");
}

void
WriteBuffer::Drain()
{
    while (!pending_.empty() && pending_.front().done_at <= now_)
        pending_.pop_front();
}

uint32_t
WriteBuffer::Write(uint32_t addr)
{
    ++now_;  // the store itself is one processor cycle
    Drain();
    ++writes_;
    const uint32_t block = addr / config_.block_bytes;

    if (config_.coalesce) {
        for (const Entry& e : pending_) {
            if (e.block == block) {
                ++coalesced_;
                return 0;
            }
        }
    }

    uint32_t stall = 0;
    if (pending_.size() >= config_.depth) {
        // Stall until the oldest entry finishes on the bus.
        const uint64_t wait = pending_.front().done_at - now_;
        stall = static_cast<uint32_t>(wait);
        stall_cycles_ += wait;
        now_ += wait;
        Drain();
    }

    const uint64_t start = bus_free_at_ > now_ ? bus_free_at_ : now_;
    const uint64_t done = start + config_.retire_cycles;
    bus_free_at_ = done;
    pending_.push_back({block, done});
    return stall;
}

double
WriteBuffer::StallsPerWrite() const
{
    return writes_ == 0 ? 0.0
                        : static_cast<double>(stall_cycles_) /
                              static_cast<double>(writes_);
}

}  // namespace atum::cache
