#include "cache/cache.h"

#include <sstream>

#include "util/bitops.h"
#include "util/logging.h"

namespace atum::cache {

std::string
CacheConfig::ToString() const
{
    std::ostringstream os;
    os << size_bytes / 1024 << "K/" << block_bytes << "B/";
    if (assoc == 0)
        os << "full";
    else
        os << assoc << "w";
    os << (write_back ? "/wb" : "/wt");
    if (pid_tags)
        os << "/pid";
    if (prefetch_next_on_miss)
        os << "/obl";
    return os.str();
}

void
Cache::Fill(uint32_t block, uint64_t tag_extra)
{
    const uint32_t set = block & (sets_ - 1);
    uint64_t tag = (block >> Log2Floor(sets_)) | tag_extra;
    Line* base = &lines_[static_cast<size_t>(set) * config_.assoc];
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        if (base[w].valid && base[w].tag == tag)
            return;  // already resident: nothing to prefetch
    }
    Line& victim = Victim(set);
    if (victim.valid && victim.dirty)
        ++stats_.writebacks;
    victim.valid = true;
    victim.dirty = false;
    victim.tag = tag;
    victim.stamp = ++tick_;
    ++stats_.prefetch_fills;
}

util::Status
ValidateConfig(const CacheConfig& config)
{
    if (!IsPowerOfTwo(config.size_bytes) || !IsPowerOfTwo(config.block_bytes))
        return util::InvalidArgument(
            "cache size and block size must be powers of two");
    if (config.block_bytes < 4 || config.block_bytes > config.size_bytes)
        return util::InvalidArgument("bad block size ", config.block_bytes);
    const uint32_t blocks = config.size_bytes / config.block_bytes;
    const uint32_t assoc = config.assoc == 0 ? blocks : config.assoc;
    if (assoc > blocks)
        return util::InvalidArgument("associativity ", assoc, " exceeds ",
                                     blocks, " blocks");
    if (blocks % assoc != 0)
        return util::InvalidArgument("blocks (", blocks,
                                     ") not divisible by associativity (",
                                     assoc, ")");
    const uint32_t sets = blocks / assoc;
    if (!IsPowerOfTwo(sets))
        return util::InvalidArgument(
            "set count must be a power of two, got ", sets);
    return util::OkStatus();
}

Cache::Cache(const CacheConfig& config)
    : config_(config), rng_(0x1badcafe)
{
    if (util::Status status = ValidateConfig(config); !status.ok())
        Fatal(status.message());
    const uint32_t blocks = config.size_bytes / config.block_bytes;
    const uint32_t assoc = config.assoc == 0 ? blocks : config.assoc;
    sets_ = blocks / assoc;
    config_.assoc = assoc;
    block_shift_ = Log2Floor(config.block_bytes);
    lines_.resize(blocks);
}

Cache::Line&
Cache::Victim(uint32_t set)
{
    Line* base = &lines_[static_cast<size_t>(set) * config_.assoc];
    for (uint32_t w = 0; w < config_.assoc; ++w)
        if (!base[w].valid)
            return base[w];
    switch (config_.replacement) {
      case Replacement::kLru:
      case Replacement::kFifo: {
        Line* victim = base;
        for (uint32_t w = 1; w < config_.assoc; ++w)
            if (base[w].stamp < victim->stamp)
                victim = &base[w];
        return *victim;
      }
      case Replacement::kRandom:
        return base[rng_.Below(config_.assoc)];
    }
    Panic("bad replacement policy");
}

bool
Cache::Access(uint32_t addr, bool is_write, uint16_t pid,
              uint32_t* writeback_addr)
{
    ++stats_.accesses;
    if (is_write)
        ++stats_.writes;
    else
        ++stats_.reads;

    const uint32_t block = addr >> block_shift_;
    const uint32_t set = block & (sets_ - 1);
    uint64_t tag = block >> Log2Floor(sets_);
    if (config_.pid_tags)
        tag |= static_cast<uint64_t>(pid) << 32;

    Line* base = &lines_[static_cast<size_t>(set) * config_.assoc];
    for (uint32_t w = 0; w < config_.assoc; ++w) {
        Line& line = base[w];
        if (line.valid && line.tag == tag) {
            if (config_.replacement == Replacement::kLru)
                line.stamp = ++tick_;
            if (is_write) {
                if (config_.write_back)
                    line.dirty = true;
                // Write-through: the write also goes to memory; the block
                // stays clean.
            }
            return true;
        }
    }

    ++stats_.misses;
    if (is_write)
        ++stats_.write_misses;
    else
        ++stats_.read_misses;

    if (is_write && !config_.write_allocate)
        return false;  // write miss bypasses the cache

    Line& victim = Victim(set);
    if (victim.valid && victim.dirty) {
        ++stats_.writebacks;
        if (writeback_addr != nullptr) {
            // Reconstruct the victim's block address (pid bits excluded).
            const uint32_t victim_block =
                (static_cast<uint32_t>(victim.tag) << Log2Floor(sets_)) |
                set;
            *writeback_addr = victim_block << block_shift_;
        }
    }
    victim.valid = true;
    victim.dirty = is_write && config_.write_back;
    victim.tag = tag;
    victim.stamp = ++tick_;

    if (config_.prefetch_next_on_miss) {
        // One-block lookahead: bring in the sequentially next block too.
        Fill(block + 1, tag & ~0xffffffffull);  // same pid tag bits
    }
    return false;
}

void
Cache::Flush()
{
    ++stats_.flushes;
    for (Line& line : lines_) {
        if (line.valid) {
            ++stats_.flushed_blocks;
            if (line.dirty)
                ++stats_.writebacks;
            line.valid = false;
            line.dirty = false;
        }
    }
}

}  // namespace atum::cache
