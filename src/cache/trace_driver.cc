#include "cache/trace_driver.h"

#include "util/logging.h"

namespace atum::cache {

using trace::Record;
using trace::RecordType;

TraceCacheDriver::TraceCacheDriver(Cache& unified,
                                   const DriverOptions& options,
                                   Cache* icache)
    : dcache_(unified), icache_(icache), options_(options)
{
}

void
TraceCacheDriver::Feed(const Record& record)
{
    if (record.type == RecordType::kCtxSwitch) {
        current_pid_ = record.info;
        if (options_.flush_on_switch) {
            dcache_.Flush();
            if (icache_ != nullptr)
                icache_->Flush();
        }
        return;
    }
    if (!record.IsMemory())
        return;

    if (record.type == RecordType::kPte && !options_.include_pte) {
        ++filtered_;
        return;
    }
    if (record.kernel() && !options_.include_kernel) {
        ++filtered_;
        return;
    }
    if (record.type == RecordType::kIFetch && !options_.include_ifetch) {
        ++filtered_;
        return;
    }
    if (options_.only_pid != 0 && !record.kernel() &&
        current_pid_ != options_.only_pid) {
        ++filtered_;
        return;
    }

    // Kernel references tag as pid 0: the system region is shared, so a
    // PID-tagged cache keeps one copy, as the 8200-era studies modelled.
    const uint16_t pid = record.kernel() ? 0 : current_pid_;
    const bool is_write = record.type == RecordType::kWrite;
    if (record.type == RecordType::kIFetch && icache_ != nullptr)
        icache_->Access(record.addr, false, pid);
    else
        dcache_.Access(record.addr, is_write, pid);
    ++fed_;
}

void
TraceCacheDriver::DriveAll(trace::TraceSource& source)
{
    while (auto r = source.Next())
        Feed(*r);
}

}  // namespace atum::cache
