#ifndef ATUM_CACHE_TRACE_DRIVER_H_
#define ATUM_CACHE_TRACE_DRIVER_H_

/**
 * @file
 * Feeds ATUM trace records into cache models, with the filtering options
 * the paper's comparisons require (full-system vs user-only, unified vs
 * split I/D, flush-on-switch vs PID-tagged).
 */

#include <cstdint>

#include "cache/cache.h"
#include "trace/record.h"
#include "trace/sink.h"

namespace atum::cache {

/** Record filtering and multiprogramming discipline. */
struct DriverOptions {
    bool include_kernel = true;  ///< false models user-only trace studies
    bool include_ifetch = true;
    /** PTE references carry physical addresses; including them in a
     *  virtually-addressed cache is usually wrong, so default off. */
    bool include_pte = false;
    bool flush_on_switch = false;  ///< flush caches at context switches
    uint16_t only_pid = 0;         ///< nonzero: keep just this process
};

class TraceCacheDriver
{
  public:
    /**
     * `unified` receives all selected references. Pass a separate
     * `icache` to split the instruction stream off into it. Caches are
     * borrowed and must outlive the driver.
     */
    explicit TraceCacheDriver(Cache& unified, const DriverOptions& options,
                              Cache* icache = nullptr);

    /** Feeds one record (records must arrive in trace order). */
    void Feed(const trace::Record& record);

    /** Feeds every record of a source. */
    void DriveAll(trace::TraceSource& source);

    /** References accepted (fed into a cache). */
    uint64_t fed() const { return fed_; }
    /** References rejected by the filters. */
    uint64_t filtered() const { return filtered_; }
    uint16_t current_pid() const { return current_pid_; }

  private:
    Cache& dcache_;
    Cache* icache_;
    DriverOptions options_;
    uint16_t current_pid_ = 0;
    uint64_t fed_ = 0;
    uint64_t filtered_ = 0;
};

}  // namespace atum::cache

#endif  // ATUM_CACHE_TRACE_DRIVER_H_
