#ifndef ATUM_CACHE_CACHE_H_
#define ATUM_CACHE_CACHE_H_

/**
 * @file
 * Trace-driven cache model, in the style of the mid-80s memory-system
 * studies ATUM's traces enabled.
 *
 * Caches are virtually indexed and virtually tagged (the traces carry
 * virtual addresses). Two multiprogramming disciplines are modelled, the
 * comparison at the heart of experiment F4:
 *   - flush-on-switch: tags carry no process id, so the driver flushes the
 *     cache on every context switch;
 *   - PID tags: tags are extended with the process id (kernel references
 *     tag as pid 0, matching the shared system address space).
 */

#include <cstdint>
#include <string>
#include <vector>

#include "util/rng.h"
#include "util/status.h"

namespace atum::cache {

/** Replacement policies. */
enum class Replacement : uint8_t { kLru, kFifo, kRandom };

struct CacheConfig {
    uint32_t size_bytes = 64u << 10;
    uint32_t block_bytes = 16;
    uint32_t assoc = 1;  ///< 0 means fully associative
    Replacement replacement = Replacement::kLru;
    bool write_allocate = true;
    bool write_back = true;
    bool pid_tags = false;  ///< extend tags with the process id
    /** One-block lookahead (Smith): a miss also fills block+1. */
    bool prefetch_next_on_miss = false;

    std::string ToString() const;
};

/**
 * Checks a geometry without constructing anything: powers of two, block
 * within bounds, associativity dividing the block count. Cache's
 * constructor Fatals on exactly these conditions; callers that must
 * survive a bad configuration (sweep workers) validate first.
 */
util::Status ValidateConfig(const CacheConfig& config);

struct CacheStats {
    uint64_t accesses = 0;
    uint64_t misses = 0;
    uint64_t reads = 0;
    uint64_t read_misses = 0;
    uint64_t writes = 0;
    uint64_t write_misses = 0;
    uint64_t writebacks = 0;
    uint64_t flushes = 0;
    uint64_t flushed_blocks = 0;
    uint64_t prefetch_fills = 0;  ///< blocks brought in by lookahead

    double MissRate() const
    {
        return accesses == 0
                   ? 0.0
                   : static_cast<double>(misses) /
                         static_cast<double>(accesses);
    }
};

class Cache
{
  public:
    /** Validates the configuration (power-of-two sizes); Fatal if bad. */
    explicit Cache(const CacheConfig& config);

    /**
     * Simulates one access. `pid` participates in the tag when pid_tags
     * is configured and is otherwise ignored. Returns true on hit.
     *
     * When `writeback_addr` is non-null and the access evicts a dirty
     * block, the evicted block's address is stored there (for driving a
     * next cache level); otherwise it is left untouched.
     */
    bool Access(uint32_t addr, bool is_write, uint16_t pid = 0,
                uint32_t* writeback_addr = nullptr);

    /** Invalidates everything (a context-switch flush); dirty blocks of a
     *  write-back cache count as writebacks. */
    void Flush();

    const CacheConfig& config() const { return config_; }
    const CacheStats& stats() const { return stats_; }
    uint32_t num_sets() const { return sets_; }

  private:
    void Fill(uint32_t block, uint64_t tag_extra);

    struct Line {
        bool valid = false;
        bool dirty = false;
        uint64_t tag = 0;
        uint64_t stamp = 0;  ///< LRU stamp or FIFO fill order
    };

    Line& Victim(uint32_t set);

    CacheConfig config_;
    uint32_t sets_;
    unsigned block_shift_;
    std::vector<Line> lines_;
    uint64_t tick_ = 0;
    Rng rng_;
    CacheStats stats_;
};

}  // namespace atum::cache

#endif  // ATUM_CACHE_CACHE_H_
