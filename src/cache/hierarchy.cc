#include "cache/hierarchy.h"

namespace atum::cache {

using trace::Record;
using trace::RecordType;

CacheHierarchy::CacheHierarchy(const HierarchyConfig& config)
    : config_(config),
      l1i_(config.l1i),
      l1d_(config.l1d),
      l2_(config.l2)
{
}

void
CacheHierarchy::Access(uint32_t addr, bool is_write, bool is_ifetch,
                       uint16_t pid)
{
    ++accesses_;
    Cache& l1 = is_ifetch ? l1i_ : l1d_;
    uint32_t writeback_addr = 0;
    bool wrote_back = false;
    {
        // Track whether this access evicted a dirty L1 block.
        const uint64_t wb_before = l1.stats().writebacks;
        if (l1.Access(addr, is_write, pid, &writeback_addr)) {
            return;  // L1 hit
        }
        wrote_back = l1.stats().writebacks != wb_before;
    }
    ++l1_misses_;

    // The refill request goes to L2; a dirty victim is written to L2 too.
    if (!l2_.Access(addr, false, pid))
        ++memory_accesses_;
    if (wrote_back) {
        const uint64_t mem_before = l2_.stats().misses;
        l2_.Access(writeback_addr, true, pid);
        if (l2_.stats().misses != mem_before)
            ++memory_accesses_;  // writeback missed L2: goes to memory
    }
}

void
CacheHierarchy::Feed(const Record& record)
{
    if (record.type == RecordType::kCtxSwitch) {
        current_pid_ = record.info;
        if (config_.flush_on_switch) {
            l1i_.Flush();
            l1d_.Flush();
            l2_.Flush();
        }
        return;
    }
    if (!record.IsMemory() || record.type == RecordType::kPte)
        return;
    const uint16_t pid = record.kernel() ? 0 : current_pid_;
    Access(record.addr, record.type == RecordType::kWrite,
           record.type == RecordType::kIFetch, pid);
}

void
CacheHierarchy::DriveAll(trace::TraceSource& source)
{
    while (auto r = source.Next())
        Feed(*r);
}

double
CacheHierarchy::GlobalMissRate() const
{
    return accesses_ == 0 ? 0.0
                          : static_cast<double>(memory_accesses_) /
                                static_cast<double>(accesses_);
}

double
CacheHierarchy::Amat() const
{
    if (accesses_ == 0)
        return 0.0;
    const double n = static_cast<double>(accesses_);
    return config_.l1_hit_cycles +
           static_cast<double>(l1_misses_) / n * config_.l2_hit_cycles +
           static_cast<double>(memory_accesses_) / n *
               config_.memory_cycles;
}

}  // namespace atum::cache
