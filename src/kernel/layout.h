#ifndef ATUM_KERNEL_LAYOUT_H_
#define ATUM_KERNEL_LAYOUT_H_

/**
 * @file
 * Physical/virtual memory layout of the guest system.
 *
 * The kernel occupies low physical memory; the S0 (system) region
 * identity-maps all usable physical memory at 0x80000000 + pa, so kernel
 * virtual addresses are physical addresses plus kS0Base. The ATUM trace
 * buffer, when present, is the reserved region at the top of physical
 * memory and is excluded from `usable_frames` (the guest never sees it).
 *
 * Frame map:
 *   frame 0            SCB (16 vectors)
 *   frame 1            kernel globals (kdata, see KdataOffsets)
 *   frames 2..5        kernel stack (4 pages, grows down from the top)
 *   frames 6..7        PCB array (kMaxProcs x kPcbStride bytes)
 *   frames 8..         S0 page table (covers usable_frames PTEs)
 *   after S0 table     kernel text
 *   after kernel text  per-process page tables and images (boot-allocated)
 *   remaining frames   the guest frame free list (demand paging pool)
 */

#include <cstdint>

#include "mem/physical_memory.h"

namespace atum::kernel {

/** Base virtual address of the S0 region. */
inline constexpr uint32_t kS0Base = 0x80000000u;
/** Base virtual address of the P1 (stack) region. */
inline constexpr uint32_t kP1Base = 0x40000000u;

/** Maximum processes the kernel supports. */
inline constexpr uint32_t kMaxProcs = 8;
/** Bytes between consecutive PCBs (power of two for guest arithmetic). */
inline constexpr uint32_t kPcbStride = 128;

/** System call numbers (CHMK codes). */
enum class Syscall : uint32_t {
    kExit = 0,    ///< terminate the calling process
    kYield = 1,   ///< voluntarily give up the CPU
    kPutc = 2,    ///< write the byte in r1 to the console
    kGetpid = 3,  ///< return the caller's pid in r0
    kBrk = 4,     ///< set P0 length to r1 pages (clamped to capacity)
    kSend = 5,    ///< enqueue the byte in r1; r0 = 1, or 0 if full
    kRecv = 6,    ///< dequeue into r0; r0 = 0xffffffff if empty
    kFork = 7,    ///< clone the caller; r0 = child pid, 0 in the child,
                  ///< 0xffffffff if no slot/frame (shares P0, fresh stack)
    kDmaCopy = 8, ///< DMA-copy the page at va r1 to the page at va r2;
                  ///< r0 = 0, or 0xffffffff if either page is not resident
};

/** Capacity of the kernel's IPC mailbox ring, a power of two. */
inline constexpr uint32_t kMailboxBytes = 16;

/** Offsets of kernel globals within the kdata frame. All longwords. */
struct KdataOffsets {
    static constexpr uint32_t kCurProc = 0;    ///< running process index
    static constexpr uint32_t kNumProc = 4;    ///< process count
    static constexpr uint32_t kNumLive = 8;    ///< live process count
    static constexpr uint32_t kFreeHead = 12;  ///< S0 va of first free frame
    static constexpr uint32_t kPfCount = 16;   ///< page faults serviced
    static constexpr uint32_t kCsCount = 20;   ///< context switches
    static constexpr uint32_t kFreeCount = 24; ///< free frames remaining
    static constexpr uint32_t kAlive = 32;     ///< alive[kMaxProcs]
    static constexpr uint32_t kP0Tbl = 64;     ///< S0 va of P0 table, per proc
    static constexpr uint32_t kP1Tbl = 96;     ///< S0 va of P1 table, per proc
    static constexpr uint32_t kP0Cap = 128;    ///< P0 capacity (pages), per proc
    static constexpr uint32_t kMbHead = 160;   ///< mailbox producer index
    static constexpr uint32_t kMbTail = 164;   ///< mailbox consumer index
    static constexpr uint32_t kMbBuf = 168;    ///< mailbox ring bytes
    // Swap pager state (see kernel_builder.cc, k_pf).
    static constexpr uint32_t kSwapBase = 184;   ///< S0 va of swap frames
    static constexpr uint32_t kSwapStack = 188;  ///< S0 va of free-slot stack
    static constexpr uint32_t kSwapSp = 192;     ///< free slots remaining
    static constexpr uint32_t kFifoBase = 196;   ///< S0 va of resident FIFO
    static constexpr uint32_t kFifoHead = 200;   ///< FIFO push index
    static constexpr uint32_t kFifoTail = 204;   ///< FIFO pop index
    static constexpr uint32_t kFifoNotMask = 208;  ///< ~(ring entries - 1)
    static constexpr uint32_t kSwapOuts = 212;   ///< pages swapped out
    static constexpr uint32_t kSwapIns = 216;    ///< pages swapped in
    static constexpr uint32_t kDmaDone = 220;    ///< DMA completion interrupts
    static constexpr uint32_t kForks = 224;      ///< successful kFork calls
};

/** PTE bit marking a swapped-out page (slot number in the PFN field). */
inline constexpr uint32_t kPteSwapped = 1u << 27;

/** Resolved physical layout for a given machine size. */
struct KernelLayout {
    uint32_t usable_frames = 0;  ///< physical frames below the reservation

    uint32_t scb_pa = 0;
    uint32_t kdata_pa = 0;
    uint32_t kstack_pa = 0;       ///< lowest address of the kernel stack
    uint32_t kstack_top_va = 0;   ///< initial KSP (S0 va, empty stack)
    uint32_t pcb_base_pa = 0;
    uint32_t s0_table_pa = 0;
    uint32_t ktext_pa = 0;        ///< kernel text load address
    uint32_t ktext_va = 0;        ///< kernel text virtual address

    /** S0 virtual address of a kdata field. */
    uint32_t KdataVa(uint32_t offset) const
    {
        return kS0Base + kdata_pa + offset;
    }

    /** Physical address of process `i`'s PCB. */
    uint32_t PcbPa(uint32_t i) const { return pcb_base_pa + i * kPcbStride; }
};

/**
 * Computes the layout for a machine with `usable_frames` frames of
 * non-reserved physical memory. Fatal if memory is too small.
 */
KernelLayout ComputeLayout(uint32_t usable_frames);

}  // namespace atum::kernel

#endif  // ATUM_KERNEL_LAYOUT_H_
