#ifndef ATUM_KERNEL_KERNEL_BUILDER_H_
#define ATUM_KERNEL_KERNEL_BUILDER_H_

/**
 * @file
 * Builds the guest kernel image (VCX-32 code) for a given memory layout.
 *
 * The kernel is deliberately small but real: it runs *on the simulated
 * CPU*, so every reference it makes — scheduling, system-call dispatch,
 * demand-paging, frame zeroing — appears in ATUM traces exactly as VMS's
 * and Ultrix's kernel references appeared in the paper's traces.
 *
 * Responsibilities:
 *   - `k_start`: enables the interval timer and dispatches process 0;
 *   - `k_timer`: SVPCTX / round-robin pick / LDPCTX / REI;
 *   - `k_chmk`: system calls (exit, yield, putc, getpid, brk);
 *   - `k_pf`:   demand-zero page-fault handler (frame free list, PTE
 *               install, frame zeroing, TBIS);
 *   - `k_acv`, `k_fault8`: kill the offending process (halt on kernel
 *     faults).
 */

#include "assembler/assembler.h"
#include "kernel/layout.h"

namespace atum::kernel {

/**
 * Assembles the kernel for `layout`. The returned program's origin is
 * layout.ktext_va and its symbols include k_start, k_timer, k_chmk,
 * k_pf, k_acv, k_fault8.
 */
assembler::Program BuildKernelImage(const KernelLayout& layout);

}  // namespace atum::kernel

#endif  // ATUM_KERNEL_KERNEL_BUILDER_H_
