#include "kernel/kernel_builder.h"

#include "isa/isa.h"

namespace atum::kernel {

using assembler::Abs;
using assembler::Assembler;
using assembler::Def;
using assembler::Disp;
using assembler::Imm;
using assembler::Inc;
using assembler::Label;
using assembler::Program;
using assembler::R;
using assembler::Ref;
using isa::kRegSp;
using isa::Opcode;

namespace {

/** Immediate operand carrying a processor-register number. */
assembler::AsmOperand
IprImm(isa::Ipr ipr)
{
    return Imm(static_cast<uint32_t>(ipr));
}

}  // namespace

Program
BuildKernelImage(const KernelLayout& layout)
{
    using KO = KdataOffsets;
    const uint32_t cur = layout.KdataVa(KO::kCurProc);
    const uint32_t nproc = layout.KdataVa(KO::kNumProc);
    const uint32_t nlive = layout.KdataVa(KO::kNumLive);
    const uint32_t free_head = layout.KdataVa(KO::kFreeHead);
    const uint32_t pf_count = layout.KdataVa(KO::kPfCount);
    const uint32_t cs_count = layout.KdataVa(KO::kCsCount);
    const uint32_t free_count = layout.KdataVa(KO::kFreeCount);
    const uint32_t alive = layout.KdataVa(KO::kAlive);
    const uint32_t p0tbl = layout.KdataVa(KO::kP0Tbl);
    const uint32_t p1tbl = layout.KdataVa(KO::kP1Tbl);
    const uint32_t p0cap = layout.KdataVa(KO::kP0Cap);
    const uint32_t mb_head = layout.KdataVa(KO::kMbHead);
    const uint32_t mb_tail = layout.KdataVa(KO::kMbTail);
    const uint32_t mb_buf = layout.KdataVa(KO::kMbBuf);
    const uint32_t sw_base = layout.KdataVa(KO::kSwapBase);
    const uint32_t sw_stack = layout.KdataVa(KO::kSwapStack);
    const uint32_t sw_sp = layout.KdataVa(KO::kSwapSp);
    const uint32_t fifo_base = layout.KdataVa(KO::kFifoBase);
    const uint32_t fifo_head = layout.KdataVa(KO::kFifoHead);
    const uint32_t fifo_tail = layout.KdataVa(KO::kFifoTail);
    const uint32_t fifo_notmask = layout.KdataVa(KO::kFifoNotMask);
    const uint32_t sw_outs = layout.KdataVa(KO::kSwapOuts);
    const uint32_t sw_ins = layout.KdataVa(KO::kSwapIns);
    const uint32_t dma_done = layout.KdataVa(KO::kDmaDone);
    const uint32_t forks = layout.KdataVa(KO::kForks);

    Assembler a(layout.ktext_va);

    Label k_start = a.NewLabel("k_start");
    Label k_timer = a.NewLabel("k_timer");
    Label k_pick_next = a.NewLabel("k_pick_next");
    Label k_chmk = a.NewLabel("k_chmk");
    Label k_kill_common = a.NewLabel("k_kill_common");
    Label k_acv = a.NewLabel("k_acv");
    Label k_fault8 = a.NewLabel("k_fault8");
    Label k_pf = a.NewLabel("k_pf");
    Label k_dma = a.NewLabel("k_dma");
    Label pf_get_frame = a.NewLabel("pf_get_frame");

    // ------------------------------------------------------------------
    // k_start: enable the clock, dispatch the first process.
    // Entered in kernel mode at IPL 31 with KSP set and PCBB pointing at
    // process 0's PCB.
    // ------------------------------------------------------------------
    a.Bind(k_start);
    a.Emit(Opcode::kMtpr, {Imm(1), IprImm(isa::Ipr::kIccs)});
    a.Emit(Opcode::kLdpctx);
    a.Emit(Opcode::kRei);

    // ------------------------------------------------------------------
    // k_timer: round-robin preemption. Frame on entry: [pc][psl].
    // ------------------------------------------------------------------
    a.Bind(k_timer);
    a.Emit(Opcode::kSvpctx);
    a.Emit(Opcode::kIncl, {Abs(cs_count)});
    a.Emit(Opcode::kJsb, {Ref(k_pick_next)});
    a.Emit(Opcode::kLdpctx);
    a.Emit(Opcode::kRei);

    // ------------------------------------------------------------------
    // k_pick_next: advance cur to the next alive process and point PCBB
    // at its PCB. Clobbers r0-r2. Requires at least one alive process.
    // ------------------------------------------------------------------
    a.Bind(k_pick_next);
    a.Emit(Opcode::kMovl, {Abs(cur), R(0)});
    Label pn_loop = a.Here("pn_loop");
    a.Emit(Opcode::kIncl, {R(0)});
    a.Emit(Opcode::kCmpl, {R(0), Abs(nproc)});
    Label pn_ok = a.NewLabel("pn_ok");
    a.Emit(Opcode::kBlss, {}, pn_ok);
    a.Emit(Opcode::kClrl, {R(0)});
    a.Bind(pn_ok);
    a.Emit(Opcode::kAshl, {Imm(2), R(0), R(1)});
    a.Emit(Opcode::kAddl3, {R(1), Imm(alive), R(2)});
    a.Emit(Opcode::kTstl, {assembler::Def(2)});
    a.Emit(Opcode::kBeql, {}, pn_loop);
    a.Emit(Opcode::kMovl, {R(0), Abs(cur)});
    a.Emit(Opcode::kAshl, {Imm(7), R(0), R(1)});
    a.Emit(Opcode::kAddl2, {Imm(layout.pcb_base_pa), R(1)});
    a.Emit(Opcode::kMtpr, {R(1), IprImm(isa::Ipr::kPcbb)});
    a.Emit(Opcode::kRsb);

    // ------------------------------------------------------------------
    // k_chmk: system calls. Frame on entry: [code][pc][psl].
    // After the three register saves: r2 at 0(sp), r1 at 4, r0 at 8,
    // code at 12, pc at 16, psl at 20.
    // ------------------------------------------------------------------
    a.Bind(k_chmk);
    a.Emit(Opcode::kPushl, {R(0)});
    a.Emit(Opcode::kPushl, {R(1)});
    a.Emit(Opcode::kPushl, {R(2)});
    a.Emit(Opcode::kMovl, {Disp(12, kRegSp), R(0)});
    Label sys_exit = a.NewLabel("sys_exit");
    Label sys_yield = a.NewLabel("sys_yield");
    Label sys_putc = a.NewLabel("sys_putc");
    Label sys_getpid = a.NewLabel("sys_getpid");
    Label sys_brk = a.NewLabel("sys_brk");
    Label sys_send = a.NewLabel("sys_send");
    Label sys_recv = a.NewLabel("sys_recv");
    Label sys_fork = a.NewLabel("sys_fork");
    Label sys_dma = a.NewLabel("sys_dma");
    Label chmk_ret = a.NewLabel("chmk_ret");
    // Jump-table dispatch (VAX idiom); out-of-range codes fall through.
    a.Emit(Opcode::kCasel, {R(0), Imm(0), Imm(8)});
    a.CaseTable({sys_exit, sys_yield, sys_putc, sys_getpid, sys_brk,
                 sys_send, sys_recv, sys_fork, sys_dma});

    // kExit and unknown codes: terminate the process.
    a.Bind(sys_exit);
    a.Emit(Opcode::kAddl2, {Imm(24), R(kRegSp)});  // drop saves + code + frame
    a.Emit(Opcode::kBrw, {}, k_kill_common);

    a.Bind(sys_yield);
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(2)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(1)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(0)});
    a.Emit(Opcode::kAddl2, {Imm(4), R(kRegSp)});  // drop code
    a.Emit(Opcode::kBrw, {}, k_timer);  // frame now matches timer entry

    a.Bind(sys_putc);
    a.Emit(Opcode::kMovl, {Disp(4, kRegSp), R(1)});
    a.Emit(Opcode::kMtpr, {R(1), IprImm(isa::Ipr::kConsTx)});
    a.Emit(Opcode::kBrb, {}, chmk_ret);

    a.Bind(sys_getpid);
    a.Emit(Opcode::kMfpr, {IprImm(isa::Ipr::kPid), Disp(8, kRegSp)});
    a.Emit(Opcode::kBrb, {}, chmk_ret);

    a.Bind(chmk_ret);
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(2)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(1)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(0)});
    a.Emit(Opcode::kAddl2, {Imm(4), R(kRegSp)});  // drop code
    a.Emit(Opcode::kRei);

    // Non-blocking single-mailbox IPC: a byte ring in kernel data.
    // send: r0 <- 1 on success, 0 when the ring is full.
    a.Bind(sys_send);
    a.Emit(Opcode::kMovl, {Abs(mb_head), R(0)});
    a.Emit(Opcode::kSubl3, {Abs(mb_tail), R(0), R(2)});  // r2 = head - tail
    a.Emit(Opcode::kCmpl, {R(2), Imm(kMailboxBytes)});
    Label send_ok = a.NewLabel("send_ok");
    a.Emit(Opcode::kBlss, {}, send_ok);
    a.Emit(Opcode::kClrl, {Disp(8, kRegSp)});  // r0 slot: full
    a.Emit(Opcode::kBrb, {}, chmk_ret);
    a.Bind(send_ok);
    a.Emit(Opcode::kBicl3, {Imm(~(kMailboxBytes - 1)), R(0), R(2)});
    a.Emit(Opcode::kAddl2, {Imm(mb_buf), R(2)});
    a.Emit(Opcode::kMovl, {Disp(4, kRegSp), R(1)});  // byte argument
    a.Emit(Opcode::kMovb, {R(1), assembler::Def(2)});
    a.Emit(Opcode::kIncl, {Abs(mb_head)});
    a.Emit(Opcode::kMovl, {Imm(1), Disp(8, kRegSp)});
    a.Emit(Opcode::kBrb, {}, chmk_ret);

    // recv: r0 <- byte, or 0xffffffff when the ring is empty.
    a.Bind(sys_recv);
    a.Emit(Opcode::kMovl, {Abs(mb_tail), R(0)});
    a.Emit(Opcode::kCmpl, {R(0), Abs(mb_head)});
    Label recv_ok = a.NewLabel("recv_ok");
    a.Emit(Opcode::kBneq, {}, recv_ok);
    a.Emit(Opcode::kMovl, {Imm(0xffffffff), Disp(8, kRegSp)});
    a.Emit(Opcode::kBrb, {}, chmk_ret);
    a.Bind(recv_ok);
    a.Emit(Opcode::kBicl3, {Imm(~(kMailboxBytes - 1)), R(0), R(2)});
    a.Emit(Opcode::kAddl2, {Imm(mb_buf), R(2)});
    a.Emit(Opcode::kMovzbl, {assembler::Def(2), R(1)});
    a.Emit(Opcode::kMovl, {R(1), Disp(8, kRegSp)});
    a.Emit(Opcode::kIncl, {Abs(mb_tail)});
    a.Emit(Opcode::kBrw, {}, chmk_ret);  // beyond brb range from here

    a.Bind(sys_brk);
    a.Emit(Opcode::kMovl, {Disp(4, kRegSp), R(1)});  // requested pages
    a.Emit(Opcode::kMovl, {Abs(cur), R(0)});
    a.Emit(Opcode::kAshl, {Imm(2), R(0), R(0)});
    a.Emit(Opcode::kAddl2, {Imm(p0cap), R(0)});
    a.Emit(Opcode::kMovl, {assembler::Def(0), R(2)});  // capacity
    a.Emit(Opcode::kCmpl, {R(1), R(2)});
    Label brk_ok = a.NewLabel("brk_ok");
    a.Emit(Opcode::kBlequ, {}, brk_ok);
    a.Emit(Opcode::kMovl, {R(2), R(1)});  // clamp to capacity
    a.Bind(brk_ok);
    a.Emit(Opcode::kMtpr, {R(1), IprImm(isa::Ipr::kP0Lr)});
    a.Emit(Opcode::kBrw, {}, chmk_ret);  // chmk_ret is beyond brb range here

    // ------------------------------------------------------------------
    // sys_fork: clone the caller, clone-style. The child shares the
    // parent's P0 table (text and heap frames — vfork/clone semantics,
    // there is no copy-on-write) and gets a fresh, empty P1 stack table,
    // so its stack pages demand-zero on first touch. Parent r0 = child
    // pid, child r0 = 0; r0 = 0xffffffff when no process slot is free.
    // After the extra saves: r5@0 r4@4 r3@8 r2@12 r1@16 r0@20 code@24
    // pc@28 psl@32.
    // ------------------------------------------------------------------
    a.Bind(sys_fork);
    a.Emit(Opcode::kPushl, {R(3)});
    a.Emit(Opcode::kPushl, {R(4)});
    a.Emit(Opcode::kPushl, {R(5)});
    // r4 = first free slot, scanning alive[].
    a.Emit(Opcode::kClrl, {R(4)});
    Label fk_scan = a.Here("fk_scan");
    Label fk_found = a.NewLabel("fk_found");
    Label fk_out = a.NewLabel("fk_out");
    a.Emit(Opcode::kAshl, {Imm(2), R(4), R(0)});
    a.Emit(Opcode::kAddl3, {R(0), Imm(alive), R(1)});
    a.Emit(Opcode::kTstl, {assembler::Def(1)});
    a.Emit(Opcode::kBeql, {}, fk_found);
    a.Emit(Opcode::kIncl, {R(4)});
    a.Emit(Opcode::kCmpl, {R(4), Imm(kMaxProcs)});
    a.Emit(Opcode::kBlss, {}, fk_scan);
    a.Emit(Opcode::kMovl, {Imm(0xffffffff), Disp(20, kRegSp)});
    a.Emit(Opcode::kBrw, {}, fk_out);
    a.Bind(fk_found);
    // r3 = a zeroed frame for the child's P1 page table. Deliberately not
    // entered in the resident FIFO: page tables must never be evicted.
    a.Emit(Opcode::kJsb, {Ref(pf_get_frame)});  // clobbers r0, r1, r5
    a.Emit(Opcode::kMovl, {R(3), R(0)});
    a.Emit(Opcode::kMovl, {Imm(128), R(1)});
    Label fk_zero = a.Here("fk_zero");
    a.Emit(Opcode::kClrl, {Inc(0)});
    a.Emit(Opcode::kSobgtr, {R(1)}, fk_zero);
    // r5 = child PCB (S0 va). Build the full LDPCTX image.
    a.Emit(Opcode::kAshl, {Imm(7), R(4), R(5)});
    a.Emit(Opcode::kAddl2, {Imm(kS0Base + layout.pcb_base_pa), R(5)});
    a.Emit(Opcode::kClrl, {assembler::Def(5)});               // child r0 = 0
    a.Emit(Opcode::kMovl, {Disp(16, kRegSp), Disp(4, 5)});    // r1
    a.Emit(Opcode::kMovl, {Disp(12, kRegSp), Disp(8, 5)});    // r2
    a.Emit(Opcode::kMovl, {Disp(8, kRegSp), Disp(12, 5)});    // r3
    a.Emit(Opcode::kMovl, {Disp(4, kRegSp), Disp(16, 5)});    // r4
    a.Emit(Opcode::kMovl, {Disp(0, kRegSp), Disp(20, 5)});    // r5
    a.Emit(Opcode::kMovl, {R(6), Disp(24, 5)});
    a.Emit(Opcode::kMovl, {R(7), Disp(28, 5)});
    a.Emit(Opcode::kMovl, {R(8), Disp(32, 5)});
    a.Emit(Opcode::kMovl, {R(9), Disp(36, 5)});
    a.Emit(Opcode::kMovl, {R(10), Disp(40, 5)});
    a.Emit(Opcode::kMovl, {R(11), Disp(44, 5)});
    a.Emit(Opcode::kMovl, {R(12), Disp(48, 5)});
    a.Emit(Opcode::kMovl, {R(13), Disp(52, 5)});
    // USP = top of the (empty) child stack: kP1Base + P1LR pages.
    a.Emit(Opcode::kMfpr, {IprImm(isa::Ipr::kP1Lr), R(0)});
    a.Emit(Opcode::kAshl, {Imm(9), R(0), R(1)});
    a.Emit(Opcode::kAddl2, {Imm(kP1Base), R(1)});
    a.Emit(Opcode::kMovl, {R(1), Disp(56, 5)});               // kUsp
    a.Emit(Opcode::kMovl, {Disp(28, kRegSp), Disp(60, 5)});   // kPc
    a.Emit(Opcode::kMovl, {Disp(32, kRegSp), Disp(64, 5)});   // kPsl
    a.Emit(Opcode::kMfpr, {IprImm(isa::Ipr::kP0Br), Disp(68, 5)});
    a.Emit(Opcode::kMfpr, {IprImm(isa::Ipr::kP0Lr), Disp(72, 5)});
    a.Emit(Opcode::kSubl3, {Imm(kS0Base), R(3), R(0)});
    a.Emit(Opcode::kMovl, {R(0), Disp(76, 5)});               // kP1Br (pa)
    a.Emit(Opcode::kMfpr, {IprImm(isa::Ipr::kP1Lr), Disp(80, 5)});
    a.Emit(Opcode::kAddl3, {Imm(1), R(4), R(0)});
    a.Emit(Opcode::kMovl, {R(0), Disp(84, 5)});               // kPid = j+1
    // Bookkeeping: alive[j] = 1, nlive++, nproc = max(nproc, j+1),
    // p0tbl[j] = p0tbl[cur], p0cap[j] = p0cap[cur], p1tbl[j] = r3.
    a.Emit(Opcode::kAshl, {Imm(2), R(4), R(1)});
    a.Emit(Opcode::kAddl3, {R(1), Imm(alive), R(0)});
    a.Emit(Opcode::kMovl, {Imm(1), assembler::Def(0)});
    a.Emit(Opcode::kIncl, {Abs(nlive)});
    a.Emit(Opcode::kAddl3, {Imm(1), R(4), R(0)});
    a.Emit(Opcode::kCmpl, {R(0), Abs(nproc)});
    Label fk_nproc_ok = a.NewLabel("fk_nproc_ok");
    a.Emit(Opcode::kBleq, {}, fk_nproc_ok);
    a.Emit(Opcode::kMovl, {R(0), Abs(nproc)});
    a.Bind(fk_nproc_ok);
    a.Emit(Opcode::kMovl, {Abs(cur), R(2)});
    a.Emit(Opcode::kAshl, {Imm(2), R(2), R(2)});
    a.Emit(Opcode::kAddl3, {R(2), Imm(p0tbl), R(0)});
    a.Emit(Opcode::kMovl, {assembler::Def(0), R(0)});
    a.Emit(Opcode::kAddl3, {R(1), Imm(p0tbl), R(5)});
    a.Emit(Opcode::kMovl, {R(0), assembler::Def(5)});
    a.Emit(Opcode::kAddl3, {R(2), Imm(p0cap), R(0)});
    a.Emit(Opcode::kMovl, {assembler::Def(0), R(0)});
    a.Emit(Opcode::kAddl3, {R(1), Imm(p0cap), R(5)});
    a.Emit(Opcode::kMovl, {R(0), assembler::Def(5)});
    a.Emit(Opcode::kAddl3, {R(1), Imm(p1tbl), R(0)});
    a.Emit(Opcode::kMovl, {R(3), assembler::Def(0)});
    a.Emit(Opcode::kIncl, {Abs(forks)});
    // Parent r0 = child pid.
    a.Emit(Opcode::kAddl3, {Imm(1), R(4), Disp(20, kRegSp)});
    a.Bind(fk_out);
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(5)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(4)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(3)});
    a.Emit(Opcode::kBrw, {}, chmk_ret);

    // ------------------------------------------------------------------
    // sys_dma: DMA-copy the resident page at P0 va r1 to the resident
    // page at P0 va r2. Walks the caller's P0 table; either page not
    // resident -> r0 = 0xffffffff (the caller must touch it first).
    // After the extra saves: r4@0 r3@4 r2@8 r1@12 r0@16 code@20.
    // ------------------------------------------------------------------
    a.Bind(sys_dma);
    a.Emit(Opcode::kPushl, {R(3)});
    a.Emit(Opcode::kPushl, {R(4)});
    Label dma_fail = a.NewLabel("dma_fail");
    Label dma_out = a.NewLabel("dma_out");
    Label dma_xlate = a.NewLabel("dma_xlate");
    // r4 = P0 page-table base (S0 va).
    a.Emit(Opcode::kMovl, {Abs(cur), R(0)});
    a.Emit(Opcode::kAshl, {Imm(2), R(0), R(0)});
    a.Emit(Opcode::kAddl2, {Imm(p0tbl), R(0)});
    a.Emit(Opcode::kMovl, {assembler::Def(0), R(4)});
    // Source page (saved r1), then destination page (saved r2). dma_xlate
    // returns the physical page base in r0, 0 when not resident (frame 0
    // is the SCB — never a user mapping).
    a.Emit(Opcode::kMovl, {Disp(12, kRegSp), R(1)});
    a.Emit(Opcode::kJsb, {Ref(dma_xlate)});
    a.Emit(Opcode::kTstl, {R(0)});
    a.Emit(Opcode::kBeql, {}, dma_fail);
    a.Emit(Opcode::kMtpr, {R(0), IprImm(isa::Ipr::kDmaSrc)});
    a.Emit(Opcode::kMovl, {Disp(8, kRegSp), R(1)});
    a.Emit(Opcode::kJsb, {Ref(dma_xlate)});
    a.Emit(Opcode::kTstl, {R(0)});
    a.Emit(Opcode::kBeql, {}, dma_fail);
    a.Emit(Opcode::kMtpr, {R(0), IprImm(isa::Ipr::kDmaDst)});
    // Program one page and fire the engine.
    a.Emit(Opcode::kMtpr, {Imm(kPageBytes), IprImm(isa::Ipr::kDmaLen)});
    a.Emit(Opcode::kMtpr, {Imm(1), IprImm(isa::Ipr::kDmaCtl)});
    a.Emit(Opcode::kClrl, {Disp(16, kRegSp)});  // r0 = 0
    a.Emit(Opcode::kBrb, {}, dma_out);
    a.Bind(dma_fail);
    a.Emit(Opcode::kMovl, {Imm(0xffffffff), Disp(16, kRegSp)});
    a.Bind(dma_out);
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(4)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(3)});
    a.Emit(Opcode::kBrw, {}, chmk_ret);

    // dma_xlate: r1 = P0 va, r4 = P0 table base. Returns r0 = physical
    // page base, or 0 when the va is outside P0/unmapped/not resident.
    // Clobbers r0-r2.
    a.Bind(dma_xlate);
    Label dx_bad = a.NewLabel("dx_bad");
    a.Emit(Opcode::kBitl, {Imm(0xc0000000), R(1)});
    a.Emit(Opcode::kBneq, {}, dx_bad);  // not a P0 address
    a.Emit(Opcode::kAshl, {Imm(0xf7 /* -9 */), R(1), R(0)});
    a.Emit(Opcode::kMfpr, {IprImm(isa::Ipr::kP0Lr), R(2)});
    a.Emit(Opcode::kCmpl, {R(0), R(2)});
    a.Emit(Opcode::kBgequ, {}, dx_bad);  // beyond P0 length
    a.Emit(Opcode::kAshl, {Imm(2), R(0), R(0)});
    a.Emit(Opcode::kAddl2, {R(4), R(0)});
    a.Emit(Opcode::kMovl, {assembler::Def(0), R(0)});  // the pte
    a.Emit(Opcode::kTstl, {R(0)});
    a.Emit(Opcode::kBgeq, {}, dx_bad);  // valid bit (31) clear
    a.Emit(Opcode::kBicl2, {Imm(0xffc00000), R(0)});
    a.Emit(Opcode::kAshl, {Imm(9), R(0), R(0)});
    a.Emit(Opcode::kRsb);
    a.Bind(dx_bad);
    a.Emit(Opcode::kClrl, {R(0)});
    a.Emit(Opcode::kRsb);

    // ------------------------------------------------------------------
    // k_dma: DMA completion interrupt. Frame: [pc][psl].
    // ------------------------------------------------------------------
    a.Bind(k_dma);
    a.Emit(Opcode::kIncl, {Abs(dma_done)});
    a.Emit(Opcode::kRei);

    // ------------------------------------------------------------------
    // k_kill_common: current process dies. Kernel stack must be empty.
    // ------------------------------------------------------------------
    a.Bind(k_kill_common);
    a.Emit(Opcode::kMovl, {Abs(cur), R(0)});
    a.Emit(Opcode::kAshl, {Imm(2), R(0), R(1)});
    a.Emit(Opcode::kAddl3, {R(1), Imm(alive), R(2)});
    a.Emit(Opcode::kClrl, {assembler::Def(2)});
    a.Emit(Opcode::kDecl, {Abs(nlive)});
    Label kc_next = a.NewLabel("kc_next");
    a.Emit(Opcode::kBneq, {}, kc_next);
    a.Emit(Opcode::kHalt);  // every process has exited
    a.Bind(kc_next);
    a.Emit(Opcode::kJsb, {Ref(k_pick_next)});
    a.Emit(Opcode::kLdpctx);
    a.Emit(Opcode::kRei);

    // ------------------------------------------------------------------
    // k_acv: access violation. Frame: [va][reason][pc][psl].
    // ------------------------------------------------------------------
    a.Bind(k_acv);
    a.Emit(Opcode::kBitl, {Imm(0x01000000), Disp(12, kRegSp)});
    Label acv_user = a.NewLabel("acv_user");
    a.Emit(Opcode::kBneq, {}, acv_user);
    a.Emit(Opcode::kHalt);  // kernel-mode access violation: unrecoverable
    a.Bind(acv_user);
    a.Emit(Opcode::kAddl2, {Imm(16), R(kRegSp)});
    a.Emit(Opcode::kBrw, {}, k_kill_common);

    // ------------------------------------------------------------------
    // k_fault8: reserved instruction/operand, privileged instruction,
    // arithmetic, breakpoint, stray. Frame: [pc][psl].
    // ------------------------------------------------------------------
    a.Bind(k_fault8);
    a.Emit(Opcode::kBitl, {Imm(0x01000000), Disp(4, kRegSp)});
    Label f8_user = a.NewLabel("f8_user");
    a.Emit(Opcode::kBneq, {}, f8_user);
    a.Emit(Opcode::kHalt);
    a.Bind(f8_user);
    a.Emit(Opcode::kAddl2, {Imm(8), R(kRegSp)});
    a.Emit(Opcode::kBrw, {}, k_kill_common);

    // ------------------------------------------------------------------
    // k_pf: page fault, with a swap pager. Frame: [va][reason][pc][psl].
    // With r0-r5 saved: va at 24(sp), reason at 28(sp).
    //
    // Paths:
    //   demand-zero: invalid PTE (0)     -> new frame, zero-filled
    //   swap-in:     PTE has kPteSwapped -> new frame, copied from swap
    // Frames come from the free list; when it is empty the pager evicts
    // the oldest resident page (FIFO) to a swap slot. All copies use the
    // microcoded MOVC3, so paging shows up in traces as the dense kernel
    // reference bursts it really is.
    // ------------------------------------------------------------------
    a.Bind(k_pf);
    a.Emit(Opcode::kPushl, {R(0)});
    a.Emit(Opcode::kPushl, {R(1)});
    a.Emit(Opcode::kPushl, {R(2)});
    a.Emit(Opcode::kPushl, {R(3)});
    a.Emit(Opcode::kPushl, {R(4)});
    a.Emit(Opcode::kPushl, {R(5)});
    a.Emit(Opcode::kIncl, {Abs(pf_count)});
    a.Emit(Opcode::kMovl, {Disp(24, kRegSp), R(0)});  // faulting va
    a.Emit(Opcode::kTstl, {R(0)});
    Label pf_user_space = a.NewLabel("pf_user_space");
    a.Emit(Opcode::kBgeq, {}, pf_user_space);
    a.Emit(Opcode::kHalt);  // S0 page fault: kernel bug
    a.Bind(pf_user_space);
    // r1 = page number within region.
    a.Emit(Opcode::kBicl3, {Imm(0xc0000000), R(0), R(1)});
    a.Emit(Opcode::kAshl, {Imm(0xf7 /* -9 */), R(1), R(1)});
    // r2 = &{p0,p1}tbl[cur]; select the array by address bit 30.
    a.Emit(Opcode::kMovl, {Abs(cur), R(3)});
    a.Emit(Opcode::kAshl, {Imm(2), R(3), R(3)});
    a.Emit(Opcode::kBitl, {Imm(0x40000000), R(0)});
    Label pf_p1 = a.NewLabel("pf_p1");
    Label pf_have_arr = a.NewLabel("pf_have_arr");
    a.Emit(Opcode::kBneq, {}, pf_p1);
    a.Emit(Opcode::kAddl3, {R(3), Imm(p0tbl), R(2)});
    a.Emit(Opcode::kBrb, {}, pf_have_arr);
    a.Bind(pf_p1);
    a.Emit(Opcode::kAddl3, {R(3), Imm(p1tbl), R(2)});
    a.Bind(pf_have_arr);
    a.Emit(Opcode::kMovl, {assembler::Def(2), R(2)});  // table base (S0 va)
    a.Emit(Opcode::kAshl, {Imm(2), R(1), R(1)});
    a.Emit(Opcode::kAddl2, {R(1), R(2)});  // r2 = &pte
    a.Emit(Opcode::kMovl, {assembler::Def(2), R(4)});  // r4 = old pte
    // r3 = a frame (evicting if needed); preserves r2, r4.
    a.Emit(Opcode::kJsb, {Ref(pf_get_frame)});
    a.Emit(Opcode::kBitl, {Imm(kPteSwapped), R(4)});
    Label pf_swapin = a.NewLabel("pf_swapin");
    Label pf_install = a.NewLabel("pf_install");
    a.Emit(Opcode::kBneq, {}, pf_swapin);
    // Demand-zero: clear all 128 longwords of the frame.
    a.Emit(Opcode::kMovl, {R(3), R(0)});
    a.Emit(Opcode::kMovl, {Imm(128), R(1)});
    Label pf_zero = a.Here("pf_zero");
    a.Emit(Opcode::kClrl, {Inc(0)});
    a.Emit(Opcode::kSobgtr, {R(1)}, pf_zero);
    a.Emit(Opcode::kBrb, {}, pf_install);
    // Swap-in: copy the page back from its slot, then free the slot.
    a.Bind(pf_swapin);
    a.Emit(Opcode::kBicl3, {Imm(0xffc00000), R(4), R(5)});  // r5 = slot
    a.Emit(Opcode::kAshl, {Imm(9), R(5), R(1)});
    a.Emit(Opcode::kAddl2, {Abs(sw_base), R(1)});  // r1 = slot S0 va
    a.Emit(Opcode::kPushl, {R(2)});
    a.Emit(Opcode::kPushl, {R(3)});
    a.Emit(Opcode::kPushl, {R(5)});
    a.Emit(Opcode::kMovc3, {Imm(kPageBytes), Def(1), Def(3)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(5)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(3)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(2)});
    a.Emit(Opcode::kMovl, {Abs(sw_sp), R(0)});
    a.Emit(Opcode::kAshl, {Imm(2), R(0), R(1)});
    a.Emit(Opcode::kAddl2, {Abs(sw_stack), R(1)});
    a.Emit(Opcode::kMovl, {R(5), assembler::Def(1)});
    a.Emit(Opcode::kIncl, {Abs(sw_sp)});
    a.Emit(Opcode::kIncl, {Abs(sw_ins)});
    // Install the PTE and log the page in the resident FIFO.
    a.Bind(pf_install);
    a.Emit(Opcode::kBicl3, {Imm(0x80000000), R(3), R(0)});
    a.Emit(Opcode::kAshl, {Imm(0xf7 /* -9 */), R(0), R(0)});
    a.Emit(Opcode::kBisl2, {Imm(0xe0000000), R(0)});
    a.Emit(Opcode::kMovl, {R(0), assembler::Def(2)});
    a.Emit(Opcode::kMovl, {Abs(fifo_head), R(0)});
    a.Emit(Opcode::kBicl3, {Abs(fifo_notmask), R(0), R(1)});
    a.Emit(Opcode::kAshl, {Imm(3), R(1), R(1)});
    a.Emit(Opcode::kAddl2, {Abs(fifo_base), R(1)});
    a.Emit(Opcode::kMovl, {R(2), assembler::Def(1)});  // pte address
    a.Emit(Opcode::kMovl, {Disp(24, kRegSp), R(0)});
    a.Emit(Opcode::kMovl, {R(0), Disp(4, 1)});         // faulting va
    a.Emit(Opcode::kIncl, {Abs(fifo_head)});
    // Drop any stale TB entry and restart the faulting instruction.
    a.Emit(Opcode::kMtpr, {R(0), IprImm(isa::Ipr::kTbis)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(5)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(4)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(3)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(2)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(1)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(0)});
    a.Emit(Opcode::kAddl2, {Imm(8), R(kRegSp)});  // drop va + reason
    a.Emit(Opcode::kRei);

    // ------------------------------------------------------------------
    // pf_get_frame: r3 <- a usable frame (S0 va). Pops the free list, or
    // evicts the oldest resident page to swap. Clobbers r0, r1, r5;
    // preserves r2 and r4.
    // ------------------------------------------------------------------
    a.Bind(pf_get_frame);
    a.Emit(Opcode::kMovl, {Abs(free_head), R(3)});
    Label gf_evict = a.NewLabel("gf_evict");
    a.Emit(Opcode::kBeql, {}, gf_evict);
    a.Emit(Opcode::kMovl, {assembler::Def(3), R(0)});  // next free frame
    a.Emit(Opcode::kMovl, {R(0), Abs(free_head)});
    a.Emit(Opcode::kDecl, {Abs(free_count)});
    a.Emit(Opcode::kRsb);
    a.Bind(gf_evict);
    // Victim = FIFO tail entry {pte addr, va}.
    a.Emit(Opcode::kMovl, {Abs(fifo_tail), R(0)});
    a.Emit(Opcode::kCmpl, {R(0), Abs(fifo_head)});
    Label gf_have = a.NewLabel("gf_have");
    a.Emit(Opcode::kBneq, {}, gf_have);
    a.Emit(Opcode::kHalt);  // nothing resident to evict: kernel bug
    a.Bind(gf_have);
    a.Emit(Opcode::kBicl3, {Abs(fifo_notmask), R(0), R(1)});
    a.Emit(Opcode::kAshl, {Imm(3), R(1), R(1)});
    a.Emit(Opcode::kAddl2, {Abs(fifo_base), R(1)});
    a.Emit(Opcode::kIncl, {Abs(fifo_tail)});
    a.Emit(Opcode::kMovl, {assembler::Def(1), R(5)});  // victim pte addr
    a.Emit(Opcode::kMovl, {Disp(4, 1), R(0)});         // victim va
    a.Emit(Opcode::kPushl, {R(0)});                    // save victim va
    a.Emit(Opcode::kMovl, {assembler::Def(5), R(1)});  // victim pte
    // r3 = victim frame S0 va.
    a.Emit(Opcode::kBicl3, {Imm(0xffc00000), R(1), R(3)});
    a.Emit(Opcode::kAshl, {Imm(9), R(3), R(3)});
    a.Emit(Opcode::kBisl2, {Imm(0x80000000), R(3)});
    // Allocate a swap slot (r1 = slot number).
    a.Emit(Opcode::kDecl, {Abs(sw_sp)});
    a.Emit(Opcode::kMovl, {Abs(sw_sp), R(1)});
    Label gf_slot_ok = a.NewLabel("gf_slot_ok");
    a.Emit(Opcode::kBgeq, {}, gf_slot_ok);
    a.Emit(Opcode::kHalt);  // out of swap space
    a.Bind(gf_slot_ok);
    a.Emit(Opcode::kAshl, {Imm(2), R(1), R(1)});
    a.Emit(Opcode::kAddl2, {Abs(sw_stack), R(1)});
    a.Emit(Opcode::kMovl, {assembler::Def(1), R(1)});  // slot number
    // Copy frame -> swap slot; MOVC3 clobbers r0-r5, including the
    // caller's r2 and r4, which this routine must preserve.
    a.Emit(Opcode::kPushl, {R(5)});
    a.Emit(Opcode::kPushl, {R(4)});
    a.Emit(Opcode::kPushl, {R(3)});
    a.Emit(Opcode::kPushl, {R(2)});
    a.Emit(Opcode::kPushl, {R(1)});
    a.Emit(Opcode::kAshl, {Imm(9), R(1), R(0)});
    a.Emit(Opcode::kAddl2, {Abs(sw_base), R(0)});
    a.Emit(Opcode::kMovc3, {Imm(kPageBytes), Def(3), Def(0)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(1)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(2)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(3)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(4)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(5)});
    // Victim PTE := swapped | slot; drop its TB entry.
    a.Emit(Opcode::kBisl3, {Imm(kPteSwapped), R(1), R(0)});
    a.Emit(Opcode::kMovl, {R(0), assembler::Def(5)});
    a.Emit(Opcode::kMovl, {Inc(kRegSp), R(0)});  // victim va
    a.Emit(Opcode::kMtpr, {R(0), IprImm(isa::Ipr::kTbis)});
    a.Emit(Opcode::kIncl, {Abs(sw_outs)});
    a.Emit(Opcode::kRsb);

    return a.Finish();
}

}  // namespace atum::kernel
