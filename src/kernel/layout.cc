#include "kernel/layout.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace atum::kernel {

KernelLayout
ComputeLayout(uint32_t usable_frames)
{
    KernelLayout layout;
    layout.usable_frames = usable_frames;

    layout.scb_pa = 0 * kPageBytes;
    layout.kdata_pa = 1 * kPageBytes;
    layout.kstack_pa = 2 * kPageBytes;
    layout.kstack_top_va = kS0Base + layout.kstack_pa + 4 * kPageBytes;
    layout.pcb_base_pa = 6 * kPageBytes;

    static_assert(kMaxProcs * kPcbStride <= 2 * kPageBytes,
                  "PCB array must fit in its two frames");

    layout.s0_table_pa = 8 * kPageBytes;
    const uint32_t s0_table_bytes =
        static_cast<uint32_t>(AlignUp(usable_frames * 4ull, kPageBytes));
    layout.ktext_pa = layout.s0_table_pa + s0_table_bytes;
    layout.ktext_va = kS0Base + layout.ktext_pa;

    // Sanity: we need room for the kernel text plus at least a handful of
    // frames for process images and the paging pool.
    const uint32_t min_frames = layout.ktext_pa / kPageBytes + 32;
    if (usable_frames < min_frames) {
        Fatal("machine too small: ", usable_frames, " usable frames, need >= ",
              min_frames);
    }
    return layout;
}

}  // namespace atum::kernel
