#include "kernel/boot.h"

#include "kernel/kernel_builder.h"
#include "mmu/mmu.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace atum::kernel {

using cpu::CpuMode;
using cpu::ExcVector;
using cpu::Psl;

uint32_t
BootInfo::KernelSymbol(const std::string& name) const
{
    auto it = kernel_symbols.find(name);
    if (it == kernel_symbols.end())
        Fatal("unknown kernel symbol: ", name);
    return it->second;
}

uint32_t
BootInfo::ReadKdata(const cpu::Machine& machine, uint32_t offset) const
{
    return const_cast<cpu::Machine&>(machine).memory().Read32(
        layout.kdata_pa + offset);
}

namespace {

/** Hands out whole frames from a bump pointer; Fatal when exhausted. */
class FrameBump
{
  public:
    FrameBump(uint32_t first_frame, uint32_t limit_frame)
        : next_(first_frame), limit_(limit_frame)
    {
    }

    /** Allocates `n` contiguous frames; returns the first frame number. */
    uint32_t Take(uint32_t n)
    {
        if (next_ + n > limit_)
            Fatal("out of boot-time physical memory (need ", n,
                  " frames, have ", limit_ - next_, ")");
        const uint32_t f = next_;
        next_ += n;
        return f;
    }

    uint32_t next() const { return next_; }

  private:
    uint32_t next_;
    uint32_t limit_;
};

uint32_t
PagesFor(uint32_t bytes)
{
    return static_cast<uint32_t>(AlignUp(bytes, kPageBytes)) / kPageBytes;
}

}  // namespace

BootInfo
BootSystem(cpu::Machine& machine, const std::vector<GuestProgram>& programs,
           const BootOptions& options)
{
    if (programs.empty())
        Fatal("BootSystem requires at least one guest program");
    if (programs.size() > kMaxProcs)
        Fatal("too many guest programs: ", programs.size(), " > ", kMaxProcs);

    PhysicalMemory& mem = machine.memory();
    BootInfo info;
    info.layout = ComputeLayout(mem.NumUsableFrames());
    const KernelLayout& lay = info.layout;

    // Kernel text.
    assembler::Program ktext = BuildKernelImage(lay);
    mem.WriteBlock(lay.ktext_pa, ktext.bytes.data(), ktext.size());
    info.kernel_symbols = ktext.symbols;

    // S0 page table: identity map of all usable frames, kernel-only.
    for (uint32_t f = 0; f < lay.usable_frames; ++f) {
        mem.Write32(lay.s0_table_pa + 4 * f,
                    mmu::MakePte(f, /*user=*/false, /*writable=*/true));
    }

    // SCB vectors.
    const uint32_t k_fault8 = info.KernelSymbol("k_fault8");
    for (uint32_t v = 0; v < static_cast<uint32_t>(ExcVector::kNumVectors);
         ++v) {
        mem.Write32(lay.scb_pa + 4 * v, k_fault8);
    }
    auto set_vector = [&](ExcVector v, const char* sym) {
        mem.Write32(lay.scb_pa + 4 * static_cast<uint32_t>(v),
                    info.KernelSymbol(sym));
    };
    set_vector(ExcVector::kTnv, "k_pf");
    set_vector(ExcVector::kAcv, "k_acv");
    set_vector(ExcVector::kChmk, "k_chmk");
    set_vector(ExcVector::kTimer, "k_timer");
    set_vector(ExcVector::kDmaDone, "k_dma");

    // Processes.
    FrameBump bump(PagesFor(lay.ktext_pa + ktext.size()), lay.usable_frames);
    const uint32_t kdata = lay.kdata_pa;
    using KO = KdataOffsets;

    info.num_processes = static_cast<uint32_t>(programs.size());
    for (uint32_t i = 0; i < programs.size(); ++i) {
        const GuestProgram& gp = programs[i];
        if (gp.program.origin != 0)
            Fatal("guest program '", gp.name, "' must have origin 0");
        if (gp.stack_pages == 0)
            Fatal("guest program '", gp.name, "' needs stack pages");

        const uint32_t text_pages = PagesFor(gp.program.size());
        const uint32_t p0_pages = text_pages + gp.heap_pages;
        const uint32_t p1_pages = gp.stack_pages;

        // Page tables (zero = invalid PTE = demand-zero page).
        const uint32_t p0_tbl_frames = PagesFor(p0_pages * 4);
        const uint32_t p1_tbl_frames = PagesFor(p1_pages * 4);
        const uint32_t p0_tbl_pa = bump.Take(p0_tbl_frames) * kPageBytes;
        const uint32_t p1_tbl_pa = bump.Take(p1_tbl_frames) * kPageBytes;

        // Program image, resident from the start.
        const uint32_t text_frame = bump.Take(text_pages);
        mem.WriteBlock(text_frame * kPageBytes, gp.program.bytes.data(),
                       gp.program.size());
        for (uint32_t p = 0; p < text_pages; ++p) {
            mem.Write32(p0_tbl_pa + 4 * p,
                        mmu::MakePte(text_frame + p, /*user=*/true,
                                     /*writable=*/true));
        }

        // PCB.
        const uint32_t pcb = lay.PcbPa(i);
        for (uint32_t r = 0; r <= 13; ++r)
            mem.Write32(pcb + cpu::PcbLayout::kRegs + 4 * r, 0);
        mem.Write32(pcb + cpu::PcbLayout::kUsp,
                    kP1Base + p1_pages * kPageBytes);
        mem.Write32(pcb + cpu::PcbLayout::kPc, 0);  // P0 entry point
        Psl user_psl;
        user_psl.cur_mode = CpuMode::kUser;
        user_psl.prev_mode = CpuMode::kUser;
        user_psl.ipl = 0;
        mem.Write32(pcb + cpu::PcbLayout::kPsl, user_psl.ToWord());
        mem.Write32(pcb + cpu::PcbLayout::kP0Br, p0_tbl_pa);
        mem.Write32(pcb + cpu::PcbLayout::kP0Lr, p0_pages);
        mem.Write32(pcb + cpu::PcbLayout::kP1Br, p1_tbl_pa);
        mem.Write32(pcb + cpu::PcbLayout::kP1Lr, p1_pages);
        mem.Write32(pcb + cpu::PcbLayout::kPid, i + 1);
        info.pcb_pa.push_back(pcb);
        info.process_names.push_back(gp.name);

        // Kernel bookkeeping arrays.
        mem.Write32(kdata + KO::kAlive + 4 * i, 1);
        mem.Write32(kdata + KO::kP0Tbl + 4 * i, kS0Base + p0_tbl_pa);
        mem.Write32(kdata + KO::kP1Tbl + 4 * i, kS0Base + p1_tbl_pa);
        mem.Write32(kdata + KO::kP0Cap + 4 * i, p0_pages);
    }

    // Kernel globals.
    mem.Write32(kdata + KO::kCurProc, 0);
    mem.Write32(kdata + KO::kNumProc, info.num_processes);
    mem.Write32(kdata + KO::kNumLive, info.num_processes);
    mem.Write32(kdata + KO::kPfCount, 0);
    mem.Write32(kdata + KO::kCsCount, 0);

    // Swap device: a region of frames plus a free-slot stack, and the
    // resident-page FIFO the pager evicts from.
    if (options.swap_frames == 0)
        Fatal("swap_frames must be nonzero");
    const uint32_t swap_pa = bump.Take(options.swap_frames) * kPageBytes;
    const uint32_t swap_stack_pa =
        bump.Take(PagesFor(options.swap_frames * 4)) * kPageBytes;
    for (uint32_t slot = 0; slot < options.swap_frames; ++slot)
        mem.Write32(swap_stack_pa + 4 * slot, slot);
    uint32_t fifo_entries = 1;
    while (fifo_entries < lay.usable_frames)
        fifo_entries *= 2;
    const uint32_t fifo_pa = bump.Take(PagesFor(fifo_entries * 8)) *
                             kPageBytes;
    mem.Write32(kdata + KO::kSwapBase, kS0Base + swap_pa);
    mem.Write32(kdata + KO::kSwapStack, kS0Base + swap_stack_pa);
    mem.Write32(kdata + KO::kSwapSp, options.swap_frames);
    mem.Write32(kdata + KO::kFifoBase, kS0Base + fifo_pa);
    mem.Write32(kdata + KO::kFifoHead, 0);
    mem.Write32(kdata + KO::kFifoTail, 0);
    mem.Write32(kdata + KO::kFifoNotMask, ~(fifo_entries - 1));
    mem.Write32(kdata + KO::kSwapOuts, 0);
    mem.Write32(kdata + KO::kSwapIns, 0);
    mem.Write32(kdata + KO::kDmaDone, 0);
    mem.Write32(kdata + KO::kForks, 0);
    info.swap_frames = options.swap_frames;

    // Frame free list: remaining frames, linked through their first word.
    const uint32_t first_free = bump.next();
    uint32_t pool_limit = lay.usable_frames;
    if (options.max_pool_frames != 0 &&
        first_free + options.max_pool_frames < pool_limit) {
        pool_limit = first_free + options.max_pool_frames;
    }
    uint32_t free_count = 0;
    for (uint32_t f = first_free; f < pool_limit; ++f) {
        const uint32_t next_va =
            f + 1 < pool_limit ? kS0Base + (f + 1) * kPageBytes : 0;
        mem.Write32(f * kPageBytes, next_va);
        ++free_count;
    }
    mem.Write32(kdata + KO::kFreeHead,
                free_count > 0 ? kS0Base + first_free * kPageBytes : 0);
    mem.Write32(kdata + KO::kFreeCount, free_count);
    info.free_frames_at_boot = free_count;
    if (free_count < 4) {
        Fatal("paging pool too small (", free_count,
              " frames); the pager needs a few frames to stand on");
    }

    // CPU initial state: kernel mode, interrupts masked until k_start.
    machine.psl() = Psl{};
    machine.psl().cur_mode = CpuMode::kKernel;
    machine.psl().prev_mode = CpuMode::kKernel;
    machine.psl().ipl = 31;
    machine.WriteIpr(isa::Ipr::kScbb, lay.scb_pa);
    machine.WriteIpr(isa::Ipr::kS0Br, lay.s0_table_pa);
    machine.WriteIpr(isa::Ipr::kS0Lr, lay.usable_frames);
    machine.WriteIpr(isa::Ipr::kPcbb, lay.PcbPa(0));
    machine.WriteIpr(isa::Ipr::kPid, 0);
    machine.WriteIpr(isa::Ipr::kKsp, lay.kstack_top_va);
    machine.WriteIpr(isa::Ipr::kMapen, 1);
    machine.set_pc(info.KernelSymbol("k_start"));

    return info;
}

}  // namespace atum::kernel
