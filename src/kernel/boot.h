#ifndef ATUM_KERNEL_BOOT_H_
#define ATUM_KERNEL_BOOT_H_

/**
 * @file
 * The boot loader ("console firmware"): prepares physical memory with the
 * kernel image, SCB, S0 map, per-process page tables and PCBs, the frame
 * free list, and the initial CPU state, then points the PC at k_start.
 *
 * Like the VAX console, it acts from outside the machine, so nothing it
 * does appears in traces; an AtumTracer must be *constructed* (reserving
 * its buffer) before BootSystem so the reserved region is excluded from
 * the guest's frame pool.
 */

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "assembler/assembler.h"
#include "cpu/machine.h"
#include "kernel/layout.h"

namespace atum::kernel {

/** A user program plus its memory-sizing parameters. */
struct GuestProgram {
    std::string name;
    assembler::Program program;   ///< origin must be 0 (start of P0)
    uint32_t heap_pages = 64;     ///< demand-zero pages after the image
    uint32_t stack_pages = 8;     ///< demand-zero P1 pages
};

/** What BootSystem set up (for tests, analyzers and harnesses). */
struct BootInfo {
    KernelLayout layout;
    std::map<std::string, uint32_t> kernel_symbols;
    uint32_t num_processes = 0;
    std::vector<uint32_t> pcb_pa;          ///< per process
    std::vector<std::string> process_names;
    uint32_t free_frames_at_boot = 0;      ///< paging pool size
    uint32_t swap_frames = 0;              ///< swap-device capacity

    uint32_t KernelSymbol(const std::string& name) const;
    /** Reads a kernel counter (kdata offset) from a halted machine. */
    uint32_t ReadKdata(const cpu::Machine& machine, uint32_t offset) const;
};

/** Boot-time knobs. */
struct BootOptions {
    /** Swap-device capacity in frames (512 B each). */
    uint32_t swap_frames = 256;
    /**
     * Cap on the demand-paging frame pool; 0 = use all remaining frames.
     * Small pools force the pager to evict (memory-pressure studies).
     */
    uint32_t max_pool_frames = 0;
};

/**
 * Boots `machine` with the kernel and one process per guest program
 * (pids 1..N, scheduled round-robin). After BootSystem returns the
 * machine is ready to Run(); it halts when every process has exited.
 * Fatal if the programs do not fit in memory.
 */
BootInfo BootSystem(cpu::Machine& machine,
                    const std::vector<GuestProgram>& programs,
                    const BootOptions& options = {});

}  // namespace atum::kernel

#endif  // ATUM_KERNEL_BOOT_H_
