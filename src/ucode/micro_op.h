#ifndef ATUM_UCODE_MICRO_OP_H_
#define ATUM_UCODE_MICRO_OP_H_

/**
 * @file
 * Micro-operation vocabulary and cost model.
 *
 * The VCX-32 executor realizes each macro-instruction as a sequence of
 * micro-operations, exactly the structure ATUM exploited on the VAX 8200:
 * every architectural memory reference is one micro-op, so a microcode
 * patch sees *all* of them — user and kernel, instruction and data stream,
 * and the translation-buffer miss page-table references.
 *
 * Costs are in micro-cycles; the machine's cycle counter is the sum of the
 * costs of retired micro-ops. Tracing patches add their own micro-cycles,
 * which is how the ATUM slowdown (paper: ~20x) is modelled and measured.
 */

#include <cstdint>

namespace atum::ucode {

/** Kinds of micro-operations with architecturally visible cost. */
enum class MicroOpKind : uint8_t {
    kDispatch,     ///< opcode decode dispatch
    kSpecifier,    ///< operand specifier evaluation step
    kIFetch,       ///< instruction-stream longword fetch
    kDRead,        ///< data-stream read
    kDWrite,       ///< data-stream write
    kPteRead,      ///< page-table entry fetch on TB miss
    kAlu,          ///< add/sub/logic/compare
    kMulDiv,       ///< multiply/divide step (multi-cycle)
    kShift,        ///< barrel shift
    kExcDispatch,  ///< exception/interrupt dispatch sequence
    kRei,          ///< return from exception
    kCall,         ///< CALLS/RET frame sequence
    kCtxSave,      ///< SVPCTX register save sequence
    kCtxLoad,      ///< LDPCTX register load sequence
    kNumKinds,
};

/** Returns the cost of one micro-op of the given kind, in micro-cycles. */
uint32_t CostOf(MicroOpKind kind);

/** Classification of an architectural memory reference. */
enum class MemAccessKind : uint8_t {
    kIFetch = 0,  ///< instruction-stream fetch
    kRead = 1,    ///< data-stream read
    kWrite = 2,   ///< data-stream write
    kPte = 3,     ///< page-table entry read (TB miss service)
    kDma = 4,     ///< DMA engine bus write (physical; vaddr == paddr)
};

/**
 * One architectural memory reference as seen at the microcode patch point.
 * `vaddr` is the virtual address; for kPte references (which the hardware
 * issues physically) `vaddr` holds the physical PTE address and
 * `paddr == vaddr`.
 */
struct MemAccess {
    uint32_t vaddr = 0;
    uint32_t paddr = 0;
    uint8_t size = 0;  ///< bytes: 1, 2 or 4
    MemAccessKind kind = MemAccessKind::kRead;
    bool kernel = false;  ///< CPU was in kernel mode
};

}  // namespace atum::ucode

#endif  // ATUM_UCODE_MICRO_OP_H_
