#include "ucode/micro_op.h"

#include "util/logging.h"

namespace atum::ucode {

uint32_t
CostOf(MicroOpKind kind)
{
    // Loosely calibrated to mid-80s microcoded minis: memory micro-ops
    // dominate, multiply/divide and the context/exception sequences are
    // multi-cycle. Absolute values only matter relative to the tracing
    // patch cost (AtumTracer's cost-per-record), which T2 sweeps.
    switch (kind) {
      case MicroOpKind::kDispatch:
        return 1;
      case MicroOpKind::kSpecifier:
        return 1;
      case MicroOpKind::kIFetch:
        return 2;
      case MicroOpKind::kDRead:
        return 2;
      case MicroOpKind::kDWrite:
        return 2;
      case MicroOpKind::kPteRead:
        return 4;
      case MicroOpKind::kAlu:
        return 1;
      case MicroOpKind::kMulDiv:
        return 16;
      case MicroOpKind::kShift:
        return 2;
      case MicroOpKind::kExcDispatch:
        return 12;
      case MicroOpKind::kRei:
        return 8;
      case MicroOpKind::kCall:
        return 4;
      case MicroOpKind::kCtxSave:
        return 10;
      case MicroOpKind::kCtxLoad:
        return 12;
      case MicroOpKind::kNumKinds:
        break;
    }
    Panic("CostOf: bad micro-op kind");
}

}  // namespace atum::ucode
