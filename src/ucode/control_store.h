#ifndef ATUM_UCODE_CONTROL_STORE_H_
#define ATUM_UCODE_CONTROL_STORE_H_

/**
 * @file
 * The patchable control store.
 *
 * On the VAX 8200 the microcode lived in a writable control store, which is
 * what made ATUM possible: patch micro-routines could be spliced in at the
 * micro-instructions that perform memory references and context switches.
 * This class models exactly those splice points. The executor calls
 * Fire*() at each point; an installed patch runs and returns how many extra
 * micro-cycles it consumed, which the machine adds to its cycle count
 * (tracing dilates execution, as on the real machine).
 *
 * At most one patch per point may be installed (the 8200's control store
 * had one continuation slot per patched micro-address).
 */

#include <cstdint>
#include <functional>

#include "ucode/micro_op.h"

namespace atum::ucode {

/** Named microcode splice points. */
enum class PatchPoint : uint8_t {
    kMemAccess,          ///< every architectural memory reference
    kContextSwitch,      ///< LDPCTX committed a new process context
    kTlbMiss,            ///< translation buffer miss (before PTE fetch)
    kExceptionDispatch,  ///< exception/interrupt vectoring
    kDecode,             ///< opcode dispatch (pc, opcode byte)
    kNumPoints,
};

class ControlStore
{
  public:
    /** Patch body for kMemAccess; returns extra micro-cycles consumed. */
    using MemAccessHook = std::function<uint32_t(const MemAccess&)>;
    /** Patch body for kContextSwitch: new pid and its PCB physical addr. */
    using ContextSwitchHook =
        std::function<uint32_t(uint16_t pid, uint32_t pcb_pa)>;
    /** Patch body for kTlbMiss: faulting virtual address, mode. */
    using TlbMissHook = std::function<uint32_t(uint32_t vaddr, bool kernel)>;
    /** Patch body for kExceptionDispatch: SCB vector index. */
    using ExceptionHook = std::function<uint32_t(uint8_t vector)>;
    /** Patch body for kDecode: instruction address and opcode byte. */
    using DecodeHook =
        std::function<uint32_t(uint32_t pc, uint8_t opcode, bool kernel)>;

    ControlStore() = default;
    ControlStore(const ControlStore&) = delete;
    ControlStore& operator=(const ControlStore&) = delete;

    /** Installs a patch; Fatal if the point is already patched. */
    void PatchMemAccess(MemAccessHook hook);
    void PatchContextSwitch(ContextSwitchHook hook);
    void PatchTlbMiss(TlbMissHook hook);
    void PatchExceptionDispatch(ExceptionHook hook);
    void PatchDecode(DecodeHook hook);

    /** Removes the patch at `point` (no-op when absent). */
    void Unpatch(PatchPoint point);
    /** Removes all patches. */
    void UnpatchAll();

    bool IsPatched(PatchPoint point) const;

    /**
     * Splice-point entries, called by the executor. Each returns the extra
     * micro-cycles consumed by the patch (0 when unpatched).
     */
    uint32_t FireMemAccess(const MemAccess& access);
    uint32_t FireContextSwitch(uint16_t pid, uint32_t pcb_pa);
    uint32_t FireTlbMiss(uint32_t vaddr, bool kernel);
    uint32_t FireExceptionDispatch(uint8_t vector);
    uint32_t FireDecode(uint32_t pc, uint8_t opcode, bool kernel);

    /** Number of times each splice point fired (patched or not). */
    uint64_t FireCount(PatchPoint point) const;

  private:
    MemAccessHook mem_hook_;
    ContextSwitchHook csw_hook_;
    TlbMissHook tlb_hook_;
    ExceptionHook exc_hook_;
    DecodeHook decode_hook_;
    uint64_t fire_counts_[static_cast<size_t>(PatchPoint::kNumPoints)] = {};
};

}  // namespace atum::ucode

#endif  // ATUM_UCODE_CONTROL_STORE_H_
