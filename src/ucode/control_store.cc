#include "ucode/control_store.h"

#include "util/logging.h"

namespace atum::ucode {

void
ControlStore::PatchMemAccess(MemAccessHook hook)
{
    if (mem_hook_)
        Fatal("kMemAccess already patched");
    mem_hook_ = std::move(hook);
}

void
ControlStore::PatchContextSwitch(ContextSwitchHook hook)
{
    if (csw_hook_)
        Fatal("kContextSwitch already patched");
    csw_hook_ = std::move(hook);
}

void
ControlStore::PatchTlbMiss(TlbMissHook hook)
{
    if (tlb_hook_)
        Fatal("kTlbMiss already patched");
    tlb_hook_ = std::move(hook);
}

void
ControlStore::PatchExceptionDispatch(ExceptionHook hook)
{
    if (exc_hook_)
        Fatal("kExceptionDispatch already patched");
    exc_hook_ = std::move(hook);
}

void
ControlStore::PatchDecode(DecodeHook hook)
{
    if (decode_hook_)
        Fatal("kDecode already patched");
    decode_hook_ = std::move(hook);
}

void
ControlStore::Unpatch(PatchPoint point)
{
    switch (point) {
      case PatchPoint::kMemAccess:
        mem_hook_ = nullptr;
        break;
      case PatchPoint::kContextSwitch:
        csw_hook_ = nullptr;
        break;
      case PatchPoint::kTlbMiss:
        tlb_hook_ = nullptr;
        break;
      case PatchPoint::kExceptionDispatch:
        exc_hook_ = nullptr;
        break;
      case PatchPoint::kDecode:
        decode_hook_ = nullptr;
        break;
      case PatchPoint::kNumPoints:
        Panic("Unpatch: bad patch point");
    }
}

void
ControlStore::UnpatchAll()
{
    mem_hook_ = nullptr;
    csw_hook_ = nullptr;
    tlb_hook_ = nullptr;
    exc_hook_ = nullptr;
    decode_hook_ = nullptr;
}

bool
ControlStore::IsPatched(PatchPoint point) const
{
    switch (point) {
      case PatchPoint::kMemAccess:
        return static_cast<bool>(mem_hook_);
      case PatchPoint::kContextSwitch:
        return static_cast<bool>(csw_hook_);
      case PatchPoint::kTlbMiss:
        return static_cast<bool>(tlb_hook_);
      case PatchPoint::kExceptionDispatch:
        return static_cast<bool>(exc_hook_);
      case PatchPoint::kDecode:
        return static_cast<bool>(decode_hook_);
      case PatchPoint::kNumPoints:
        break;
    }
    Panic("IsPatched: bad patch point");
}

uint32_t
ControlStore::FireMemAccess(const MemAccess& access)
{
    ++fire_counts_[static_cast<size_t>(PatchPoint::kMemAccess)];
    return mem_hook_ ? mem_hook_(access) : 0;
}

uint32_t
ControlStore::FireContextSwitch(uint16_t pid, uint32_t pcb_pa)
{
    ++fire_counts_[static_cast<size_t>(PatchPoint::kContextSwitch)];
    return csw_hook_ ? csw_hook_(pid, pcb_pa) : 0;
}

uint32_t
ControlStore::FireTlbMiss(uint32_t vaddr, bool kernel)
{
    ++fire_counts_[static_cast<size_t>(PatchPoint::kTlbMiss)];
    return tlb_hook_ ? tlb_hook_(vaddr, kernel) : 0;
}

uint32_t
ControlStore::FireExceptionDispatch(uint8_t vector)
{
    ++fire_counts_[static_cast<size_t>(PatchPoint::kExceptionDispatch)];
    return exc_hook_ ? exc_hook_(vector) : 0;
}

uint32_t
ControlStore::FireDecode(uint32_t pc, uint8_t opcode, bool kernel)
{
    ++fire_counts_[static_cast<size_t>(PatchPoint::kDecode)];
    return decode_hook_ ? decode_hook_(pc, opcode, kernel) : 0;
}

uint64_t
ControlStore::FireCount(PatchPoint point) const
{
    if (point >= PatchPoint::kNumPoints)
        Panic("FireCount: bad patch point");
    return fire_counts_[static_cast<size_t>(point)];
}

}  // namespace atum::ucode
