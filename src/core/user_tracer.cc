#include "core/user_tracer.h"

#include "util/logging.h"

namespace atum::core {

using ucode::ControlStore;
using ucode::MemAccess;
using ucode::MemAccessKind;

UserOnlyTracer::UserOnlyTracer(cpu::Machine& machine, trace::TraceSink& sink,
                               const UserTracerConfig& config)
    : machine_(machine), sink_(sink), config_(config)
{
}

UserOnlyTracer::~UserOnlyTracer()
{
    if (attached_)
        Detach();
}

void
UserOnlyTracer::Attach()
{
    if (attached_)
        Fatal("UserOnlyTracer already attached");
    ControlStore& cs = machine_.control_store();

    cs.PatchMemAccess([this](const MemAccess& access) -> uint32_t {
        // A user-space software probe sees only its own process's
        // user-mode instruction and data stream.
        if (access.kernel || current_pid_ != config_.target_pid ||
            access.kind == MemAccessKind::kPte ||
            (access.kind == MemAccessKind::kIFetch &&
             !config_.record_ifetch)) {
            ++suppressed_;
            return 0;
        }
        // The historical probes had no retry story either: a refused
        // record is simply gone (but we count the loss).
        if (sink_.Append(trace::FromMemAccess(access)).ok())
            ++records_;
        else
            ++lost_records_;
        return config_.cost_per_record;
    });
    // The probe does not see context switches, but the comparison harness
    // needs to know which process is running; a real user-only tracer got
    // the same effect by being linked into exactly one program.
    cs.PatchContextSwitch([this](uint16_t pid, uint32_t) -> uint32_t {
        current_pid_ = pid;
        return 0;
    });

    attached_ = true;
}

void
UserOnlyTracer::Detach()
{
    if (!attached_)
        return;
    ControlStore& cs = machine_.control_store();
    cs.Unpatch(ucode::PatchPoint::kMemAccess);
    cs.Unpatch(ucode::PatchPoint::kContextSwitch);
    attached_ = false;
}

}  // namespace atum::core
