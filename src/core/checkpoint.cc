#include "core/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "util/crc32.h"
#include "util/serialize.h"

namespace atum::core {

namespace {

// -- little-endian helpers over raw frame buffers ---------------------------

void
Put16(std::vector<uint8_t>& out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
Put32(std::vector<uint8_t>& out, uint32_t v)
{
    Put16(out, static_cast<uint16_t>(v));
    Put16(out, static_cast<uint16_t>(v >> 16));
}

void
Put64(std::vector<uint8_t>& out, uint64_t v)
{
    Put32(out, static_cast<uint32_t>(v));
    Put32(out, static_cast<uint32_t>(v >> 32));
}

uint16_t
Get16(const uint8_t* p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
Get32(const uint8_t* p)
{
    return static_cast<uint32_t>(Get16(p)) |
           (static_cast<uint32_t>(Get16(p + 2)) << 16);
}

uint64_t
Get64(const uint8_t* p)
{
    return static_cast<uint64_t>(Get32(p)) |
           (static_cast<uint64_t>(Get32(p + 4)) << 32);
}

// -- meta section payload ---------------------------------------------------

void
SerializeMeta(const CheckpointMeta& meta, util::StateWriter& w)
{
    w.U32(meta.machine_config.mem_bytes);
    w.U32(static_cast<uint32_t>(meta.machine_config.tlb_sets));
    w.U32(static_cast<uint32_t>(meta.machine_config.tlb_ways));
    w.U32(meta.machine_config.timer_reload);

    const AtumConfig& t = meta.tracer_config;
    w.U32(t.buffer_bytes);
    w.U32(t.cost_per_record);
    w.U32(t.drain_pause_ucycles);
    w.Bool(t.record_ifetch);
    w.Bool(t.record_pte);
    w.Bool(t.record_tlb_miss);
    w.Bool(t.record_exceptions);
    w.Bool(t.record_opcodes);
    w.U32(t.drain_max_retries);
    w.U32(t.drain_retry_ucycles);

    w.U64(meta.sequence);
    w.U64(meta.instructions);
    w.U64(meta.instructions_remaining);
    w.Str(meta.trace_path);
    w.Bool(meta.has_sink_state);
}

util::Status
DeserializeMeta(const std::vector<uint8_t>& bytes, CheckpointMeta* meta)
{
    util::StateReader r(bytes);
    meta->machine_config.mem_bytes = r.U32();
    meta->machine_config.tlb_sets = r.U32();
    meta->machine_config.tlb_ways = r.U32();
    meta->machine_config.timer_reload = r.U32();

    AtumConfig& t = meta->tracer_config;
    t.buffer_bytes = r.U32();
    t.cost_per_record = r.U32();
    t.drain_pause_ucycles = r.U32();
    t.record_ifetch = r.Bool();
    t.record_pte = r.Bool();
    t.record_tlb_miss = r.Bool();
    t.record_exceptions = r.Bool();
    t.record_opcodes = r.Bool();
    t.drain_max_retries = r.U32();
    t.drain_retry_ucycles = r.U32();

    meta->sequence = r.U64();
    meta->instructions = r.U64();
    meta->instructions_remaining = r.U64();
    meta->trace_path = r.Str();
    meta->has_sink_state = r.Bool();
    if (!r.ok())
        return r.status();
    if (!r.AtEnd())
        return util::DataLoss("checkpoint meta section has ", r.remaining(),
                              " trailing bytes");
    return util::OkStatus();
}

// -- sink section payload ---------------------------------------------------

void
SerializeSink(const trace::Atf2ResumeState& state, util::StateWriter& w)
{
    w.U64(state.file_bytes);
    w.U32(state.chunks);
    w.U64(state.records);
    w.U32(state.chunk_records);
    w.Blob(state.pending.data(), state.pending.size());
}

util::Status
DeserializeSink(const std::vector<uint8_t>& bytes,
                trace::Atf2ResumeState* state)
{
    util::StateReader r(bytes);
    state->file_bytes = r.U64();
    state->chunks = r.U32();
    state->records = r.U64();
    state->chunk_records = r.U32();
    state->pending = r.Blob();
    if (!r.ok())
        return r.status();
    if (!r.AtEnd())
        return util::DataLoss("checkpoint sink section has ", r.remaining(),
                              " trailing bytes");
    if (state->pending.size() % trace::kRecordBytes != 0)
        return util::DataLoss("checkpoint open-chunk bytes (",
                              state->pending.size(),
                              ") are not a whole number of records");
    return util::OkStatus();
}

// -- framing ----------------------------------------------------------------

util::Status
WriteSection(trace::ByteSink& out, CheckpointSection id,
             const std::vector<uint8_t>& payload, uint32_t* sections,
             uint64_t* payload_total)
{
    std::vector<uint8_t> header;
    header.reserve(kCheckpointSectionHeaderBytes);
    Put32(header, kCheckpointSectionMagic);
    Put32(header, static_cast<uint32_t>(id));
    Put64(header, payload.size());
    Put32(header, util::Crc32c(payload.data(), payload.size()));
    Put32(header, util::Crc32c(header.data(), header.size()));

    util::Status status = out.Write(header.data(), header.size());
    if (!status.ok())
        return status;
    status = out.Write(payload.data(), payload.size());
    if (!status.ok())
        return status;
    ++*sections;
    *payload_total += payload.size();
    return util::OkStatus();
}

/** Reads exactly `len` bytes or fails with data-loss. */
util::Status
ReadExact(trace::ByteSource& in, uint8_t* dst, size_t len,
          const char* what)
{
    size_t got = 0;
    while (got < len) {
        util::StatusOr<size_t> n = in.Read(dst + got, len - got);
        if (!n.ok())
            return n.status();
        if (*n == 0)
            return util::DataLoss("checkpoint truncated in ", what, " (",
                                  got, " of ", len, " bytes)");
        got += *n;
    }
    return util::OkStatus();
}

}  // namespace

util::Status
WriteCheckpoint(trace::ByteSink& out, const CheckpointMeta& meta,
                const cpu::Machine& machine, const AtumTracer& tracer,
                const trace::Atf2ResumeState* sink_state)
{
    const uint32_t section_count = sink_state ? 4 : 3;

    std::vector<uint8_t> header;
    header.reserve(kCheckpointHeaderBytes);
    header.insert(header.end(), kCheckpointMagic, kCheckpointMagic + 8);
    Put16(header, kCheckpointVersion);
    Put16(header, 0);  // flags
    Put32(header, section_count);
    while (header.size() < kCheckpointHeaderBytes - 4)
        header.push_back(0);  // reserved
    Put32(header, util::Crc32c(header.data(), header.size()));
    util::Status status = out.Write(header.data(), header.size());
    if (!status.ok())
        return status;

    uint32_t sections = 0;
    uint64_t payload_total = 0;

    {
        util::StateWriter w;
        CheckpointMeta stamped = meta;
        stamped.has_sink_state = sink_state != nullptr;
        SerializeMeta(stamped, w);
        status = WriteSection(out, CheckpointSection::kMeta, w.bytes(),
                              &sections, &payload_total);
        if (!status.ok())
            return status;
    }
    {
        util::StateWriter w;
        status = machine.Save(w);
        if (!status.ok())
            return status;
        status = WriteSection(out, CheckpointSection::kMachine, w.bytes(),
                              &sections, &payload_total);
        if (!status.ok())
            return status;
    }
    {
        util::StateWriter w;
        status = tracer.Save(w);
        if (!status.ok())
            return status;
        status = WriteSection(out, CheckpointSection::kTracer, w.bytes(),
                              &sections, &payload_total);
        if (!status.ok())
            return status;
    }
    if (sink_state) {
        util::StateWriter w;
        SerializeSink(*sink_state, w);
        status = WriteSection(out, CheckpointSection::kSink, w.bytes(),
                              &sections, &payload_total);
        if (!status.ok())
            return status;
    }

    std::vector<uint8_t> footer;
    footer.reserve(kCheckpointFooterBytes);
    Put32(footer, kCheckpointFooterMagic);
    Put32(footer, sections);
    Put64(footer, payload_total);
    Put32(footer, 0);  // reserved
    Put32(footer, util::Crc32c(footer.data(), footer.size()));
    status = out.Write(footer.data(), footer.size());
    if (!status.ok())
        return status;
    return out.Flush();
}

namespace {
bool g_checkpoint_dirsync_enabled = true;
}  // namespace

void
SetCheckpointDirSyncForTest(bool enabled)
{
    g_checkpoint_dirsync_enabled = enabled;
}

util::Status
WriteCheckpointFile(const std::string& path, const CheckpointMeta& meta,
                    const cpu::Machine& machine, const AtumTracer& tracer,
                    const trace::Atf2ResumeState* sink_state, io::Vfs& vfs)
{
    // Atomic publish: write a sibling temp file, fsync it, then rename
    // over the target. A crash at any point leaves either the previous
    // checkpoint or a stray .tmp — never a half-written file under the
    // real name.
    const std::string tmp = path + ".tmp";
    {
        util::StatusOr<std::unique_ptr<trace::FileByteSink>> out =
            trace::FileByteSink::Open(tmp, vfs);
        if (!out.ok())
            return out.status();
        util::Status status =
            WriteCheckpoint(**out, meta, machine, tracer, sink_state);
        if (status.ok())
            status = (*out)->Sync();
        const util::Status close_status = (*out)->Close();
        if (status.ok())
            status = close_status;
        if (!status.ok()) {
            (void)vfs.Unlink(tmp);
            return status;
        }
    }
    if (util::Status status = vfs.Rename(tmp, path); !status.ok()) {
        (void)vfs.Unlink(tmp);
        return status;
    }
    // The rename is only a promise until the directory itself is synced:
    // without this, a power cut can roll the namespace back and silently
    // un-publish a checkpoint the session already counted as written.
    if (g_checkpoint_dirsync_enabled) {
        if (util::Status status = vfs.DirSync(path); !status.ok())
            return status;
    }
    return util::OkStatus();
}

util::StatusOr<Checkpoint>
Checkpoint::Read(trace::ByteSource& in)
{
    uint8_t header[kCheckpointHeaderBytes];
    util::Status status = ReadExact(in, header, sizeof header, "header");
    if (!status.ok())
        return status;
    if (std::memcmp(header, kCheckpointMagic, 8) != 0)
        return util::InvalidArgument("not an ATUM checkpoint file");
    if (Get32(&header[kCheckpointHeaderBytes - 4]) !=
        util::Crc32c(header, kCheckpointHeaderBytes - 4))
        return util::DataLoss("checkpoint header CRC mismatch");
    const uint16_t version = Get16(&header[8]);
    if (version != kCheckpointVersion)
        return util::InvalidArgument("unsupported checkpoint version ",
                                     version);
    const uint32_t section_count = Get32(&header[12]);
    if (section_count < 3 || section_count > 16)
        return util::DataLoss("implausible checkpoint section count ",
                              section_count);

    Checkpoint ckpt;
    bool have[5] = {};
    uint64_t payload_total = 0;
    for (uint32_t i = 0; i < section_count; ++i) {
        uint8_t sh[kCheckpointSectionHeaderBytes];
        status = ReadExact(in, sh, sizeof sh, "section header");
        if (!status.ok())
            return status;
        if (Get32(&sh[0]) != kCheckpointSectionMagic)
            return util::DataLoss("bad section marker in checkpoint");
        if (Get32(&sh[20]) != util::Crc32c(sh, 20))
            return util::DataLoss("checkpoint section header CRC mismatch");
        const uint32_t id = Get32(&sh[4]);
        const uint64_t len = Get64(&sh[8]);
        const uint32_t payload_crc = Get32(&sh[16]);
        if (len > (64u << 20))
            return util::DataLoss("implausible checkpoint section size ",
                                  len);
        std::vector<uint8_t> payload(len);
        status = ReadExact(in, payload.data(), len, "section payload");
        if (!status.ok())
            return status;
        if (util::Crc32c(payload.data(), payload.size()) != payload_crc)
            return util::DataLoss("checkpoint section ", id,
                                  " payload CRC mismatch");
        payload_total += len;

        switch (static_cast<CheckpointSection>(id)) {
        case CheckpointSection::kMeta:
            status = DeserializeMeta(payload, &ckpt.meta_);
            if (!status.ok())
                return status;
            have[1] = true;
            break;
        case CheckpointSection::kMachine:
            ckpt.machine_bytes_ = std::move(payload);
            have[2] = true;
            break;
        case CheckpointSection::kTracer:
            ckpt.tracer_bytes_ = std::move(payload);
            have[3] = true;
            break;
        case CheckpointSection::kSink:
            status = DeserializeSink(payload, &ckpt.sink_state_);
            if (!status.ok())
                return status;
            have[4] = true;
            break;
        default:
            // Unknown section ids from a future minor revision are
            // skipped (their CRC was still verified above).
            break;
        }
    }

    uint8_t footer[kCheckpointFooterBytes];
    status = ReadExact(in, footer, sizeof footer, "footer");
    if (!status.ok())
        return status;
    if (Get32(&footer[0]) != kCheckpointFooterMagic)
        return util::DataLoss("checkpoint footer marker missing");
    if (Get32(&footer[kCheckpointFooterBytes - 4]) !=
        util::Crc32c(footer, kCheckpointFooterBytes - 4))
        return util::DataLoss("checkpoint footer CRC mismatch");
    if (Get32(&footer[4]) != section_count ||
        Get64(&footer[8]) != payload_total)
        return util::DataLoss("checkpoint footer totals disagree with body");

    if (!have[1] || !have[2] || !have[3])
        return util::DataLoss("checkpoint is missing a required section");
    if (ckpt.meta_.has_sink_state && !have[4])
        return util::DataLoss(
            "checkpoint promises trace-sink state but has none");
    return ckpt;
}

util::StatusOr<Checkpoint>
Checkpoint::Load(const std::string& path, io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<trace::FileByteSource>> in =
        trace::FileByteSource::Open(path, vfs);
    if (!in.ok())
        return in.status();
    return Read(**in);
}

util::Status
Checkpoint::RestoreMachine(cpu::Machine& machine) const
{
    util::StateReader r(machine_bytes_);
    util::Status status = machine.Restore(r);
    if (!status.ok())
        return status;
    if (!r.AtEnd())
        return util::DataLoss("checkpoint machine section has ",
                              r.remaining(), " trailing bytes");
    return util::OkStatus();
}

util::Status
Checkpoint::RestoreTracer(AtumTracer& tracer) const
{
    util::StateReader r(tracer_bytes_);
    util::Status status = tracer.Restore(r);
    if (!status.ok())
        return status;
    if (!r.AtEnd())
        return util::DataLoss("checkpoint tracer section has ",
                              r.remaining(), " trailing bytes");
    return util::OkStatus();
}

CheckpointRotator::CheckpointRotator(std::string base, uint32_t keep,
                                     uint64_t next_seq, io::Vfs& vfs)
    : base_(std::move(base)), keep_(keep == 0 ? 1 : keep),
      seq_(next_seq == 0 ? 1 : next_seq), vfs_(&vfs)
{
}

std::string
CheckpointRotator::PathFor(uint64_t seq) const
{
    char suffix[32];
    std::snprintf(suffix, sizeof suffix, ".%06" PRIu64 ".atck", seq);
    return base_ + suffix;
}

util::Status
CheckpointRotator::Write(CheckpointMeta meta, const cpu::Machine& machine,
                         const AtumTracer& tracer,
                         const trace::Atf2ResumeState* sink_state)
{
    meta.sequence = seq_;
    const std::string path = PathFor(seq_);
    const util::Status status =
        WriteCheckpointFile(path, meta, machine, tracer, sink_state, *vfs_);
    if (!status.ok())
        return status;
    last_path_ = path;
    ++written_;
    ++seq_;
    if (seq_ > keep_ + 1) {
        // The checkpoint that just fell out of the retention window. A
        // failed remove is harmless (the file may belong to an earlier
        // series or already be gone).
        (void)vfs_->Unlink(PathFor(seq_ - 1 - keep_));
    }
    return util::OkStatus();
}

}  // namespace atum::core
