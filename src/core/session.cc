#include "core/session.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "obs/flight.h"
#include "util/logging.h"

namespace atum::core {

namespace {

SessionResult
RunCommon(cpu::Machine& machine, uint64_t max_instructions)
{
    SessionResult result;
    const uint64_t ucycles_before = machine.ucycles();
    const auto run = machine.Run(max_instructions);
    result.instructions = run.instructions;
    result.ucycles = machine.ucycles() - ucycles_before;
    result.halted = run.reason == cpu::Machine::StopReason::kHalted;
    return result;
}

void
FillTracerStats(SessionResult& result, AtumTracer& tracer)
{
    result.records = tracer.records();
    result.buffer_fills = tracer.buffer_fills();
    result.overhead_ucycles = tracer.overhead_ucycles();
    result.lost_records = tracer.lost_records();
    result.loss_events = tracer.loss_events();
    result.degraded = tracer.degraded();
}

}  // namespace

void
PublishCaptureMetrics(obs::Registry& reg, const cpu::Machine& machine,
                      const AtumTracer& tracer, const trace::FileSink* sink)
{
    machine.PublishMetrics(reg);
    tracer.PublishMetrics(reg);
    if (sink)
        sink->PublishMetrics(reg);
}

const char*
StopCauseName(StopCause cause)
{
    switch (cause) {
    case StopCause::kHalted:
        return "halted";
    case StopCause::kInstrLimit:
        return "instr-limit";
    case StopCause::kDeadline:
        return "deadline";
    case StopCause::kWatchdog:
        return "watchdog";
    case StopCause::kSignal:
        return "signal";
    }
    return "?";
}

SessionResult
RunTraced(cpu::Machine& machine, AtumTracer& tracer,
          uint64_t max_instructions)
{
    if (!tracer.attached())
        tracer.Attach();
    SessionResult result = RunCommon(machine, max_instructions);
    result.drain_status = tracer.Flush();
    result.stop_cause =
        result.halted ? StopCause::kHalted : StopCause::kInstrLimit;
    FillTracerStats(result, tracer);
    return result;
}

SessionResult
RunBaseline(cpu::Machine& machine, UserOnlyTracer& tracer,
            uint64_t max_instructions)
{
    if (!tracer.attached())
        tracer.Attach();
    SessionResult result = RunCommon(machine, max_instructions);
    result.stop_cause =
        result.halted ? StopCause::kHalted : StopCause::kInstrLimit;
    result.records = tracer.records();
    result.lost_records = tracer.lost_records();
    return result;
}

SessionResult
RunUntraced(cpu::Machine& machine, uint64_t max_instructions)
{
    SessionResult result = RunCommon(machine, max_instructions);
    result.stop_cause =
        result.halted ? StopCause::kHalted : StopCause::kInstrLimit;
    return result;
}

SessionResult
RunSupervised(cpu::Machine& machine, AtumTracer& tracer,
              const SupervisorOptions& options)
{
    using Clock = std::chrono::steady_clock;

    if (!tracer.attached())
        tracer.Attach();

    SessionResult result;
    const uint64_t ucycles_before = machine.ucycles();
    const Clock::time_point start = Clock::now();
    const Clock::time_point deadline =
        start + std::chrono::milliseconds(options.deadline_ms);

    // Watchdog anchor: the micro-cycle stamp of the last clean (i.e.
    // non-faulting) retirement. Faulting dispatches advance icount too,
    // so icount alone cannot distinguish a wedged exception loop from a
    // busy guest; LastStepFaulted can.
    uint64_t last_progress_ucycles = machine.ucycles();
    uint64_t fills_at_last_checkpoint = tracer.buffer_fills();
    StopCause cause = StopCause::kInstrLimit;
    bool stopped = false;

    obs::Registry& registry =
        options.registry ? *options.registry : obs::Registry::Global();
    obs::Counter& checkpoint_counter =
        registry.GetCounter("supervisor.checkpoints");
    obs::Histogram& checkpoint_us =
        registry.GetHistogram("supervisor.checkpoint_us");
    obs::Gauge& watchdog_slack =
        registry.GetGauge("supervisor.watchdog_slack_ucycles");

    // Publishes every layer and, when streaming is on, hands the emitter
    // a chance to write a snapshot line. All of this runs on the machine
    // thread at drain-safe boundaries, so publishing plain members races
    // with nothing.
    const auto publish = [&] {
        PublishCaptureMetrics(registry, machine, tracer, options.file_sink);
        if (options.watchdog_ucycles != 0) {
            const uint64_t since =
                machine.ucycles() - last_progress_ucycles;
            watchdog_slack.Set(
                since >= options.watchdog_ucycles
                    ? 0
                    : static_cast<int64_t>(options.watchdog_ucycles - since));
        }
    };

    obs::PhaseProfiler* const profiler = options.profiler;

    const auto take_checkpoint = [&](uint64_t instructions_done) {
        ATUM_SPAN_NAMED(cp_span, "supervisor", "checkpoint");
        const uint64_t cp_start_ns = obs::MonotonicNowNs();
        const auto cp_start = Clock::now();
        CheckpointMeta meta = options.meta;
        meta.instructions = machine.icount();
        meta.instructions_remaining =
            options.max_instructions == UINT64_MAX
                ? UINT64_MAX
                : options.max_instructions - instructions_done;
        util::Status status;
        if (options.file_sink) {
            util::StatusOr<trace::Atf2ResumeState> sink_state =
                options.file_sink->SaveState();
            if (sink_state.ok()) {
                meta.has_sink_state = true;
                status = options.checkpoints->Write(meta, machine, tracer,
                                                    &*sink_state);
            } else {
                status = sink_state.status();
            }
        } else {
            status =
                options.checkpoints->Write(meta, machine, tracer, nullptr);
        }
        if (!status.ok()) {
            // The capture goes on: losing checkpoint coverage is strictly
            // better than losing the capture.
            if (result.checkpoint_status.ok())
                result.checkpoint_status = status;
            Warn("checkpoint write failed (capture continues): ",
                 status.ToString());
        }
        fills_at_last_checkpoint = tracer.buffer_fills();
        checkpoint_counter.Add(1);
        checkpoint_us.Add(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - cp_start)
                .count()));
        cp_span.set_arg("instructions", machine.icount());
        if (profiler != nullptr) {
            // Exact-timed and excised from any open sampled window, so
            // scaling by N cannot multiply a checkpoint publish.
            const uint64_t cp_ns = obs::MonotonicNowNs() - cp_start_ns;
            profiler->AddExact(obs::Phase::kCheckpoint, cp_ns);
            profiler->SkipTime(cp_ns);
        }
        if (options.emitter) {
            const uint64_t io_start_ns = obs::MonotonicNowNs();
            publish();
            options.emitter->Emit("checkpoint");
            if (profiler != nullptr) {
                const uint64_t io_ns =
                    obs::MonotonicNowNs() - io_start_ns;
                profiler->AddExact(obs::Phase::kIo, io_ns);
                profiler->SkipTime(io_ns);
            }
        }
    };

    if (options.emitter) {
        publish();
        options.emitter->Emit("start");
    }

    // The profiler rides along for the whole supervised run: the machine
    // attributes translate/memory/tracer time and the tracer its drains
    // while a sampled window is open.
    if (profiler != nullptr) {
        machine.SetPhaseProfiler(profiler);
        tracer.SetPhaseProfiler(profiler);
        profiler->BeginRun();
    }

    uint64_t executed = 0;
    while (!stopped && !machine.halted() &&
           executed < options.max_instructions) {
        ATUM_SPAN_NAMED(slice_span, "supervisor", "slice");
        // One supervision slice: instruction-by-instruction so the
        // watchdog and checkpoint policy see every boundary, but all
        // host-side clock/flag checks stay out here at slice granularity.
        const uint64_t slice_end =
            executed + std::min(options.slice_instructions,
                                options.max_instructions - executed);
        while (!machine.halted() && executed < slice_end) {
            // The sampled window covers the instruction *and* its
            // supervision checks; the remainder outside nested phases is
            // the dispatch cost the rewrite PR wants to shrink.
            if (profiler != nullptr)
                profiler->BeginSample();
            machine.StepOne();
            ++executed;
            if (!machine.LastStepFaulted())
                last_progress_ucycles = machine.ucycles();
            else if (options.watchdog_ucycles != 0 &&
                     machine.ucycles() - last_progress_ucycles >
                         options.watchdog_ucycles) {
                cause = StopCause::kWatchdog;
                stopped = true;
                Warn("watchdog: no clean instruction retirement in ",
                     machine.ucycles() - last_progress_ucycles,
                     " ucycles; stopping capture");
                // The flight dump is the post-mortem: its last event
                // names the failure the run journal will report.
                obs::flight::Note("supervisor.watchdog", nullptr,
                                  machine.ucycles() - last_progress_ucycles,
                                  machine.icount());
                obs::flight::DumpNow("watchdog");
                break;
            }
            if (options.checkpoints &&
                tracer.buffer_fills() - fills_at_last_checkpoint >=
                    options.checkpoint_every_fills)
                take_checkpoint(executed);
            if (options.kill_after_fills != 0 &&
                tracer.buffer_fills() >= options.kill_after_fills) {
                // Test hook: vanish exactly as SIGKILL would — no
                // destructors, no seal, no final checkpoint. 137 is the
                // shell's exit code for a SIGKILLed process.
                std::_Exit(137);
            }
            if (profiler != nullptr)
                profiler->EndSample();
        }
        if (profiler != nullptr)
            profiler->EndSample();  // close a window left open by `break`
        slice_span.set_arg("executed", executed);
        if (options.emitter) {
            const uint64_t io_start_ns = obs::MonotonicNowNs();
            publish();
            options.emitter->MaybeEmit("interval");
            if (profiler != nullptr)
                profiler->AddExact(obs::Phase::kIo,
                                   obs::MonotonicNowNs() - io_start_ns);
        }
        if (options.on_slice)
            options.on_slice();
        if (stopped)
            break;
        if (options.stop_flag && *options.stop_flag != 0) {
            cause = StopCause::kSignal;
            break;
        }
        if (options.deadline_ms != 0 && Clock::now() >= deadline) {
            cause = StopCause::kDeadline;
            break;
        }
    }
    if (machine.halted())
        cause = StopCause::kHalted;

    result.instructions = executed;
    result.ucycles = machine.ucycles() - ucycles_before;
    result.halted = machine.halted();
    result.stop_cause = cause;

    // Seal order matters for resumability: the final checkpoint is taken
    // *before* the final drain, so the trace bytes the drain appends are
    // past the checkpoint's high-water mark — a resume truncates them
    // away and replays the identical drain. Flushing first would leave
    // the final records un-resumable.
    if (options.checkpoints)
        take_checkpoint(executed);

    {
        ATUM_SPAN("supervisor", "flush");
        result.drain_status = tracer.Flush();
    }
    FillTracerStats(result, tracer);
    if (options.checkpoints) {
        result.checkpoints_written = options.checkpoints->written();
        result.last_checkpoint = options.checkpoints->last_path();
    }
    // Final publish happens even without an emitter so the global
    // registry's counters are current for the caller's run manifest.
    publish();
    if (options.emitter)
        options.emitter->Emit("final");
    if (profiler != nullptr) {
        profiler->EndRun();
        machine.SetPhaseProfiler(nullptr);
        tracer.SetPhaseProfiler(nullptr);
    }
    return result;
}

}  // namespace atum::core
