#include "core/session.h"

namespace atum::core {

namespace {

SessionResult
RunCommon(cpu::Machine& machine, uint64_t max_instructions)
{
    SessionResult result;
    const uint64_t ucycles_before = machine.ucycles();
    const auto run = machine.Run(max_instructions);
    result.instructions = run.instructions;
    result.ucycles = machine.ucycles() - ucycles_before;
    result.halted = run.reason == cpu::Machine::StopReason::kHalted;
    return result;
}

}  // namespace

SessionResult
RunTraced(cpu::Machine& machine, AtumTracer& tracer,
          uint64_t max_instructions)
{
    if (!tracer.attached())
        tracer.Attach();
    SessionResult result = RunCommon(machine, max_instructions);
    tracer.Flush();
    result.records = tracer.records();
    result.buffer_fills = tracer.buffer_fills();
    result.overhead_ucycles = tracer.overhead_ucycles();
    result.lost_records = tracer.lost_records();
    result.loss_events = tracer.loss_events();
    result.degraded = tracer.degraded();
    return result;
}

SessionResult
RunBaseline(cpu::Machine& machine, UserOnlyTracer& tracer,
            uint64_t max_instructions)
{
    if (!tracer.attached())
        tracer.Attach();
    SessionResult result = RunCommon(machine, max_instructions);
    result.records = tracer.records();
    result.lost_records = tracer.lost_records();
    return result;
}

SessionResult
RunUntraced(cpu::Machine& machine, uint64_t max_instructions)
{
    return RunCommon(machine, max_instructions);
}

}  // namespace atum::core
