#ifndef ATUM_CORE_USER_TRACER_H_
#define ATUM_CORE_USER_TRACER_H_

/**
 * @file
 * UserOnlyTracer — the pre-ATUM baseline.
 *
 * Before ATUM, address traces came from software probes inside a single
 * user program: they saw no kernel references, no other processes, no
 * page-table traffic, and no interrupt activity. This tracer reproduces
 * that methodology on the same machine runs so full-system vs user-only
 * comparisons (experiments F1/F4/F5/T4) are apples-to-apples: it hooks
 * the same splice points but keeps only user-mode references of one
 * traced process and writes them straight to the sink.
 *
 * By default it models an *idealized* probe (zero perturbation). A
 * per-record cost can be configured to model the heavy slowdowns of
 * trap-based software tracing.
 */

#include <cstdint>

#include "cpu/machine.h"
#include "trace/record.h"
#include "trace/sink.h"

namespace atum::core {

/** Baseline tracer configuration. */
struct UserTracerConfig {
    /** Process to trace; records are kept only while it is running. */
    uint16_t target_pid = 1;
    /** Keep instruction-stream references. */
    bool record_ifetch = true;
    /** Perturbation cost per record (0 = idealized probe). */
    uint32_t cost_per_record = 0;
};

class UserOnlyTracer
{
  public:
    /** Both references must outlive the tracer. */
    UserOnlyTracer(cpu::Machine& machine, trace::TraceSink& sink,
                   const UserTracerConfig& config = {});
    ~UserOnlyTracer();

    UserOnlyTracer(const UserOnlyTracer&) = delete;
    UserOnlyTracer& operator=(const UserOnlyTracer&) = delete;

    void Attach();
    void Detach();
    bool attached() const { return attached_; }

    uint64_t records() const { return records_; }
    /** References it observed but discarded (kernel, other pids, PTE). */
    uint64_t suppressed() const { return suppressed_; }
    /** Records the sink refused (a real probe just loses these). */
    uint64_t lost_records() const { return lost_records_; }

  private:
    cpu::Machine& machine_;
    trace::TraceSink& sink_;
    UserTracerConfig config_;
    bool attached_ = false;
    uint16_t current_pid_ = 0;
    uint64_t records_ = 0;
    uint64_t suppressed_ = 0;
    uint64_t lost_records_ = 0;
};

}  // namespace atum::core

#endif  // ATUM_CORE_USER_TRACER_H_
