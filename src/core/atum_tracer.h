#ifndef ATUM_CORE_ATUM_TRACER_H_
#define ATUM_CORE_ATUM_TRACER_H_

/**
 * @file
 * AtumTracer — the paper's contribution, reproduced in simulation.
 *
 * The tracer:
 *   1. reserves a region at the top of physical memory (invisible to the
 *      guest kernel's frame allocator, exactly like the 8200 setup),
 *   2. patches the control store's splice points with micro-routines that
 *      append 8-byte records to that buffer with *physical* stores,
 *      charging `cost_per_record` micro-cycles each (the tracing slowdown),
 *   3. when the buffer fills, "freezes" the machine (a pause charged in
 *      micro-cycles), drains the records to a host-side TraceSink, and
 *      resumes — the paper's console-extraction cycle.
 *
 * Because the patches run below the operating system, the resulting trace
 * contains *every* reference: user and kernel, all processes, interrupt
 * handlers, and page-table traffic. That completeness is what ATUM added
 * over prior user-only tracing.
 */

#include <cstdint>

#include "cpu/machine.h"
#include "obs/metrics.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "util/serialize.h"
#include "util/status.h"

namespace atum::core {

/** Tracer configuration. */
struct AtumConfig {
    /** Reserved trace-buffer size (page multiple). The paper used about
     *  half a megabyte of the 8200's memory. */
    uint32_t buffer_bytes = 256u << 10;
    /** Micro-cycles the patch burns per record appended. The default is
     *  calibrated so full tracing dilates execution by roughly an order
     *  of magnitude, the regime the paper reports for the 8200 (~20x);
     *  T2 sweeps this cost. */
    uint32_t cost_per_record = 64;
    /** Micro-cycles charged per buffer-full pause/extraction. */
    uint32_t drain_pause_ucycles = 100000;
    bool record_ifetch = true;
    bool record_pte = true;
    bool record_tlb_miss = true;
    bool record_exceptions = true;
    /** Record a kOpcode marker per retired instruction (off by default:
     *  it enlarges traces; enable for opcode-frequency studies, T6). */
    bool record_opcodes = false;

    // -- drain failure policy ----------------------------------------------
    // A refusing sink (full disk, dead pipe) must never abort the
    // simulated machine: the drain is retried with a bounded, doubling
    // pause, and if the sink still refuses the tracer degrades to
    // counting-only capture — records are tallied as lost, and a kLoss
    // marker is emitted at the next successful append so consumers can
    // resynchronize around the gap (HMTT-style). A kNoSpace failure
    // skips the retries entirely: a full disk does not empty itself in
    // a few hundred milliseconds, so the machine degrades immediately
    // instead of stalling in pointless backoff.
    /** Retries per failed drain before degrading. */
    uint32_t drain_max_retries = 3;
    /** Micro-cycles charged for the first retry pause; doubles per retry
     *  (bounded backoff), on top of the normal drain pause. */
    uint32_t drain_retry_ucycles = 50000;
};

class AtumTracer
{
  public:
    /**
     * Reserves the buffer in `machine`'s physical memory and remembers
     * `sink` as the drain target. Construct the tracer *before* booting a
     * kernel so the frame allocator excludes the reserved region. Both
     * references must outlive the tracer.
     */
    AtumTracer(cpu::Machine& machine, trace::TraceSink& sink,
               const AtumConfig& config = {});

    /** Detaches patches and releases the reservation. */
    ~AtumTracer();

    AtumTracer(const AtumTracer&) = delete;
    AtumTracer& operator=(const AtumTracer&) = delete;

    /** Installs the microcode patches; tracing starts immediately. */
    void Attach();

    /** Removes the patches (the buffer stays reserved until destruction). */
    void Detach();

    bool attached() const { return attached_; }

    /**
     * Drains any residual buffered records to the sink. Returns the
     * capture's drain health: OK when every record reached the sink,
     * otherwise the error that forced records to be dropped (a capture
     * that ended degraded reports the failure that degraded it, so
     * end-of-run loss is never silent).
     */
    util::Status Flush();

    // -- checkpoint hooks --------------------------------------------------
    /**
     * Serializes the tracer's capture counters and buffer cursor. The
     * buffered records themselves live in the reserved region of guest
     * physical memory and travel with PhysicalMemory::Save; this hook
     * covers everything else a resumed capture needs to continue the
     * statistics and drain exactly where they left off.
     */
    util::Status Save(util::StateWriter& w) const;

    /**
     * Restores counters saved by Save(). The tracer must have been
     * constructed with the same buffer geometry (checkpoint meta carries
     * the AtumConfig); a mismatch fails with data-loss rather than
     * continuing a capture whose buffer cursor points into the weeds.
     */
    util::Status Restore(util::StateReader& r);

    // -- capture statistics ------------------------------------------------
    uint64_t records() const { return records_; }
    uint64_t buffer_fills() const { return buffer_fills_; }
    /** Micro-cycles charged to the machine by tracing (patch + drains). */
    uint64_t overhead_ucycles() const { return overhead_ucycles_; }

    // -- loss accounting ---------------------------------------------------
    /** True while the sink is refusing records (counting-only capture). */
    bool degraded() const { return degraded_; }
    /** Records dropped because the sink kept failing. */
    uint64_t lost_records() const { return lost_records_; }
    /** Distinct degrade episodes (== kLoss markers owed to the stream). */
    uint32_t loss_events() const { return loss_events_; }
    /** Drain retry attempts that were needed (0 on a healthy sink). */
    uint64_t drain_retries() const { return drain_retries_; }
    /** Drain failures that were out-of-space (each degraded instantly). */
    uint32_t enospc_events() const { return enospc_events_; }
    /** The failure that triggered the most recent degrade. */
    const util::Status& last_drain_error() const { return last_drain_error_; }

    uint32_t buffer_base() const { return buf_base_; }
    uint32_t buffer_bytes() const { return buf_bytes_; }
    /** Records currently sitting in the (undrained) buffer. */
    uint32_t buffered_records() const { return head_ / trace::kRecordBytes; }

    /**
     * Publishes capture tallies into `reg` as `tracer.*` counters and
     * gauges (records, fills, overhead, retries, degrades, losses,
     * buffered records). The per-drain extraction latency histogram
     * `tracer.drain_us` is event-driven and always live in the global
     * registry regardless of publishing.
     */
    void PublishMetrics(obs::Registry& reg) const;

    /**
     * Attaches the sampling phase profiler (obs/spans.h): each drain's
     * wall time is then accounted exactly to the drain phase and excised
     * from any open sampled window. Set and cleared by RunSupervised.
     */
    void SetPhaseProfiler(obs::PhaseProfiler* profiler)
    {
        profiler_ = profiler;
    }

  private:
    uint32_t Append(const trace::Record& record);
    /** Empties the buffer (deliver or count-as-lost); returns the
     *  micro-cycle pause this drain charged. */
    uint32_t Drain();
    util::Status DeliverRange(uint32_t* delivered, uint32_t total);
    bool TryRecover();

    cpu::Machine& machine_;
    trace::TraceSink& sink_;
    AtumConfig config_;
    uint32_t buf_base_;
    uint32_t buf_bytes_;
    uint32_t head_ = 0;
    bool attached_ = false;
    uint64_t records_ = 0;
    uint64_t buffer_fills_ = 0;
    uint64_t overhead_ucycles_ = 0;
    bool degraded_ = false;
    uint64_t lost_records_ = 0;
    uint32_t loss_events_ = 0;
    uint32_t enospc_events_ = 0;
    uint64_t drain_retries_ = 0;
    util::Status last_drain_error_;
    /** Extraction-pause wall latency, log2 buckets of microseconds. */
    obs::Histogram* drain_hist_;
    obs::PhaseProfiler* profiler_ = nullptr;
};

}  // namespace atum::core

#endif  // ATUM_CORE_ATUM_TRACER_H_
