#ifndef ATUM_CORE_CHECKPOINT_H_
#define ATUM_CORE_CHECKPOINT_H_

/**
 * @file
 * ATCK — checkpoint/resume for capture sessions.
 *
 * ATUM's value came from *long* captures: the paper's pause/extract/
 * resume cycle traced a full multiprogrammed OS for as long as the
 * operators kept the 8200 running. A multi-hour capture that a host
 * crash or SIGTERM can erase is not long-haul; this file gives the
 * capture session the same durability ATF2 gives the trace bytes.
 *
 * A checkpoint is a versioned, CRC32C-framed snapshot of the complete
 * deterministic capture state:
 *
 *   +----------------------------------------------------------------+
 *   | header (32 B):  magic "ATCK\r\n\x1a\n" | version | sections    |
 *   |                 flags | reserved | CRC32C(header)              |
 *   +----------------------------------------------------------------+
 *   | section (24 B + payload): "SECT" | id | payload length         |
 *   |                 CRC32C(payload) | CRC32C(section header)       |
 *   |   ids: 1 meta · 2 machine · 3 tracer · 4 trace-sink state      |
 *   +----------------------------------------------------------------+
 *   | footer (24 B):  "KFOT" | section count | payload total | CRC   |
 *   +----------------------------------------------------------------+
 *
 * The machine section is written by cpu::Machine::Save and nests
 * mem::PhysicalMemory and mmu::Mmu/Tlb state — *microarchitectural*
 * state included (TB entries, prefetch buffer), because a resumed
 * capture must replay the identical record stream, and TB misses and
 * ifetches are records. The sink section carries the trace file's
 * high-water mark (sealed-chunk offset + counts) and the open chunk's
 * buffered records, so resume can truncate the file to a known-good
 * prefix and continue byte-identically.
 *
 * Checkpoint files are written atomically (temp + fsync + rename); a
 * crash mid-checkpoint leaves the previous one intact. Loading never
 * crashes on damage: every CRC failure, truncation or mismatch comes
 * back as a Status.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "core/atum_tracer.h"
#include "cpu/machine.h"
#include "io/vfs.h"
#include "trace/container.h"
#include "util/status.h"

namespace atum::core {

inline constexpr uint8_t kCheckpointMagic[8] = {'A', 'T',  'C', 'K',
                                                '\r', '\n', 0x1a, '\n'};
// Version 2: the machine section gained the DMA engine registers and the
// hardware event counters (cpu/event_counters.h).
inline constexpr uint16_t kCheckpointVersion = 2;
inline constexpr uint32_t kCheckpointHeaderBytes = 32;
inline constexpr uint32_t kCheckpointSectionHeaderBytes = 24;
inline constexpr uint32_t kCheckpointFooterBytes = 24;
inline constexpr uint32_t kCheckpointSectionMagic = 0x54434553;  // "SECT"
inline constexpr uint32_t kCheckpointFooterMagic = 0x544F464B;   // "KFOT"

/** Section ids (the wire format's table of contents). */
enum class CheckpointSection : uint32_t {
    kMeta = 1,     ///< configs + bookkeeping; must come first
    kMachine = 2,  ///< cpu::Machine::Save payload
    kTracer = 3,   ///< AtumTracer::Save payload
    kSink = 4,     ///< trace::Atf2ResumeState
};

/**
 * Self-description a checkpoint carries so `atum-capture --resume` can
 * rebuild the session without the original command line.
 */
struct CheckpointMeta {
    cpu::Machine::Config machine_config;
    AtumConfig tracer_config;
    /** Sequence number within a rotation series (monotonic across resumes). */
    uint64_t sequence = 0;
    /** Guest instructions retired when the checkpoint was taken. */
    uint64_t instructions = 0;
    /** Instruction budget remaining for the capture at checkpoint time. */
    uint64_t instructions_remaining = 0;
    /** Informational: the trace file this checkpoint belongs to. */
    std::string trace_path;
    /** True when a kSink section with a real high-water mark follows. */
    bool has_sink_state = false;
};

/**
 * Serializes one complete checkpoint into `out`. `sink_state` is the
 * trace writer's mid-stream state (FileSink::SaveState); pass nullptr
 * for sink-less sessions (in-memory captures, tests).
 */
util::Status WriteCheckpoint(trace::ByteSink& out, const CheckpointMeta& meta,
                             const cpu::Machine& machine,
                             const AtumTracer& tracer,
                             const trace::Atf2ResumeState* sink_state);

/**
 * WriteCheckpoint to `path` atomically: temp file + fsync + rename +
 * parent-directory fsync. Success means the checkpoint is durable under
 * its final name; any failure (including the directory sync) is reported,
 * because a checkpoint whose name a power cut can erase is no checkpoint.
 */
util::Status WriteCheckpointFile(const std::string& path,
                                 const CheckpointMeta& meta,
                                 const cpu::Machine& machine,
                                 const AtumTracer& tracer,
                                 const trace::Atf2ResumeState* sink_state,
                                 io::Vfs& vfs = io::RealVfs());

/**
 * Test-only: disables the parent-directory fsync in WriteCheckpointFile,
 * reintroducing the durability bug the chaos campaign exists to catch
 * (tests/chaos_test.cc proves the torn-rename campaign flags it).
 */
void SetCheckpointDirSyncForTest(bool enabled);

/**
 * A parsed, CRC-verified checkpoint. Two-phase restore: Load (or Read)
 * parses and verifies; the caller then builds a Machine/AtumTracer from
 * meta().machine_config / meta().tracer_config and restores into them.
 */
class Checkpoint
{
  public:
    /** Reads and verifies a whole checkpoint stream. */
    static util::StatusOr<Checkpoint> Read(trace::ByteSource& in);
    /** Read() on a file; kNotFound/kIoError when unreadable. */
    static util::StatusOr<Checkpoint> Load(const std::string& path,
                                           io::Vfs& vfs = io::RealVfs());

    const CheckpointMeta& meta() const { return meta_; }
    const trace::Atf2ResumeState& sink_state() const { return sink_state_; }

    /** Restores the machine section; the machine must match the meta config. */
    util::Status RestoreMachine(cpu::Machine& machine) const;
    /** Restores the tracer section; call before Attach(). */
    util::Status RestoreTracer(AtumTracer& tracer) const;

  private:
    CheckpointMeta meta_;
    trace::Atf2ResumeState sink_state_;
    std::vector<uint8_t> machine_bytes_;
    std::vector<uint8_t> tracer_bytes_;
};

/**
 * Rotating checkpoint series: `base.NNNNNN.atck`, keeping the most
 * recent `keep` files. The sequence number persists in the checkpoint
 * meta, so rotation continues correctly across resume.
 */
class CheckpointRotator
{
  public:
    CheckpointRotator(std::string base, uint32_t keep, uint64_t next_seq = 1,
                      io::Vfs& vfs = io::RealVfs());

    /**
     * Writes the next checkpoint in the series (atomically) and prunes
     * the one that fell out of the retention window. `meta.sequence` is
     * filled in here.
     */
    util::Status Write(CheckpointMeta meta, const cpu::Machine& machine,
                       const AtumTracer& tracer,
                       const trace::Atf2ResumeState* sink_state);

    /** Path of the newest successfully written checkpoint ("" if none). */
    const std::string& last_path() const { return last_path_; }
    uint64_t next_sequence() const { return seq_; }
    uint32_t written() const { return written_; }

    /** The `base.NNNNNN.atck` path for one sequence number. */
    std::string PathFor(uint64_t seq) const;

  private:
    std::string base_;
    uint32_t keep_;
    uint64_t seq_;
    io::Vfs* vfs_;
    uint32_t written_ = 0;
    std::string last_path_;
};

}  // namespace atum::core

#endif  // ATUM_CORE_CHECKPOINT_H_
