#include "core/atum_tracer.h"

#include <chrono>

#include "obs/flight.h"
#include "obs/spans.h"
#include "util/json.h"
#include "util/logging.h"

namespace atum::core {

using trace::Record;
using ucode::ControlStore;
using ucode::MemAccess;

AtumTracer::AtumTracer(cpu::Machine& machine, trace::TraceSink& sink,
                       const AtumConfig& config)
    : machine_(machine),
      sink_(sink),
      config_(config),
      drain_hist_(&obs::Registry::Global().GetHistogram("tracer.drain_us"))
{
    if (config_.buffer_bytes < trace::kRecordBytes)
        Fatal("trace buffer too small: ", config_.buffer_bytes);
    buf_base_ = machine_.memory().ReserveTop(config_.buffer_bytes);
    buf_bytes_ = config_.buffer_bytes;
}

AtumTracer::~AtumTracer()
{
    if (attached_)
        Detach();
    machine_.memory().Unreserve();
}

void
AtumTracer::Attach()
{
    if (attached_)
        Fatal("AtumTracer already attached");
    ControlStore& cs = machine_.control_store();

    cs.PatchMemAccess([this](const MemAccess& access) -> uint32_t {
        if (access.kind == ucode::MemAccessKind::kIFetch &&
            !config_.record_ifetch) {
            return 0;
        }
        if (access.kind == ucode::MemAccessKind::kPte &&
            !config_.record_pte) {
            return 0;
        }
        return Append(trace::FromMemAccess(access));
    });
    cs.PatchContextSwitch([this](uint16_t pid, uint32_t pcb_pa) -> uint32_t {
        return Append(trace::MakeCtxSwitch(pid, pcb_pa));
    });
    cs.PatchTlbMiss([this](uint32_t vaddr, bool kernel) -> uint32_t {
        if (!config_.record_tlb_miss)
            return 0;
        return Append(trace::MakeTlbMiss(vaddr, kernel));
    });
    cs.PatchExceptionDispatch([this](uint8_t vector) -> uint32_t {
        if (!config_.record_exceptions)
            return 0;
        return Append(trace::MakeException(vector));
    });
    if (config_.record_opcodes) {
        cs.PatchDecode(
            [this](uint32_t pc, uint8_t opcode, bool kernel) -> uint32_t {
                return Append(trace::MakeOpcode(pc, opcode, kernel));
            });
    }

    attached_ = true;
}

void
AtumTracer::Detach()
{
    if (!attached_)
        return;
    ControlStore& cs = machine_.control_store();
    cs.Unpatch(ucode::PatchPoint::kMemAccess);
    cs.Unpatch(ucode::PatchPoint::kContextSwitch);
    cs.Unpatch(ucode::PatchPoint::kTlbMiss);
    cs.Unpatch(ucode::PatchPoint::kExceptionDispatch);
    cs.Unpatch(ucode::PatchPoint::kDecode);
    attached_ = false;
}

uint32_t
AtumTracer::Append(const Record& record)
{
    // The patch micro-routine: pack the record and store it into the
    // reserved region with physical writes, then bump the buffer head.
    uint8_t bytes[trace::kRecordBytes];
    trace::PackRecord(record, bytes);
    machine_.memory().WriteBlock(buf_base_ + head_, bytes, sizeof bytes);
    head_ += trace::kRecordBytes;
    ++records_;

    uint32_t cost = config_.cost_per_record;
    if (head_ + trace::kRecordBytes > buf_bytes_)
        cost += Drain();
    overhead_ucycles_ += cost;
    return cost;
}

util::Status
AtumTracer::DeliverRange(uint32_t* delivered, uint32_t total)
{
    // The machine is "frozen" while the host reads the buffer back out of
    // physical memory — the console extraction step of the paper.
    uint8_t bytes[trace::kRecordBytes];
    while (*delivered < total) {
        machine_.memory().ReadBlock(
            buf_base_ + *delivered * trace::kRecordBytes, bytes,
            sizeof bytes);
        util::Status status = sink_.Append(trace::UnpackRecord(bytes));
        if (!status.ok())
            return status;
        ++*delivered;  // a failed Append consumed nothing; resume here
    }
    return util::OkStatus();
}

bool
AtumTracer::TryRecover()
{
    // Probe the sink with the loss marker it is owed. Success ends the
    // degrade episode and documents the gap in-stream, so consumers can
    // resynchronize instead of silently analyzing a torn trace.
    const uint32_t lost =
        lost_records_ > UINT32_MAX ? UINT32_MAX
                                   : static_cast<uint32_t>(lost_records_);
    if (!sink_.Append(trace::MakeLoss(lost,
                                      static_cast<uint16_t>(loss_events_)))
             .ok())
        return false;
    degraded_ = false;
    Inform("trace sink recovered after ", lost_records_,
           " lost records; capture resumed");
    return true;
}

uint32_t
AtumTracer::Drain()
{
    const uint32_t total = head_ / trace::kRecordBytes;
    head_ = 0;
    ++buffer_fills_;

    if (degraded_ && !TryRecover()) {
        // Counting-only capture: the machine keeps running undisturbed,
        // the buffered records are tallied as lost, and no extraction
        // pause is charged (there is no extraction).
        lost_records_ += total;
        return 0;
    }

    uint32_t pause = config_.drain_pause_ucycles;
    uint32_t delivered = 0;
    ATUM_SPAN_NAMED(drain_span, "tracer", "drain");
    drain_span.set_arg("records", total);
    const uint64_t t0_ns = obs::MonotonicNowNs();
    const auto t0 = std::chrono::steady_clock::now();
    util::Status status = DeliverRange(&delivered, total);
    for (uint32_t retry = 0;
         !status.ok() && status.code() != util::StatusCode::kNoSpace &&
         retry < config_.drain_max_retries;
         ++retry) {
        // Bounded backoff: the freeze lengthens 1x, 2x, 4x... while the
        // host-side sink sorts itself out. ENOSPC skips this: a full
        // disk will not recover within a freeze, so degrade immediately.
        pause += config_.drain_retry_ucycles << retry;
        ++drain_retries_;
        status = DeliverRange(&delivered, total);
    }
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    drain_hist_->Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    if (profiler_ != nullptr) {
        // Drains run inside a traced instruction (Append → Drain), so
        // the window that caught one must not scale it by N: account the
        // wall time exactly and excise it from the sample.
        const uint64_t drain_ns = obs::MonotonicNowNs() - t0_ns;
        profiler_->AddExact(obs::Phase::kDrain, drain_ns);
        profiler_->SkipTime(drain_ns);
    }
    if (!status.ok()) {
        degraded_ = true;
        ++loss_events_;
        if (status.code() == util::StatusCode::kNoSpace)
            ++enospc_events_;
        lost_records_ += total - delivered;
        last_drain_error_ = status;
        // One structured line so log scrapers can alert on degrades
        // without parsing prose.
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("event", "trace-drain-degrade");
        w.KeyValue("episode", static_cast<uint64_t>(loss_events_));
        w.KeyValue("retries", static_cast<uint64_t>(config_.drain_max_retries));
        w.KeyValue("delivered", static_cast<uint64_t>(delivered));
        w.KeyValue("lost", static_cast<uint64_t>(total - delivered));
        w.KeyValue("error", status.ToString());
        w.EndObject();
        Warn(w.str());
        // Post-mortem context: the degrade is one of the flight
        // recorder's dump triggers (docs/TRACING.md).
        obs::flight::Note("tracer.degrade", status.ToString().c_str(),
                          loss_events_, total - delivered);
        obs::flight::DumpNow("tracer-degrade");
    }
    return pause;
}

util::Status
AtumTracer::Flush()
{
    if (head_ != 0) {
        // The machine has already stopped: the final extraction pause is
        // not charged (matches the pre-Status accounting).
        (void)Drain();
        --buffer_fills_;  // a final partial drain is not a buffer fill
    } else if (degraded_) {
        TryRecover();  // still owe the stream its loss marker
    }
    if (degraded_ || lost_records_ > 0) {
        if (!last_drain_error_.ok())
            return last_drain_error_;
        return util::DataLoss(lost_records_, " records lost in ",
                              loss_events_, " sink-failure episodes");
    }
    return util::OkStatus();
}

void
AtumTracer::PublishMetrics(obs::Registry& reg) const
{
    reg.GetCounter("tracer.records").Set(records_);
    reg.GetCounter("tracer.buffer_fills").Set(buffer_fills_);
    reg.GetCounter("tracer.overhead_ucycles").Set(overhead_ucycles_);
    reg.GetCounter("tracer.lost_records").Set(lost_records_);
    reg.GetCounter("tracer.loss_events").Set(loss_events_);
    reg.GetCounter("tracer.enospc_events").Set(enospc_events_);
    reg.GetCounter("tracer.drain_retries").Set(drain_retries_);
    reg.GetGauge("tracer.degraded").Set(degraded_ ? 1 : 0);
    reg.GetGauge("tracer.buffered_records").Set(buffered_records());
}

util::Status
AtumTracer::Save(util::StateWriter& w) const
{
    w.U32(buf_base_);
    w.U32(buf_bytes_);
    w.U32(head_);
    w.Bool(attached_);
    w.U64(records_);
    w.U64(buffer_fills_);
    w.U64(overhead_ucycles_);
    w.Bool(degraded_);
    w.U64(lost_records_);
    w.U32(loss_events_);
    w.U32(enospc_events_);
    w.U64(drain_retries_);
    w.U8(static_cast<uint8_t>(last_drain_error_.code()));
    w.Str(std::string(last_drain_error_.message()));
    return util::OkStatus();
}

util::Status
AtumTracer::Restore(util::StateReader& r)
{
    const uint32_t base = r.U32();
    const uint32_t bytes = r.U32();
    if (r.ok() && (base != buf_base_ || bytes != buf_bytes_))
        r.Fail(util::DataLoss(
            "checkpoint tracer buffer at ", base, "+", bytes,
            " does not match this tracer's reservation at ", buf_base_, "+",
            buf_bytes_, " (was the tracer built from the checkpoint meta?)"));
    const uint32_t head = r.U32();
    if (r.ok() && (head > buf_bytes_ || head % trace::kRecordBytes != 0))
        r.Fail(util::DataLoss("checkpoint buffer cursor ", head,
                              " outside the ", buf_bytes_, "-byte buffer"));
    // The saved attach flag is informational only: microcode patches are
    // live objects on this process's control store, so the caller (not
    // the checkpoint) decides when to Attach() the restored tracer.
    (void)r.Bool();
    const uint64_t records = r.U64();
    const uint64_t fills = r.U64();
    const uint64_t overhead = r.U64();
    const bool degraded = r.Bool();
    const uint64_t lost = r.U64();
    const uint32_t loss_events = r.U32();
    const uint32_t enospc_events = r.U32();
    const uint64_t retries = r.U64();
    const auto code = static_cast<util::StatusCode>(r.U8());
    const std::string message = r.Str();
    if (!r.ok())
        return r.status();

    head_ = head;
    records_ = records;
    buffer_fills_ = fills;
    overhead_ucycles_ = overhead;
    degraded_ = degraded;
    lost_records_ = lost;
    loss_events_ = loss_events;
    enospc_events_ = enospc_events;
    drain_retries_ = retries;
    last_drain_error_ = code == util::StatusCode::kOk
                            ? util::OkStatus()
                            : util::Status(code, message);
    return util::OkStatus();
}

}  // namespace atum::core
