#include "core/atum_tracer.h"

#include "util/logging.h"

namespace atum::core {

using trace::Record;
using ucode::ControlStore;
using ucode::MemAccess;

AtumTracer::AtumTracer(cpu::Machine& machine, trace::TraceSink& sink,
                       const AtumConfig& config)
    : machine_(machine), sink_(sink), config_(config)
{
    if (config_.buffer_bytes < trace::kRecordBytes)
        Fatal("trace buffer too small: ", config_.buffer_bytes);
    buf_base_ = machine_.memory().ReserveTop(config_.buffer_bytes);
    buf_bytes_ = config_.buffer_bytes;
}

AtumTracer::~AtumTracer()
{
    if (attached_)
        Detach();
    machine_.memory().Unreserve();
}

void
AtumTracer::Attach()
{
    if (attached_)
        Fatal("AtumTracer already attached");
    ControlStore& cs = machine_.control_store();

    cs.PatchMemAccess([this](const MemAccess& access) -> uint32_t {
        if (access.kind == ucode::MemAccessKind::kIFetch &&
            !config_.record_ifetch) {
            return 0;
        }
        if (access.kind == ucode::MemAccessKind::kPte &&
            !config_.record_pte) {
            return 0;
        }
        return Append(trace::FromMemAccess(access));
    });
    cs.PatchContextSwitch([this](uint16_t pid, uint32_t pcb_pa) -> uint32_t {
        return Append(trace::MakeCtxSwitch(pid, pcb_pa));
    });
    cs.PatchTlbMiss([this](uint32_t vaddr, bool kernel) -> uint32_t {
        if (!config_.record_tlb_miss)
            return 0;
        return Append(trace::MakeTlbMiss(vaddr, kernel));
    });
    cs.PatchExceptionDispatch([this](uint8_t vector) -> uint32_t {
        if (!config_.record_exceptions)
            return 0;
        return Append(trace::MakeException(vector));
    });
    if (config_.record_opcodes) {
        cs.PatchDecode(
            [this](uint32_t pc, uint8_t opcode, bool kernel) -> uint32_t {
                return Append(trace::MakeOpcode(pc, opcode, kernel));
            });
    }

    attached_ = true;
}

void
AtumTracer::Detach()
{
    if (!attached_)
        return;
    ControlStore& cs = machine_.control_store();
    cs.Unpatch(ucode::PatchPoint::kMemAccess);
    cs.Unpatch(ucode::PatchPoint::kContextSwitch);
    cs.Unpatch(ucode::PatchPoint::kTlbMiss);
    cs.Unpatch(ucode::PatchPoint::kExceptionDispatch);
    cs.Unpatch(ucode::PatchPoint::kDecode);
    attached_ = false;
}

uint32_t
AtumTracer::Append(const Record& record)
{
    // The patch micro-routine: pack the record and store it into the
    // reserved region with physical writes, then bump the buffer head.
    uint8_t bytes[trace::kRecordBytes];
    trace::PackRecord(record, bytes);
    machine_.memory().WriteBlock(buf_base_ + head_, bytes, sizeof bytes);
    head_ += trace::kRecordBytes;
    ++records_;

    uint32_t cost = config_.cost_per_record;
    if (head_ + trace::kRecordBytes > buf_bytes_)
        cost += Drain();
    overhead_ucycles_ += cost;
    return cost;
}

util::Status
AtumTracer::DeliverRange(uint32_t* delivered, uint32_t total)
{
    // The machine is "frozen" while the host reads the buffer back out of
    // physical memory — the console extraction step of the paper.
    uint8_t bytes[trace::kRecordBytes];
    while (*delivered < total) {
        machine_.memory().ReadBlock(
            buf_base_ + *delivered * trace::kRecordBytes, bytes,
            sizeof bytes);
        util::Status status = sink_.Append(trace::UnpackRecord(bytes));
        if (!status.ok())
            return status;
        ++*delivered;  // a failed Append consumed nothing; resume here
    }
    return util::OkStatus();
}

bool
AtumTracer::TryRecover()
{
    // Probe the sink with the loss marker it is owed. Success ends the
    // degrade episode and documents the gap in-stream, so consumers can
    // resynchronize instead of silently analyzing a torn trace.
    const uint32_t lost =
        lost_records_ > UINT32_MAX ? UINT32_MAX
                                   : static_cast<uint32_t>(lost_records_);
    if (!sink_.Append(trace::MakeLoss(lost,
                                      static_cast<uint16_t>(loss_events_)))
             .ok())
        return false;
    degraded_ = false;
    Inform("trace sink recovered after ", lost_records_,
           " lost records; capture resumed");
    return true;
}

uint32_t
AtumTracer::Drain()
{
    const uint32_t total = head_ / trace::kRecordBytes;
    head_ = 0;
    ++buffer_fills_;

    if (degraded_ && !TryRecover()) {
        // Counting-only capture: the machine keeps running undisturbed,
        // the buffered records are tallied as lost, and no extraction
        // pause is charged (there is no extraction).
        lost_records_ += total;
        return 0;
    }

    uint32_t pause = config_.drain_pause_ucycles;
    uint32_t delivered = 0;
    util::Status status = DeliverRange(&delivered, total);
    for (uint32_t retry = 0; !status.ok() && retry < config_.drain_max_retries;
         ++retry) {
        // Bounded backoff: the freeze lengthens 1x, 2x, 4x... while the
        // host-side sink sorts itself out.
        pause += config_.drain_retry_ucycles << retry;
        ++drain_retries_;
        status = DeliverRange(&delivered, total);
    }
    if (!status.ok()) {
        degraded_ = true;
        ++loss_events_;
        lost_records_ += total - delivered;
        last_drain_error_ = status;
        Warn("trace drain failed after ", config_.drain_max_retries,
             " retries (", status.ToString(),
             "); degrading to counting-only capture");
    }
    return pause;
}

void
AtumTracer::Flush()
{
    if (head_ != 0) {
        // The machine has already stopped: the final extraction pause is
        // not charged (matches the pre-Status accounting).
        (void)Drain();
        --buffer_fills_;  // a final partial drain is not a buffer fill
    } else if (degraded_) {
        TryRecover();  // still owe the stream its loss marker
    }
}

}  // namespace atum::core
