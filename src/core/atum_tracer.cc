#include "core/atum_tracer.h"

#include "util/logging.h"

namespace atum::core {

using trace::Record;
using ucode::ControlStore;
using ucode::MemAccess;

AtumTracer::AtumTracer(cpu::Machine& machine, trace::TraceSink& sink,
                       const AtumConfig& config)
    : machine_(machine), sink_(sink), config_(config)
{
    if (config_.buffer_bytes < trace::kRecordBytes)
        Fatal("trace buffer too small: ", config_.buffer_bytes);
    buf_base_ = machine_.memory().ReserveTop(config_.buffer_bytes);
    buf_bytes_ = config_.buffer_bytes;
}

AtumTracer::~AtumTracer()
{
    if (attached_)
        Detach();
    machine_.memory().Unreserve();
}

void
AtumTracer::Attach()
{
    if (attached_)
        Fatal("AtumTracer already attached");
    ControlStore& cs = machine_.control_store();

    cs.PatchMemAccess([this](const MemAccess& access) -> uint32_t {
        if (access.kind == ucode::MemAccessKind::kIFetch &&
            !config_.record_ifetch) {
            return 0;
        }
        if (access.kind == ucode::MemAccessKind::kPte &&
            !config_.record_pte) {
            return 0;
        }
        return Append(trace::FromMemAccess(access));
    });
    cs.PatchContextSwitch([this](uint16_t pid, uint32_t pcb_pa) -> uint32_t {
        return Append(trace::MakeCtxSwitch(pid, pcb_pa));
    });
    cs.PatchTlbMiss([this](uint32_t vaddr, bool kernel) -> uint32_t {
        if (!config_.record_tlb_miss)
            return 0;
        return Append(trace::MakeTlbMiss(vaddr, kernel));
    });
    cs.PatchExceptionDispatch([this](uint8_t vector) -> uint32_t {
        if (!config_.record_exceptions)
            return 0;
        return Append(trace::MakeException(vector));
    });
    if (config_.record_opcodes) {
        cs.PatchDecode(
            [this](uint32_t pc, uint8_t opcode, bool kernel) -> uint32_t {
                return Append(trace::MakeOpcode(pc, opcode, kernel));
            });
    }

    attached_ = true;
}

void
AtumTracer::Detach()
{
    if (!attached_)
        return;
    ControlStore& cs = machine_.control_store();
    cs.Unpatch(ucode::PatchPoint::kMemAccess);
    cs.Unpatch(ucode::PatchPoint::kContextSwitch);
    cs.Unpatch(ucode::PatchPoint::kTlbMiss);
    cs.Unpatch(ucode::PatchPoint::kExceptionDispatch);
    cs.Unpatch(ucode::PatchPoint::kDecode);
    attached_ = false;
}

uint32_t
AtumTracer::Append(const Record& record)
{
    // The patch micro-routine: pack the record and store it into the
    // reserved region with physical writes, then bump the buffer head.
    uint8_t bytes[trace::kRecordBytes];
    trace::PackRecord(record, bytes);
    machine_.memory().WriteBlock(buf_base_ + head_, bytes, sizeof bytes);
    head_ += trace::kRecordBytes;
    ++records_;

    uint32_t cost = config_.cost_per_record;
    if (head_ + trace::kRecordBytes > buf_bytes_) {
        Drain();
        cost += config_.drain_pause_ucycles;
    }
    overhead_ucycles_ += cost;
    return cost;
}

void
AtumTracer::Drain()
{
    // The machine is "frozen" while the host reads the buffer back out of
    // physical memory — the console extraction step of the paper.
    uint8_t bytes[trace::kRecordBytes];
    for (uint32_t off = 0; off < head_; off += trace::kRecordBytes) {
        machine_.memory().ReadBlock(buf_base_ + off, bytes, sizeof bytes);
        sink_.Append(trace::UnpackRecord(bytes));
    }
    head_ = 0;
    ++buffer_fills_;
}

void
AtumTracer::Flush()
{
    if (head_ != 0) {
        Drain();
        --buffer_fills_;  // a final partial drain is not a buffer fill
    }
}

}  // namespace atum::core
