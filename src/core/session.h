#ifndef ATUM_CORE_SESSION_H_
#define ATUM_CORE_SESSION_H_

/**
 * @file
 * Capture-session helpers: run a prepared machine to completion under a
 * tracer and collect the capture-side statistics in one struct — plus
 * the supervised long-haul run loop (RunSupervised) that adds periodic
 * checkpoints, a deadman watchdog, deadlines and graceful signal stops.
 *
 * Ordering note: an AtumTracer must be constructed *before* the guest
 * kernel is booted (its buffer reservation must be visible to the boot
 * loader's frame accounting), so these helpers take an already-constructed
 * tracer rather than building one internally.
 */

#include <csignal>
#include <cstdint>
#include <functional>
#include <string>

#include "core/atum_tracer.h"
#include "core/checkpoint.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "obs/spans.h"
#include "obs/stats_emitter.h"
#include "trace/sink.h"
#include "util/status.h"

namespace atum::core {

/** Why a (supervised) capture run stopped. */
enum class StopCause {
    kHalted,     ///< guest executed HALT — normal completion
    kInstrLimit, ///< the instruction budget was exhausted
    kDeadline,   ///< wall-clock deadline reached (clean stop, resumable)
    kWatchdog,   ///< deadman fired: no clean retirement within budget
    kSignal,     ///< SIGINT/SIGTERM latched (clean stop, resumable)
};

/** Short lowercase name ("watchdog") for logs and reports. */
const char* StopCauseName(StopCause cause);

/** Outcome of one capture run. */
struct SessionResult {
    uint64_t instructions = 0;  ///< guest instructions executed
    uint64_t ucycles = 0;       ///< total micro-cycles (incl. tracing)
    bool halted = false;        ///< machine reached HALT
    uint64_t records = 0;       ///< trace records captured
    uint64_t buffer_fills = 0;  ///< full-buffer extraction pauses
    uint64_t overhead_ucycles = 0;  ///< micro-cycles charged by tracing
    uint64_t lost_records = 0;  ///< records dropped on a failing sink
    uint32_t loss_events = 0;   ///< distinct sink-failure episodes
    bool degraded = false;      ///< capture ended in counting-only mode

    // -- supervision outcome (RunSupervised only) --------------------------
    StopCause stop_cause = StopCause::kInstrLimit;
    uint32_t checkpoints_written = 0;
    std::string last_checkpoint;     ///< newest checkpoint file ("" if none)
    /** End-of-run drain health (AtumTracer::Flush). */
    util::Status drain_status;
    /** First checkpoint-write failure, if any (capture continues anyway). */
    util::Status checkpoint_status;
};

/** Runs with ATUM microcode tracing attached; flushes the buffer at end. */
SessionResult RunTraced(cpu::Machine& machine, AtumTracer& tracer,
                        uint64_t max_instructions);

/** Runs with the user-only baseline tracer attached. */
SessionResult RunBaseline(cpu::Machine& machine, UserOnlyTracer& tracer,
                          uint64_t max_instructions);

/** Runs without any tracer (for slowdown comparisons). */
SessionResult RunUntraced(cpu::Machine& machine, uint64_t max_instructions);

/** Knobs for the supervised long-haul run loop. */
struct SupervisorOptions {
    /** Guest instruction budget. */
    uint64_t max_instructions = UINT64_MAX;

    /**
     * Supervision granularity: signals, deadlines and the wall clock are
     * checked every this many instructions (a safe drain boundary). Small
     * enough to stop promptly, large enough to stay off the hot path.
     */
    uint64_t slice_instructions = 4096;

    /**
     * Deadman watchdog: stop with kWatchdog when this many micro-cycles
     * pass without one *clean* (non-faulting) instruction retirement.
     * Faulting dispatches do advance icount, so progress is defined as
     * clean retirement — a guest wedged in an exception loop makes none.
     * 0 disables the watchdog.
     */
    uint64_t watchdog_ucycles = 0;

    /** Wall-clock budget in milliseconds; 0 = none. */
    uint64_t deadline_ms = 0;

    /**
     * Graceful-stop flag, usually latched by a SIGINT/SIGTERM handler
     * (util/signals.h). Checked at slice boundaries; a set flag stops
     * the run with kSignal after sealing state. May be null.
     */
    volatile std::sig_atomic_t* stop_flag = nullptr;

    // -- checkpointing -----------------------------------------------------
    /** Rotating checkpoint series; null disables checkpointing. */
    CheckpointRotator* checkpoints = nullptr;
    /** Take a checkpoint every N trace-buffer fills. */
    uint64_t checkpoint_every_fills = 8;
    /**
     * The trace sink being written, for recording its high-water mark in
     * each checkpoint. Null = checkpoints carry no sink state (resume
     * will not truncate/continue a trace file).
     */
    trace::FileSink* file_sink = nullptr;
    /** Template for each checkpoint's meta (configs, trace path). */
    CheckpointMeta meta;

    /**
     * Test hook: die with _Exit(137) — no destructors, no seal, exactly
     * like SIGKILL — once this many buffer fills have happened. 0 = off.
     */
    uint64_t kill_after_fills = 0;

    // -- telemetry ---------------------------------------------------------
    /**
     * Metrics emitter ticked synchronously from the supervision loop:
     * an unconditional "start" snapshot, interval-gated snapshots at
     * slice boundaries, one after every checkpoint, and a "final" one
     * before returning. Null disables streaming; the registry is still
     * published at the end of the run either way (for RUN.json final
     * counters).
     */
    obs::StatsEmitter* emitter = nullptr;

    /**
     * Registry the loop publishes into; null = the process-wide Global().
     * A daemon running several captures concurrently gives each job its
     * own registry — publish uses Set(), so two jobs sharing one registry
     * would clobber each other's cpu.* and mmu.* tallies.
     */
    obs::Registry* registry = nullptr;

    /**
     * Called at every slice boundary (after the emitter tick, before the
     * stop-flag/deadline checks). The serve layer's per-job hook: quota
     * enforcement and cancel/drain propagation set *stop_flag from here.
     * May be null. Must not throw.
     */
    std::function<void()> on_slice;

    /**
     * Sampling phase profiler (obs/spans.h). When set, the loop opens a
     * 1-in-N sampled window around each instruction (attributing
     * dispatch/translate/memory/tracer time), times checkpoint publishes,
     * tracer drains and emitter I/O exactly, and attaches itself to the
     * machine and tracer for the duration of the run. Null = off; the
     * hot path then pays one null test per instruction.
     */
    obs::PhaseProfiler* profiler = nullptr;
};

/**
 * Publishes the whole capture stack — machine (cpu.* / mmu.*), tracer
 * (tracer.*) and optionally the sink's container tallies
 * (trace.sink.*) — into `reg`. Called at every telemetry boundary by
 * RunSupervised; callers can reuse it to refresh finals before writing
 * a run manifest.
 */
void PublishCaptureMetrics(obs::Registry& reg, const cpu::Machine& machine,
                           const AtumTracer& tracer,
                           const trace::FileSink* sink);

/**
 * The long-haul capture loop: RunTraced plus supervision. Steps the
 * machine in slices, writing periodic checkpoints at buffer-fill
 * boundaries, stopping cleanly on signal/deadline/watchdog, and sealing
 * capture state on every exit path:
 *
 *   1. a final checkpoint is written *before* the final drain, so a
 *      resume from it replays the drain and stays byte-identical;
 *   2. the tracer is flushed (drain_status reports end-of-run loss);
 *   3. the caller seals the sink (FileSink::Close) as usual.
 *
 * Checkpoint-write failures never stop the capture (the trace is the
 * valuable artifact); the first one is reported in checkpoint_status.
 */
SessionResult RunSupervised(cpu::Machine& machine, AtumTracer& tracer,
                            const SupervisorOptions& options);

}  // namespace atum::core

#endif  // ATUM_CORE_SESSION_H_
