#ifndef ATUM_CORE_SESSION_H_
#define ATUM_CORE_SESSION_H_

/**
 * @file
 * Capture-session helpers: run a prepared machine to completion under a
 * tracer and collect the capture-side statistics in one struct.
 *
 * Ordering note: an AtumTracer must be constructed *before* the guest
 * kernel is booted (its buffer reservation must be visible to the boot
 * loader's frame accounting), so these helpers take an already-constructed
 * tracer rather than building one internally.
 */

#include <cstdint>

#include "core/atum_tracer.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"

namespace atum::core {

/** Outcome of one capture run. */
struct SessionResult {
    uint64_t instructions = 0;  ///< guest instructions executed
    uint64_t ucycles = 0;       ///< total micro-cycles (incl. tracing)
    bool halted = false;        ///< machine reached HALT
    uint64_t records = 0;       ///< trace records captured
    uint64_t buffer_fills = 0;  ///< full-buffer extraction pauses
    uint64_t overhead_ucycles = 0;  ///< micro-cycles charged by tracing
    uint64_t lost_records = 0;  ///< records dropped on a failing sink
    uint32_t loss_events = 0;   ///< distinct sink-failure episodes
    bool degraded = false;      ///< capture ended in counting-only mode
};

/** Runs with ATUM microcode tracing attached; flushes the buffer at end. */
SessionResult RunTraced(cpu::Machine& machine, AtumTracer& tracer,
                        uint64_t max_instructions);

/** Runs with the user-only baseline tracer attached. */
SessionResult RunBaseline(cpu::Machine& machine, UserOnlyTracer& tracer,
                          uint64_t max_instructions);

/** Runs without any tracer (for slowdown comparisons). */
SessionResult RunUntraced(cpu::Machine& machine, uint64_t max_instructions);

}  // namespace atum::core

#endif  // ATUM_CORE_SESSION_H_
