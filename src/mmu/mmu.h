#ifndef ATUM_MMU_MMU_H_
#define ATUM_MMU_MMU_H_

/**
 * @file
 * VAX-style memory management for VCX-32.
 *
 * The 4 GiB virtual space is split by the top two address bits:
 *   P0 [0x00000000, 0x40000000): per-process program region (grows up)
 *   P1 [0x40000000, 0x80000000): per-process stack region
 *   S0 [0x80000000, 0xC0000000): shared system region (kernel)
 *   the top quadrant is reserved (access violation).
 *
 * Each region has a base register (physical address of a linear PTE array)
 * and a length register (number of mapped pages). A PTE is 32 bits:
 *
 *   bit 31  valid
 *   bit 30  user-accessible
 *   bit 29  writable
 *   bit 26  modified (set by hardware on first write through the entry)
 *   21..0   page frame number
 *
 * Translation-buffer misses walk the page table with a *physical* PTE read
 * that is reported to the control store as a kPte memory access — the
 * page-table references that ATUM's traces uniquely captured.
 */

#include <cstdint>

#include "mem/physical_memory.h"
#include "mmu/tlb.h"
#include "ucode/control_store.h"

namespace atum::obs {
class Registry;
}

namespace atum::cpu {
struct EventCounters;
}

namespace atum::mmu {

/** PTE field helpers. */
inline constexpr uint32_t kPteValid = 1u << 31;
inline constexpr uint32_t kPteUser = 1u << 30;
inline constexpr uint32_t kPteWritable = 1u << 29;
inline constexpr uint32_t kPteModified = 1u << 26;
inline constexpr uint32_t kPtePfnMask = (1u << 22) - 1;

/** Builds a PTE value from fields. */
constexpr uint32_t
MakePte(uint32_t pfn, bool user, bool writable, bool valid = true)
{
    return (valid ? kPteValid : 0) | (user ? kPteUser : 0) |
           (writable ? kPteWritable : 0) | (pfn & kPtePfnMask);
}

/** Virtual address regions. */
enum class Region : uint8_t { kP0 = 0, kP1 = 1, kS0 = 2, kReserved = 3 };

inline constexpr Region
RegionOf(uint32_t vaddr)
{
    return static_cast<Region>(vaddr >> 30);
}

/** Outcome classes of a translation attempt. */
enum class XlateStatus : uint8_t {
    kOk,
    kTnv,  ///< translation not valid → page fault (restartable)
    kAcv,  ///< access violation (protection, length, reserved region)
};

/** Result of Mmu::Translate. */
struct XlateResult {
    XlateStatus status = XlateStatus::kOk;
    uint32_t paddr = 0;
    uint32_t ucycles = 0;  ///< micro-cycles spent on TB miss handling
    bool tb_miss = false;
};

/** Per-region base/length registers. */
struct RegionRegs {
    uint32_t base = 0;    ///< physical address of the PTE array
    uint32_t length = 0;  ///< number of pages mapped
};

class Mmu
{
  public:
    /**
     * The Mmu reads PTEs from `memory` and reports TB misses / PTE
     * references to `control_store`. Both must outlive the Mmu.
     */
    Mmu(PhysicalMemory& memory, ucode::ControlStore& control_store,
        unsigned tlb_sets = 32, unsigned tlb_ways = 2);

    /** Memory management enable; translation is identity when disabled. */
    void set_enabled(bool enabled) { enabled_ = enabled; }
    bool enabled() const { return enabled_; }

    void SetRegion(Region r, RegionRegs regs);
    RegionRegs GetRegion(Region r) const;

    /**
     * Translates `vaddr` for an access of the given intent. On kTnv/kAcv
     * no state is modified except TB statistics. A write through a clean
     * mapping re-walks the table to set the PTE modified bit.
     */
    XlateResult Translate(uint32_t vaddr, bool write, bool kernel_mode);

    Tlb& tlb() { return tlb_; }
    const Tlb& tlb() const { return tlb_; }

    /** Count of PTE fetches performed by table walks. */
    uint64_t pte_reads() const { return pte_reads_; }

    /**
     * Hands the MMU the machine's hardware event counters so table walks
     * can tally TB misses, fills, and PTE reads on the counter path too
     * (cpu/event_counters.h). Optional; null disables the tallies.
     */
    void set_event_counters(cpu::EventCounters* ev) { ev_ = ev; }

    /**
     * Publishes TB and page-walk tallies into `reg` as `mmu.*` counters
     * (lookups, hits, misses, pte_reads). Snapshot-time copy; the hot
     * translation path keeps its plain counters.
     */
    void PublishMetrics(obs::Registry& reg) const;

    /** Serializes MMU registers, statistics and the TB (checkpoint hook). */
    util::Status Save(util::StateWriter& w) const;
    /** Restores state saved by Save; TB geometry must match. */
    util::Status Restore(util::StateReader& r);

  private:
    XlateResult Walk(uint32_t vaddr, bool write, bool kernel_mode);

    PhysicalMemory& memory_;
    ucode::ControlStore& control_store_;
    Tlb tlb_;
    bool enabled_ = false;
    RegionRegs regions_[3];
    uint64_t pte_reads_ = 0;
    cpu::EventCounters* ev_ = nullptr;
};

}  // namespace atum::mmu

#endif  // ATUM_MMU_MMU_H_
