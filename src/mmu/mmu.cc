#include "mmu/mmu.h"

#include "cpu/event_counters.h"
#include "obs/metrics.h"
#include "util/logging.h"

namespace atum::mmu {

using ucode::MemAccess;
using ucode::MemAccessKind;
using ucode::MicroOpKind;

Mmu::Mmu(PhysicalMemory& memory, ucode::ControlStore& control_store,
         unsigned tlb_sets, unsigned tlb_ways)
    : memory_(memory),
      control_store_(control_store),
      tlb_(tlb_sets, tlb_ways)
{
}

void
Mmu::SetRegion(Region r, RegionRegs regs)
{
    if (r == Region::kReserved)
        Panic("SetRegion on reserved region");
    regions_[static_cast<size_t>(r)] = regs;
}

RegionRegs
Mmu::GetRegion(Region r) const
{
    if (r == Region::kReserved)
        Panic("GetRegion on reserved region");
    return regions_[static_cast<size_t>(r)];
}

XlateResult
Mmu::Translate(uint32_t vaddr, bool write, bool kernel_mode)
{
    if (!enabled_)
        return {XlateStatus::kOk, vaddr, 0, false};

    const uint32_t vpn = vaddr >> kPageShift;
    if (TlbEntry* e = tlb_.Lookup(vpn)) {
        if (!kernel_mode && !e->user)
            return {XlateStatus::kAcv, 0, 0, false};
        if (write && !e->writable)
            return {XlateStatus::kAcv, 0, 0, false};
        if (write && !e->modified) {
            // First write through a clean entry: re-walk so the PTE's
            // modified bit is set in memory (extra page-table traffic,
            // faithfully visible to the tracer).
            tlb_.InvalidateVa(vaddr);
            return Walk(vaddr, write, kernel_mode);
        }
        const uint32_t pa =
            (e->pfn << kPageShift) | (vaddr & (kPageBytes - 1));
        return {XlateStatus::kOk, pa, 0, false};
    }
    return Walk(vaddr, write, kernel_mode);
}

XlateResult
Mmu::Walk(uint32_t vaddr, bool write, bool kernel_mode)
{
    XlateResult res;
    res.tb_miss = true;
    res.ucycles = ucode::CostOf(MicroOpKind::kPteRead);
    if (ev_ != nullptr)
        ++ev_->tlb_misses;
    res.ucycles += control_store_.FireTlbMiss(vaddr, kernel_mode);

    const Region region = RegionOf(vaddr);
    if (region == Region::kReserved) {
        res.status = XlateStatus::kAcv;
        return res;
    }
    const RegionRegs& regs = regions_[static_cast<size_t>(region)];
    const uint32_t page_in_region =
        (vaddr & 0x3fffffffu) >> kPageShift;
    if (page_in_region >= regs.length) {
        res.status = XlateStatus::kAcv;  // length violation
        return res;
    }

    const uint32_t pte_pa = regs.base + page_in_region * 4;
    if (!memory_.Contains(pte_pa, 4)) {
        res.status = XlateStatus::kAcv;
        return res;
    }
    ++pte_reads_;
    if (ev_ != nullptr)
        ++ev_->pte_reads;
    uint32_t pte = memory_.Read32(pte_pa);
    res.ucycles += control_store_.FireMemAccess(
        MemAccess{pte_pa, pte_pa, 4, MemAccessKind::kPte, kernel_mode});

    if (!(pte & kPteValid)) {
        res.status = XlateStatus::kTnv;
        return res;
    }
    const bool user = (pte & kPteUser) != 0;
    const bool writable = (pte & kPteWritable) != 0;
    if (!kernel_mode && !user) {
        res.status = XlateStatus::kAcv;
        return res;
    }
    if (write && !writable) {
        res.status = XlateStatus::kAcv;
        return res;
    }
    if (write && !(pte & kPteModified)) {
        pte |= kPteModified;
        memory_.Write32(pte_pa, pte);
    }

    TlbEntry entry;
    entry.vpn = vaddr >> kPageShift;
    entry.pfn = pte & kPtePfnMask;
    entry.user = user;
    entry.writable = writable;
    entry.modified = (pte & kPteModified) != 0;
    if (ev_ != nullptr)
        ++ev_->tlb_fills;
    tlb_.Insert(entry);

    res.status = XlateStatus::kOk;
    res.paddr = ((pte & kPtePfnMask) << kPageShift) |
                (vaddr & (kPageBytes - 1));
    return res;
}

void
Mmu::PublishMetrics(obs::Registry& reg) const
{
    reg.GetCounter("mmu.tb_lookups").Set(tlb_.lookups());
    reg.GetCounter("mmu.tb_misses").Set(tlb_.misses());
    reg.GetCounter("mmu.tb_hits").Set(tlb_.lookups() - tlb_.misses());
    reg.GetCounter("mmu.pte_reads").Set(pte_reads_);
}

util::Status
Mmu::Save(util::StateWriter& w) const
{
    w.Bool(enabled_);
    for (const RegionRegs& regs : regions_) {
        w.U32(regs.base);
        w.U32(regs.length);
    }
    w.U64(pte_reads_);
    return tlb_.Save(w);
}

util::Status
Mmu::Restore(util::StateReader& r)
{
    enabled_ = r.Bool();
    for (RegionRegs& regs : regions_) {
        regs.base = r.U32();
        regs.length = r.U32();
    }
    pte_reads_ = r.U64();
    if (!r.ok())
        return r.status();
    return tlb_.Restore(r);
}

}  // namespace atum::mmu
