#include "mmu/tlb.h"

#include "mem/physical_memory.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace atum::mmu {

namespace {
/** First virtual page number of the S0 (system) region. */
constexpr uint32_t kS0BaseVpn = 0x80000000u >> kPageShift;
}  // namespace

Tlb::Tlb(unsigned sets, unsigned ways) : sets_(sets), ways_(ways)
{
    if (sets == 0 || ways == 0 || !IsPowerOfTwo(sets))
        Fatal("TB geometry must be power-of-two sets x (>=1) ways, got ",
              sets, "x", ways);
    entries_.resize(static_cast<size_t>(sets) * ways);
}

TlbEntry*
Tlb::Lookup(uint32_t vpn)
{
    ++lookups_;
    const unsigned set = vpn & (sets_ - 1);
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry& e = entries_[static_cast<size_t>(set) * ways_ + w];
        if (e.valid && e.vpn == vpn) {
            e.lru = ++stamp_;
            return &e;
        }
    }
    ++misses_;
    return nullptr;
}

TlbEntry&
Tlb::VictimIn(unsigned set)
{
    TlbEntry* victim = &entries_[static_cast<size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry& e = entries_[static_cast<size_t>(set) * ways_ + w];
        if (!e.valid)
            return e;
        if (e.lru < victim->lru)
            victim = &e;
    }
    return *victim;
}

void
Tlb::Insert(const TlbEntry& entry)
{
    const unsigned set = entry.vpn & (sets_ - 1);
    TlbEntry& slot = VictimIn(set);
    slot = entry;
    slot.valid = true;
    slot.lru = ++stamp_;
}

void
Tlb::InvalidateAll()
{
    for (auto& e : entries_)
        e.valid = false;
}

void
Tlb::InvalidateVa(uint32_t vaddr)
{
    const uint32_t vpn = vaddr >> kPageShift;
    const unsigned set = vpn & (sets_ - 1);
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry& e = entries_[static_cast<size_t>(set) * ways_ + w];
        if (e.valid && e.vpn == vpn)
            e.valid = false;
    }
}

unsigned
Tlb::FlushProcessEntries()
{
    unsigned flushed = 0;
    for (auto& e : entries_) {
        if (e.valid && e.vpn < kS0BaseVpn) {
            e.valid = false;
            ++flushed;
        }
    }
    return flushed;
}

}  // namespace atum::mmu
