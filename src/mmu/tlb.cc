#include "mmu/tlb.h"

#include "mem/physical_memory.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace atum::mmu {

namespace {
/** First virtual page number of the S0 (system) region. */
constexpr uint32_t kS0BaseVpn = 0x80000000u >> kPageShift;
}  // namespace

Tlb::Tlb(unsigned sets, unsigned ways) : sets_(sets), ways_(ways)
{
    if (sets == 0 || ways == 0 || !IsPowerOfTwo(sets))
        Fatal("TB geometry must be power-of-two sets x (>=1) ways, got ",
              sets, "x", ways);
    entries_.resize(static_cast<size_t>(sets) * ways);
}

TlbEntry*
Tlb::Lookup(uint32_t vpn)
{
    ++lookups_;
    const unsigned set = vpn & (sets_ - 1);
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry& e = entries_[static_cast<size_t>(set) * ways_ + w];
        if (e.valid && e.vpn == vpn) {
            e.lru = ++stamp_;
            return &e;
        }
    }
    ++misses_;
    return nullptr;
}

TlbEntry&
Tlb::VictimIn(unsigned set)
{
    TlbEntry* victim = &entries_[static_cast<size_t>(set) * ways_];
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry& e = entries_[static_cast<size_t>(set) * ways_ + w];
        if (!e.valid)
            return e;
        if (e.lru < victim->lru)
            victim = &e;
    }
    return *victim;
}

void
Tlb::Insert(const TlbEntry& entry)
{
    const unsigned set = entry.vpn & (sets_ - 1);
    TlbEntry& slot = VictimIn(set);
    slot = entry;
    slot.valid = true;
    slot.lru = ++stamp_;
}

void
Tlb::InvalidateAll()
{
    for (auto& e : entries_)
        e.valid = false;
}

void
Tlb::InvalidateVa(uint32_t vaddr)
{
    const uint32_t vpn = vaddr >> kPageShift;
    const unsigned set = vpn & (sets_ - 1);
    for (unsigned w = 0; w < ways_; ++w) {
        TlbEntry& e = entries_[static_cast<size_t>(set) * ways_ + w];
        if (e.valid && e.vpn == vpn)
            e.valid = false;
    }
}

unsigned
Tlb::FlushProcessEntries()
{
    unsigned flushed = 0;
    for (auto& e : entries_) {
        if (e.valid && e.vpn < kS0BaseVpn) {
            e.valid = false;
            ++flushed;
        }
    }
    return flushed;
}

util::Status
Tlb::Save(util::StateWriter& w) const
{
    w.U32(sets_);
    w.U32(ways_);
    w.U64(stamp_);
    w.U64(lookups_);
    w.U64(misses_);
    for (const TlbEntry& e : entries_) {
        w.Bool(e.valid);
        w.U32(e.vpn);
        w.U32(e.pfn);
        w.U8(static_cast<uint8_t>((e.user ? 1 : 0) | (e.writable ? 2 : 0) |
                                  (e.modified ? 4 : 0)));
        w.U64(e.lru);
    }
    return util::OkStatus();
}

util::Status
Tlb::Restore(util::StateReader& r)
{
    const uint32_t saved_sets = r.U32();
    const uint32_t saved_ways = r.U32();
    if (!r.ok())
        return r.status();
    if (saved_sets != sets_ || saved_ways != ways_) {
        return util::DataLoss("checkpoint TB geometry ", saved_sets, "x",
                              saved_ways, " does not match machine TB ",
                              sets_, "x", ways_);
    }
    stamp_ = r.U64();
    lookups_ = r.U64();
    misses_ = r.U64();
    for (TlbEntry& e : entries_) {
        e.valid = r.Bool();
        e.vpn = r.U32();
        e.pfn = r.U32();
        const uint8_t flags = r.U8();
        e.user = flags & 1;
        e.writable = flags & 2;
        e.modified = flags & 4;
        e.lru = r.U64();
    }
    return r.status();
}

}  // namespace atum::mmu
