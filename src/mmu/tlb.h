#ifndef ATUM_MMU_TLB_H_
#define ATUM_MMU_TLB_H_

/**
 * @file
 * The hardware translation buffer (TB).
 *
 * Set-associative, LRU-replaced, VAX-style: entries are tagged by virtual
 * page number only — there are no address-space identifiers, so a context
 * switch must flush all process-space (P0/P1) entries. That flush is what
 * makes multiprogramming visible in TB miss traffic, one of the effects
 * ATUM's full-system traces exposed.
 */

#include <cstdint>
#include <vector>

#include "util/serialize.h"
#include "util/status.h"

namespace atum::mmu {

/** One cached translation. */
struct TlbEntry {
    bool valid = false;
    uint32_t vpn = 0;  ///< global virtual page number (vaddr >> 9)
    uint32_t pfn = 0;
    bool user = false;      ///< user mode may access
    bool writable = false;  ///< writes permitted
    bool modified = false;  ///< a write has been performed via this entry
    uint64_t lru = 0;       ///< last-use stamp
};

class Tlb
{
  public:
    /** Creates a TB with `sets` x `ways` entries; both must be >= 1 and
     *  `sets` a power of two. Default geometry mimics a small-mini TB. */
    explicit Tlb(unsigned sets = 32, unsigned ways = 2);

    /** Returns the matching valid entry or nullptr. Updates LRU on hit. */
    TlbEntry* Lookup(uint32_t vpn);

    /** Installs a translation, evicting the set's LRU entry if needed. */
    void Insert(const TlbEntry& entry);

    /** Invalidates everything (MTPR TBIA). */
    void InvalidateAll();

    /** Invalidates the entry mapping `vaddr`, if present (MTPR TBIS). */
    void InvalidateVa(uint32_t vaddr);

    /**
     * Invalidates all process-space entries (vpn below the S0 region),
     * as LDPCTX does on a context switch. Returns the number flushed.
     */
    unsigned FlushProcessEntries();

    unsigned sets() const { return sets_; }
    unsigned ways() const { return ways_; }

    /**
     * Serializes the full TB — entries, LRU stamps and statistics
     * (checkpoint hook). The TB must be restored exactly, not flushed:
     * a resumed capture replays the same miss stream, and TB-miss
     * records are part of the trace the resume must reproduce
     * byte-for-byte.
     */
    util::Status Save(util::StateWriter& w) const;
    /** Restores state saved by Save; geometry must match. */
    util::Status Restore(util::StateReader& r);

    uint64_t lookups() const { return lookups_; }
    uint64_t misses() const { return misses_; }

  private:
    TlbEntry& VictimIn(unsigned set);

    unsigned sets_;
    unsigned ways_;
    std::vector<TlbEntry> entries_;  ///< sets_ x ways_, row-major
    uint64_t stamp_ = 0;
    uint64_t lookups_ = 0;
    uint64_t misses_ = 0;
};

}  // namespace atum::mmu

#endif  // ATUM_MMU_TLB_H_
