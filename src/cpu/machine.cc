#include "cpu/machine.h"

#include "obs/metrics.h"
#include "obs/spans.h"
#include "util/bitops.h"
#include "util/logging.h"

namespace atum::cpu {

using ucode::MemAccess;
using ucode::MemAccessKind;
using ucode::MicroOpKind;

namespace {

/**
 * Attributes the enclosing scope to `phase` iff the profiler has a
 * sampled window open. In unprofiled runs (and in -DATUM_TRACING=OFF
 * builds, where sampling() is constant false) this folds to nothing.
 */
struct PhaseScope {
    PhaseScope(obs::PhaseProfiler* profiler, obs::Phase phase)
        : profiler_(profiler != nullptr && profiler->sampling() ? profiler
                                                                : nullptr)
    {
        if (profiler_ != nullptr)
            profiler_->Enter(phase);
    }
    ~PhaseScope()
    {
        if (profiler_ != nullptr)
            profiler_->Exit();
    }

    obs::PhaseProfiler* profiler_;
};

}  // namespace

uint32_t
Psl::ToWord() const
{
    return (c ? 1u : 0) | (v ? 2u : 0) | (z ? 4u : 0) | (n ? 8u : 0) |
           (static_cast<uint32_t>(ipl & 0x1f) << 16) |
           (static_cast<uint32_t>(cur_mode) << 24) |
           (static_cast<uint32_t>(prev_mode) << 25);
}

Psl
Psl::FromWord(uint32_t w)
{
    Psl p;
    p.c = w & 1;
    p.v = w & 2;
    p.z = w & 4;
    p.n = w & 8;
    p.ipl = (w >> 16) & 0x1f;
    p.cur_mode = static_cast<CpuMode>((w >> 24) & 1);
    p.prev_mode = static_cast<CpuMode>((w >> 25) & 1);
    return p;
}

Machine::Machine(const Config& config)
    : memory_(config.mem_bytes),
      mmu_(memory_, control_store_, config.tlb_sets, config.tlb_ways),
      icr_reload_(config.timer_reload),
      icr_count_(config.timer_reload)
{
    if (config.timer_reload == 0)
        Fatal("timer_reload must be nonzero");
    mmu_.set_event_counters(&ev_);
}

uint32_t
Machine::reg(unsigned n) const
{
    if (n >= isa::kNumRegs)
        Panic("register index ", n, " out of range");
    return regs_[n];
}

void
Machine::set_reg(unsigned n, uint32_t v)
{
    if (n >= isa::kNumRegs)
        Panic("register index ", n, " out of range");
    regs_[n] = v;
    if (n == isa::kRegPc)
        InvalidateIBuf();
}

void
Machine::set_pc(uint32_t pc)
{
    set_reg(isa::kRegPc, pc);
}

uint32_t
Machine::ReadIpr(isa::Ipr ipr)
{
    using isa::Ipr;
    switch (ipr) {
      case Ipr::kKsp:
        return psl_.cur_mode == CpuMode::kKernel ? regs_[isa::kRegSp]
                                                 : banked_sp_[0];
      case Ipr::kUsp:
        return psl_.cur_mode == CpuMode::kUser ? regs_[isa::kRegSp]
                                               : banked_sp_[1];
      case Ipr::kP0Br:
        return mmu_.GetRegion(mmu::Region::kP0).base;
      case Ipr::kP0Lr:
        return mmu_.GetRegion(mmu::Region::kP0).length;
      case Ipr::kP1Br:
        return mmu_.GetRegion(mmu::Region::kP1).base;
      case Ipr::kP1Lr:
        return mmu_.GetRegion(mmu::Region::kP1).length;
      case Ipr::kS0Br:
        return mmu_.GetRegion(mmu::Region::kS0).base;
      case Ipr::kS0Lr:
        return mmu_.GetRegion(mmu::Region::kS0).length;
      case Ipr::kScbb:
        return scbb_;
      case Ipr::kPcbb:
        return pcbb_;
      case Ipr::kMapen:
        return mmu_.enabled() ? 1 : 0;
      case Ipr::kIccs:
        return iccs_;
      case Ipr::kIcr:
        return icr_reload_;
      case Ipr::kPid:
        return pid_;
      case Ipr::kDmaSrc:
        return dma_src_;
      case Ipr::kDmaDst:
        return dma_dst_;
      case Ipr::kDmaLen:
        return dma_len_;
      case Ipr::kDmaCtl:
        return dma_delay_ > 0 ? 1 : 0;  // busy bit
      case Ipr::kTbia:
      case Ipr::kTbis:
      case Ipr::kConsTx:
      case Ipr::kSirr:
        return 0;  // write-only registers read as zero
      case Ipr::kNumIprs:
        break;
    }
    Panic("ReadIpr: bad processor register");
}

void
Machine::WriteIpr(isa::Ipr ipr, uint32_t v)
{
    using isa::Ipr;
    switch (ipr) {
      case Ipr::kKsp:
        if (psl_.cur_mode == CpuMode::kKernel)
            regs_[isa::kRegSp] = v;
        else
            banked_sp_[0] = v;
        return;
      case Ipr::kUsp:
        if (psl_.cur_mode == CpuMode::kUser)
            regs_[isa::kRegSp] = v;
        else
            banked_sp_[1] = v;
        return;
      case Ipr::kP0Br:
        mmu_.SetRegion(mmu::Region::kP0,
                       {v, mmu_.GetRegion(mmu::Region::kP0).length});
        return;
      case Ipr::kP0Lr:
        mmu_.SetRegion(mmu::Region::kP0,
                       {mmu_.GetRegion(mmu::Region::kP0).base, v});
        return;
      case Ipr::kP1Br:
        mmu_.SetRegion(mmu::Region::kP1,
                       {v, mmu_.GetRegion(mmu::Region::kP1).length});
        return;
      case Ipr::kP1Lr:
        mmu_.SetRegion(mmu::Region::kP1,
                       {mmu_.GetRegion(mmu::Region::kP1).base, v});
        return;
      case Ipr::kS0Br:
        mmu_.SetRegion(mmu::Region::kS0,
                       {v, mmu_.GetRegion(mmu::Region::kS0).length});
        return;
      case Ipr::kS0Lr:
        mmu_.SetRegion(mmu::Region::kS0,
                       {mmu_.GetRegion(mmu::Region::kS0).base, v});
        return;
      case Ipr::kScbb:
        scbb_ = v;
        return;
      case Ipr::kPcbb:
        pcbb_ = v;
        return;
      case Ipr::kMapen:
        mmu_.set_enabled(v & 1);
        InvalidateIBuf();
        return;
      case Ipr::kTbia:
        mmu_.tlb().InvalidateAll();
        return;
      case Ipr::kTbis:
        mmu_.tlb().InvalidateVa(v);
        return;
      case Ipr::kIccs:
        iccs_ = v & 1;
        icr_count_ = icr_reload_;
        return;
      case Ipr::kIcr:
        if (v == 0)
            Fatal("ICR reload of 0");
        icr_reload_ = v;
        icr_count_ = v;
        return;
      case Ipr::kConsTx:
        console_output_.push_back(static_cast<char>(v & 0xff));
        return;
      case Ipr::kSirr:
        software_pending_ = true;
        return;
      case Ipr::kPid:
        pid_ = v;
        return;
      case Ipr::kDmaSrc:
        dma_src_ = v;
        return;
      case Ipr::kDmaDst:
        dma_dst_ = v;
        return;
      case Ipr::kDmaLen:
        dma_len_ = v;
        return;
      case Ipr::kDmaCtl:
        if (v & 1)
            StartDma();
        return;
      case Ipr::kNumIprs:
        break;
    }
    Panic("WriteIpr: bad processor register");
}

bool
Machine::Translate(uint32_t va, bool write, uint32_t* pa)
{
    PhaseScope phase(profiler_, obs::Phase::kTranslate);
    mmu::XlateResult res =
        mmu_.Translate(va, write, psl_.cur_mode == CpuMode::kKernel);
    AddCycles(res.ucycles);
    if (res.status != mmu::XlateStatus::kOk) {
        pending_fault_ = {true, res.status, va, write};
        return false;
    }
    *pa = res.paddr;
    return true;
}

bool
Machine::MicroRead(uint32_t va, uint8_t size, MemAccessKind kind,
                   uint32_t* out)
{
    uint32_t pa;
    if (!Translate(va, false, &pa))
        return false;

    uint32_t value;
    {
        PhaseScope phase(profiler_, obs::Phase::kMemory);
        const uint32_t last = va + size - 1;
        if (AlignDown(va, kPageBytes) == AlignDown(last, kPageBytes)) {
            value = size == 1   ? memory_.Read8(pa)
                    : size == 2 ? memory_.Read16(pa)
                                : memory_.Read32(pa);
        } else {
            // Unaligned access straddling a page boundary: translate each
            // byte's page and assemble (the microcode did two bus cycles).
            value = 0;
            for (uint8_t i = 0; i < size; ++i) {
                uint32_t pb;
                if (!Translate(va + i, false, &pb))
                    return false;
                value |= static_cast<uint32_t>(memory_.Read8(pb)) << (8 * i);
            }
        }
    }

    AddCycles(ucode::CostOf(kind == MemAccessKind::kIFetch
                                ? MicroOpKind::kIFetch
                                : MicroOpKind::kDRead));
    if (kind == MemAccessKind::kIFetch)
        ++ev_.ifetches;
    else
        ++ev_.reads;
    {
        PhaseScope phase(profiler_, obs::Phase::kTracer);
        AddCycles(control_store_.FireMemAccess(
            MemAccess{va, pa, size, kind,
                      psl_.cur_mode == CpuMode::kKernel}));
    }
    *out = value;
    return true;
}

bool
Machine::MicroWrite(uint32_t va, uint8_t size, uint32_t value)
{
    uint32_t pa;
    if (!Translate(va, true, &pa))
        return false;

    {
        PhaseScope phase(profiler_, obs::Phase::kMemory);
        const uint32_t last = va + size - 1;
        if (AlignDown(va, kPageBytes) == AlignDown(last, kPageBytes)) {
            if (size == 1)
                memory_.Write8(pa, static_cast<uint8_t>(value));
            else if (size == 2)
                memory_.Write16(pa, static_cast<uint16_t>(value));
            else
                memory_.Write32(pa, value);
        } else {
            for (uint8_t i = 0; i < size; ++i) {
                uint32_t pb;
                if (!Translate(va + i, true, &pb))
                    return false;
                memory_.Write8(pb, static_cast<uint8_t>(value >> (8 * i)));
            }
        }
    }

    AddCycles(ucode::CostOf(MicroOpKind::kDWrite));
    ++ev_.writes;
    {
        PhaseScope phase(profiler_, obs::Phase::kTracer);
        AddCycles(control_store_.FireMemAccess(
            MemAccess{va, pa, size, MemAccessKind::kWrite,
                      psl_.cur_mode == CpuMode::kKernel}));
    }
    return true;
}

void
Machine::StartDma()
{
    if (dma_len_ == 0 || (dma_len_ & 3) != 0)
        Panic("DMA: length must be a nonzero multiple of 4, got ", dma_len_);
    if (!memory_.Contains(dma_src_, dma_len_) ||
        !memory_.Contains(dma_dst_, dma_len_)) {
        Panic("DMA: transfer outside physical memory (src=0x", std::hex,
              dma_src_, " dst=0x", dma_dst_, " len=0x", dma_len_, ")");
    }
    // The engine writes the destination over the bus; like HMTT's bus
    // snooper, the trace sees one kDma reference per word on the write
    // side only. The source read happens on the device's private port.
    for (uint32_t off = 0; off < dma_len_; off += 4) {
        memory_.Write32(dma_dst_ + off, memory_.Read32(dma_src_ + off));
        AddCycles(control_store_.FireMemAccess(
            MemAccess{dma_dst_ + off, dma_dst_ + off, 4,
                      MemAccessKind::kDma, true}));
    }
    ev_.dma_bytes += dma_len_;
    // Completion interrupt after roughly one word per instruction slot,
    // restarting any countdown already in flight (transfers coalesce).
    dma_delay_ = dma_len_ / 4 + 8;
}

bool
Machine::FetchByte(uint8_t* out)
{
    const uint32_t va = regs_[isa::kRegPc];
    const uint32_t aligned = AlignDown(va, 4);
    if (!ibuf_valid_ || ibuf_va_ != aligned) {
        uint32_t word;
        if (!MicroRead(aligned, 4, MemAccessKind::kIFetch, &word))
            return false;
        ibuf_va_ = aligned;
        for (int i = 0; i < 4; ++i)
            ibuf_bytes_[i] = static_cast<uint8_t>(word >> (8 * i));
        ibuf_valid_ = true;
        ++ibuf_refills_;
    }
    *out = ibuf_bytes_[va & 3];
    regs_[isa::kRegPc] = va + 1;
    return true;
}

void
Machine::StepOne()
{
    if (halted_)
        return;
    last_step_faulted_ = false;

    if (CheckInterrupts())
        return;  // interrupt dispatch consumed this step

    ExecuteInstruction();

    // Interval timer counts retired instructions (deterministic w.r.t.
    // the instruction stream, so tracing does not perturb scheduling).
    if ((iccs_ & 1) && !halted_) {
        if (--icr_count_ == 0) {
            icr_count_ = icr_reload_;
            timer_pending_ = true;
        }
    }

    // DMA completion countdown, same deterministic clock.
    if (dma_delay_ > 0 && !halted_) {
        if (--dma_delay_ == 0)
            dma_pending_ = true;
    }
}

void
Machine::PublishMetrics(obs::Registry& reg) const
{
    reg.GetCounter("cpu.instructions").Set(icount_);
    reg.GetCounter("cpu.ucycles").Set(ucycles_);
    reg.GetCounter("cpu.exceptions").Set(exceptions_);
    reg.GetCounter("cpu.ibuf_refills").Set(ibuf_refills_);
    reg.GetGauge("cpu.halted").Set(halted_ ? 1 : 0);
    // Hardware event counters (docs/COUNTERS.md): the tracer-independent
    // ground truth that atum-report --crosscheck validates traces against.
    reg.GetCounter("cpu.ev.instructions").Set(ev_.instructions);
    reg.GetCounter("cpu.ev.ifetches").Set(ev_.ifetches);
    reg.GetCounter("cpu.ev.reads").Set(ev_.reads);
    reg.GetCounter("cpu.ev.writes").Set(ev_.writes);
    reg.GetCounter("cpu.ev.pte_reads").Set(ev_.pte_reads);
    reg.GetCounter("cpu.ev.tlb_misses").Set(ev_.tlb_misses);
    reg.GetCounter("cpu.ev.tlb_fills").Set(ev_.tlb_fills);
    reg.GetCounter("cpu.ev.exceptions").Set(ev_.exceptions);
    reg.GetCounter("cpu.ev.syscalls").Set(ev_.syscalls);
    reg.GetCounter("cpu.ev.dma_bytes").Set(ev_.dma_bytes);
    mmu_.PublishMetrics(reg);
}

MachineSnapshot
Machine::SaveSnapshot() const
{
    MachineSnapshot snap;
    snap.memory = memory_.SaveData();
    for (unsigned i = 0; i < isa::kNumRegs; ++i)
        snap.regs[i] = regs_[i];
    snap.psl = psl_;
    snap.banked_sp[0] = banked_sp_[0];
    snap.banked_sp[1] = banked_sp_[1];
    snap.scbb = scbb_;
    snap.pcbb = pcbb_;
    snap.pid = pid_;
    snap.iccs = iccs_;
    snap.icr_reload = icr_reload_;
    snap.icr_count = icr_count_;
    snap.timer_pending = timer_pending_;
    snap.software_pending = software_pending_;
    snap.halted = halted_;
    snap.icount = icount_;
    snap.ucycles = ucycles_;
    snap.mapen = mmu_.enabled();
    snap.regions[0] = mmu_.GetRegion(mmu::Region::kP0);
    snap.regions[1] = mmu_.GetRegion(mmu::Region::kP1);
    snap.regions[2] = mmu_.GetRegion(mmu::Region::kS0);
    snap.console_output = console_output_;
    snap.ev = ev_;
    snap.dma_src = dma_src_;
    snap.dma_dst = dma_dst_;
    snap.dma_len = dma_len_;
    snap.dma_delay = dma_delay_;
    snap.dma_pending = dma_pending_;
    return snap;
}

void
Machine::RestoreSnapshot(const MachineSnapshot& snapshot)
{
    memory_.RestoreData(snapshot.memory);
    for (unsigned i = 0; i < isa::kNumRegs; ++i)
        regs_[i] = snapshot.regs[i];
    psl_ = snapshot.psl;
    banked_sp_[0] = snapshot.banked_sp[0];
    banked_sp_[1] = snapshot.banked_sp[1];
    scbb_ = snapshot.scbb;
    pcbb_ = snapshot.pcbb;
    pid_ = snapshot.pid;
    iccs_ = snapshot.iccs;
    icr_reload_ = snapshot.icr_reload;
    icr_count_ = snapshot.icr_count;
    timer_pending_ = snapshot.timer_pending;
    software_pending_ = snapshot.software_pending;
    halted_ = snapshot.halted;
    icount_ = snapshot.icount;
    ucycles_ = snapshot.ucycles;
    mmu_.set_enabled(snapshot.mapen);
    mmu_.SetRegion(mmu::Region::kP0, snapshot.regions[0]);
    mmu_.SetRegion(mmu::Region::kP1, snapshot.regions[1]);
    mmu_.SetRegion(mmu::Region::kS0, snapshot.regions[2]);
    console_output_ = snapshot.console_output;
    ev_ = snapshot.ev;
    dma_src_ = snapshot.dma_src;
    dma_dst_ = snapshot.dma_dst;
    dma_len_ = snapshot.dma_len;
    dma_delay_ = snapshot.dma_delay;
    dma_pending_ = snapshot.dma_pending;
    pending_fault_.active = false;
    InvalidateIBuf();
    mmu_.tlb().InvalidateAll();
}

util::Status
Machine::Save(util::StateWriter& w) const
{
    for (uint32_t reg : regs_)
        w.U32(reg);
    w.U32(psl_.ToWord());
    w.U32(banked_sp_[0]);
    w.U32(banked_sp_[1]);
    w.U32(scbb_);
    w.U32(pcbb_);
    w.U32(pid_);
    w.U32(iccs_);
    w.U32(icr_reload_);
    w.U32(icr_count_);
    w.Bool(timer_pending_);
    w.Bool(software_pending_);
    w.Bool(halted_);
    w.Bool(last_step_faulted_);
    w.U64(icount_);
    w.U64(ucycles_);
    // The prefetch buffer is saved exactly: invalidating it instead would
    // insert a refetch — and so an extra ifetch trace record — that the
    // uninterrupted run does not have.
    w.Bool(ibuf_valid_);
    w.U32(ibuf_va_);
    w.Bytes(ibuf_bytes_, sizeof ibuf_bytes_);
    // DMA engine registers and the in-flight completion countdown.
    w.U32(dma_src_);
    w.U32(dma_dst_);
    w.U32(dma_len_);
    w.U32(dma_delay_);
    w.Bool(dma_pending_);
    // Hardware event counters are checkpointed (unlike the observability
    // tallies above) so crosscheck intervals stay valid across resume.
    w.U64(ev_.instructions);
    w.U64(ev_.ifetches);
    w.U64(ev_.reads);
    w.U64(ev_.writes);
    w.U64(ev_.pte_reads);
    w.U64(ev_.tlb_misses);
    w.U64(ev_.tlb_fills);
    w.U64(ev_.exceptions);
    w.U64(ev_.syscalls);
    w.U64(ev_.dma_bytes);
    // pending_fault_ and the restart journal are live only *inside* one
    // StepOne; at an instruction boundary they carry nothing, so they are
    // reset on restore rather than serialized.
    w.Str(console_output_);
    util::Status status = memory_.Save(w);
    if (!status.ok())
        return status;
    return mmu_.Save(w);
}

util::Status
Machine::Restore(util::StateReader& r)
{
    for (uint32_t& reg : regs_)
        reg = r.U32();
    psl_ = Psl::FromWord(r.U32());
    banked_sp_[0] = r.U32();
    banked_sp_[1] = r.U32();
    scbb_ = r.U32();
    pcbb_ = r.U32();
    pid_ = r.U32();
    iccs_ = r.U32();
    icr_reload_ = r.U32();
    icr_count_ = r.U32();
    timer_pending_ = r.Bool();
    software_pending_ = r.Bool();
    halted_ = r.Bool();
    last_step_faulted_ = r.Bool();
    icount_ = r.U64();
    ucycles_ = r.U64();
    ibuf_valid_ = r.Bool();
    ibuf_va_ = r.U32();
    r.Bytes(ibuf_bytes_, sizeof ibuf_bytes_);
    dma_src_ = r.U32();
    dma_dst_ = r.U32();
    dma_len_ = r.U32();
    dma_delay_ = r.U32();
    dma_pending_ = r.Bool();
    ev_.instructions = r.U64();
    ev_.ifetches = r.U64();
    ev_.reads = r.U64();
    ev_.writes = r.U64();
    ev_.pte_reads = r.U64();
    ev_.tlb_misses = r.U64();
    ev_.tlb_fills = r.U64();
    ev_.exceptions = r.U64();
    ev_.syscalls = r.U64();
    ev_.dma_bytes = r.U64();
    console_output_ = r.Str();
    pending_fault_.active = false;
    if (!r.ok())
        return r.status();
    if (icr_reload_ == 0 || icr_count_ == 0) {
        return util::DataLoss(
            "checkpoint carries a zero interval-timer count");
    }
    util::Status status = memory_.Restore(r);
    if (!status.ok())
        return status;
    return mmu_.Restore(r);
}

Machine::RunResult
Machine::Run(uint64_t max_instructions)
{
    const uint64_t start = icount_;
    while (!halted_ && icount_ - start < max_instructions)
        StepOne();
    return {halted_ ? StopReason::kHalted : StopReason::kInstrLimit,
            icount_ - start};
}

}  // namespace atum::cpu
