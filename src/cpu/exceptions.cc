#include "cpu/machine.h"

#include "util/logging.h"

/**
 * @file
 * Exception, interrupt and REI microcode for the VCX-32 machine.
 *
 * All dispatches switch to kernel mode, raise IPL to 31 (handlers are never
 * preempted; pending interrupts are taken when REI lowers IPL), push the
 * interrupted PSL and PC (plus per-vector extra words, pushed last so they
 * are on top), and vector through the SCB.
 */

namespace atum::cpu {

using ucode::MemAccess;
using ucode::MemAccessKind;
using ucode::MicroOpKind;

void
Machine::SwitchMode(CpuMode new_mode)
{
    if (new_mode == psl_.cur_mode)
        return;
    banked_sp_[static_cast<size_t>(psl_.cur_mode)] = regs_[isa::kRegSp];
    regs_[isa::kRegSp] = banked_sp_[static_cast<size_t>(new_mode)];
    psl_.cur_mode = new_mode;
    InvalidateIBuf();
}

void
Machine::PushKernel(uint32_t value)
{
    regs_[isa::kRegSp] -= 4;
    if (!MicroWrite(regs_[isa::kRegSp], 4, value)) {
        Panic("double fault: kernel stack push failed at sp=0x", std::hex,
              regs_[isa::kRegSp]);
    }
}

void
Machine::DispatchException(ExcVector vector, uint32_t extra0, uint32_t extra1,
                           unsigned num_extra, uint32_t restart_pc)
{
    const uint32_t old_psl = psl_.ToWord();
    const CpuMode old_mode = psl_.cur_mode;

    SwitchMode(CpuMode::kKernel);
    psl_.prev_mode = old_mode;
    psl_.ipl = 31;

    PushKernel(old_psl);
    PushKernel(restart_pc);
    if (num_extra >= 1)
        PushKernel(extra0);
    if (num_extra >= 2)
        PushKernel(extra1);

    const uint32_t vec_pa = scbb_ + 4 * static_cast<uint32_t>(vector);
    if (!memory_.Contains(vec_pa, 4))
        Panic("SCB vector ", static_cast<unsigned>(vector),
              " outside physical memory (scbb=0x", std::hex, scbb_, ")");
    const uint32_t handler = memory_.Read32(vec_pa);
    AddCycles(ucode::CostOf(MicroOpKind::kDRead));
    ++ev_.reads;  // SCB vector read, mirrored by the fire below
    AddCycles(control_store_.FireMemAccess(
        MemAccess{vec_pa, vec_pa, 4, MemAccessKind::kRead, true}));
    if (handler == 0) {
        Panic("no handler installed for exception vector ",
              static_cast<unsigned>(vector));
    }

    AddCycles(ucode::CostOf(MicroOpKind::kExcDispatch));
    ++ev_.exceptions;
    if (vector == ExcVector::kChmk)
        ++ev_.syscalls;
    AddCycles(
        control_store_.FireExceptionDispatch(static_cast<uint8_t>(vector)));

    set_pc(handler);
    last_step_faulted_ = true;
    ++exceptions_;
}

void
Machine::DispatchSimple(ExcVector vector, uint32_t restart_pc)
{
    DispatchException(vector, 0, 0, 0, restart_pc);
}

bool
Machine::CheckInterrupts()
{
    if (dma_pending_ && psl_.ipl < kDmaIpl) {
        dma_pending_ = false;
        DispatchSimple(ExcVector::kDmaDone, pc());
        return true;
    }
    if (timer_pending_ && psl_.ipl < kTimerIpl) {
        timer_pending_ = false;
        DispatchSimple(ExcVector::kTimer, pc());
        return true;
    }
    if (software_pending_ && psl_.ipl < kSoftwareIpl) {
        software_pending_ = false;
        DispatchSimple(ExcVector::kSoftware, pc());
        return true;
    }
    return false;
}

void
Machine::DoRei()
{
    uint32_t new_pc, psl_word;
    if (!MicroRead(regs_[isa::kRegSp], 4, MemAccessKind::kRead, &new_pc) ||
        !MicroRead(regs_[isa::kRegSp] + 4, 4, MemAccessKind::kRead,
                   &psl_word)) {
        Panic("REI: kernel stack pop faulted at sp=0x", std::hex,
              regs_[isa::kRegSp]);
    }
    regs_[isa::kRegSp] += 8;

    const Psl new_psl = Psl::FromWord(psl_word);
    SwitchMode(new_psl.cur_mode);  // banks the stack pointers
    psl_ = new_psl;
    set_pc(new_pc);
    AddCycles(ucode::CostOf(MicroOpKind::kRei));
}

}  // namespace atum::cpu
