#ifndef ATUM_CPU_EVENT_COUNTERS_H_
#define ATUM_CPU_EVENT_COUNTERS_H_

/**
 * @file
 * Hardware-style event counters, independent of the tracer.
 *
 * CounterPoint-style cross-validation needs two observers of the same
 * execution that share no code path: the ATUM tracer (a control-store
 * patch writing records into the reserved buffer) and these counters
 * (plain increments on the interpreter hot path, bumped immediately next
 * to each control-store fire site). `atum-report --crosscheck` re-derives
 * every one of these from the trace and fails on any unexplained delta,
 * so a bug in either path is caught by the other.
 *
 * The struct is header-only and dependency-free so the MMU (a layer below
 * cpu) can hold a pointer to the machine's instance without a cycle.
 */

#include <cstdint>

namespace atum::cpu {

struct EventCounters {
    uint64_t instructions = 0;  ///< decode dispatches (opcode byte fetched)
    uint64_t ifetches = 0;      ///< instruction-stream longword fetches
    uint64_t reads = 0;         ///< data-stream reads (incl. microcode PCB/SCB)
    uint64_t writes = 0;        ///< data-stream writes
    uint64_t pte_reads = 0;     ///< page-table entry reads during TB-miss walks
    uint64_t tlb_misses = 0;    ///< translation-buffer misses (walks started)
    uint64_t tlb_fills = 0;     ///< TB entries inserted (successful walks)
    uint64_t exceptions = 0;    ///< exception/interrupt dispatches
    uint64_t syscalls = 0;      ///< CHMK dispatches (subset of exceptions)
    uint64_t dma_bytes = 0;     ///< bytes moved by the DMA engine

    void Reset() { *this = EventCounters{}; }

    bool operator==(const EventCounters&) const = default;
};

}  // namespace atum::cpu

#endif  // ATUM_CPU_EVENT_COUNTERS_H_
