#include <cstring>

#include "cpu/machine.h"
#include "util/bitops.h"
#include "util/logging.h"

/**
 * @file
 * The VCX-32 instruction executor: one macro-instruction per call,
 * realized as a micro-op sequence over Machine's MicroRead/MicroWrite/
 * FetchByte primitives. Faulting instructions roll back general-register
 * and PSL state and dispatch a restartable exception; traps (CHMK, BPT,
 * arithmetic) keep side effects and push the next PC.
 */

namespace atum::cpu {

using isa::Access;
using isa::AddrMode;
using isa::DataType;
using isa::Opcode;
using ucode::MemAccess;
using ucode::MemAccessKind;
using ucode::MicroOpKind;

namespace {
/** MOVC3 length limit; larger counts raise a reserved-operand fault. */
constexpr uint32_t kMaxMovcLen = 1u << 20;
}  // namespace

/** Executes exactly one instruction on behalf of Machine. */
class Executor
{
  public:
    explicit Executor(Machine& m) : m_(m) {}

    void Run();

  private:
    /** Evaluated operand: a register, a memory location, or a literal. */
    struct Ref {
        enum class Kind : uint8_t { kReg, kMem, kImm } kind = Kind::kReg;
        uint8_t reg = 0;
        uint32_t addr = 0;
        uint32_t imm = 0;
        DataType type = DataType::kLong;
    };

    /** Abort disposition of the in-flight instruction. */
    enum class Abort : uint8_t {
        kNone,
        kMicroFault,  ///< MMU fault recorded in m_.pending_fault_
        kFault,       ///< roll back, dispatch fault_vec_ at inst start
        kTrap,        ///< keep side effects, dispatch at next PC
    };

    // -- instruction-stream helpers ------------------------------------
    bool Fetch8(uint8_t* out);
    bool Fetch16(uint16_t* out);
    bool Fetch32(uint32_t* out);
    bool FetchBranch8(int32_t* disp);
    bool FetchBranch16(int32_t* disp);

    // -- operand machinery ----------------------------------------------
    bool Spec(DataType type, Access access, Ref* out);
    bool ReadVal(const Ref& ref, uint32_t* out);
    bool WriteVal(const Ref& ref, uint32_t value);

    // -- flag helpers ----------------------------------------------------
    void SetNZ(uint32_t v, bool clear_c = false);
    void SetNZByte(uint8_t v);
    void SetNZWord(uint16_t v);
    uint32_t DoAdd(uint32_t a, uint32_t b);
    uint32_t DoSub(uint32_t minuend, uint32_t subtrahend);

    // -- abort helpers ----------------------------------------------------
    bool RaiseFault(ExcVector vec);
    bool RaiseTrap(ExcVector vec, uint32_t extra, unsigned nextra);

    // -- heavyweight microcode --------------------------------------------
    bool ExecSvpctx();
    bool ExecLdpctx();
    bool ExecMovc3();
    bool ExecCmpc3();
    bool ExecLocc();
    bool ExecInsque();
    bool ExecRemque();
    bool ExecCasel();
    bool ExecCalls();
    bool ExecRet();

    bool PhysRead32Traced(uint32_t pa, uint32_t* out);
    void PhysWrite32Traced(uint32_t pa, uint32_t v);

    bool Dispatch(Opcode op);

    Machine& m_;
    uint32_t inst_pc_ = 0;
    Abort abort_ = Abort::kNone;
    ExcVector fault_vec_ = ExcVector::kStray;
    uint32_t trap_extra_ = 0;
    unsigned trap_nextra_ = 0;
};

bool
Executor::Fetch8(uint8_t* out)
{
    return m_.FetchByte(out);
}

bool
Executor::Fetch16(uint16_t* out)
{
    uint8_t lo, hi;
    if (!Fetch8(&lo) || !Fetch8(&hi))
        return false;
    *out = static_cast<uint16_t>(lo | (hi << 8));
    return true;
}

bool
Executor::Fetch32(uint32_t* out)
{
    uint16_t lo, hi;
    if (!Fetch16(&lo) || !Fetch16(&hi))
        return false;
    *out = lo | (static_cast<uint32_t>(hi) << 16);
    return true;
}

bool
Executor::FetchBranch8(int32_t* disp)
{
    uint8_t b;
    if (!Fetch8(&b))
        return false;
    *disp = SignExtend(b, 8);
    return true;
}

bool
Executor::FetchBranch16(int32_t* disp)
{
    uint16_t w;
    if (!Fetch16(&w))
        return false;
    *disp = SignExtend(w, 16);
    return true;
}

bool
Executor::RaiseFault(ExcVector vec)
{
    abort_ = Abort::kFault;
    fault_vec_ = vec;
    return false;
}

bool
Executor::RaiseTrap(ExcVector vec, uint32_t extra, unsigned nextra)
{
    abort_ = Abort::kTrap;
    fault_vec_ = vec;
    trap_extra_ = extra;
    trap_nextra_ = nextra;
    return false;
}

bool
Executor::Spec(DataType type, Access access, Ref* out)
{
    m_.AddCycles(ucode::CostOf(MicroOpKind::kSpecifier));
    uint8_t spec;
    if (!Fetch8(&spec))
        return false;
    const uint8_t mode_bits = spec >> 4;
    const uint8_t reg = spec & 0xf;
    if (mode_bits >= isa::kNumAddrModes)
        return RaiseFault(ExcVector::kReservedOperand);
    const auto mode = static_cast<AddrMode>(mode_bits);
    const uint8_t size = static_cast<uint8_t>(type);

    out->type = type;
    switch (mode) {
      case AddrMode::kReg:
        if (access == Access::kAddress)
            return RaiseFault(ExcVector::kReservedOperand);
        out->kind = Ref::Kind::kReg;
        out->reg = reg;
        return true;

      case AddrMode::kRegDef:
        out->kind = Ref::Kind::kMem;
        out->addr = m_.regs_[reg];
        return true;

      case AddrMode::kAutoInc:
        if (reg == isa::kRegPc)
            return RaiseFault(ExcVector::kReservedOperand);
        out->kind = Ref::Kind::kMem;
        out->addr = m_.regs_[reg];
        m_.regs_[reg] += size;
        return true;

      case AddrMode::kAutoDec:
        if (reg == isa::kRegPc)
            return RaiseFault(ExcVector::kReservedOperand);
        m_.regs_[reg] -= size;
        out->kind = Ref::Kind::kMem;
        out->addr = m_.regs_[reg];
        return true;

      case AddrMode::kDisp8: {
        uint8_t d;
        if (!Fetch8(&d))
            return false;
        // The base register is read after the extension bytes so that
        // PC-based addressing sees the address of the next specifier.
        out->kind = Ref::Kind::kMem;
        out->addr = m_.regs_[reg] + SignExtend(d, 8);
        return true;
      }

      case AddrMode::kDisp32: {
        uint32_t d;
        if (!Fetch32(&d))
            return false;
        out->kind = Ref::Kind::kMem;
        out->addr = m_.regs_[reg] + d;
        return true;
      }

      case AddrMode::kDisp32Def: {
        uint32_t d;
        if (!Fetch32(&d))
            return false;
        const uint32_t ptr = m_.regs_[reg] + d;
        uint32_t target;
        if (!m_.MicroRead(ptr, 4, MemAccessKind::kRead, &target))
            return false;
        out->kind = Ref::Kind::kMem;
        out->addr = target;
        return true;
      }

      case AddrMode::kImm: {
        if (access != Access::kRead)
            return RaiseFault(ExcVector::kReservedOperand);
        out->kind = Ref::Kind::kImm;
        if (type == DataType::kByte) {
            uint8_t b;
            if (!Fetch8(&b))
                return false;
            out->imm = b;
        } else if (type == DataType::kWord) {
            uint16_t w;
            if (!Fetch16(&w))
                return false;
            out->imm = w;
        } else {
            if (!Fetch32(&out->imm))
                return false;
        }
        return true;
      }

      case AddrMode::kAbs: {
        uint32_t a;
        if (!Fetch32(&a))
            return false;
        out->kind = Ref::Kind::kMem;
        out->addr = a;
        return true;
      }
    }
    Panic("unreachable addressing mode");
}

bool
Executor::ReadVal(const Ref& ref, uint32_t* out)
{
    const uint8_t size = static_cast<uint8_t>(ref.type);
    switch (ref.kind) {
      case Ref::Kind::kReg:
        *out = size == 1   ? (m_.regs_[ref.reg] & 0xff)
               : size == 2 ? (m_.regs_[ref.reg] & 0xffff)
                           : m_.regs_[ref.reg];
        return true;
      case Ref::Kind::kImm:
        *out = ref.imm;
        return true;
      case Ref::Kind::kMem:
        return m_.MicroRead(ref.addr, size, MemAccessKind::kRead, out);
    }
    Panic("unreachable ref kind");
}

bool
Executor::WriteVal(const Ref& ref, uint32_t value)
{
    const uint8_t size = static_cast<uint8_t>(ref.type);
    switch (ref.kind) {
      case Ref::Kind::kReg:
        if (size == 1)
            m_.regs_[ref.reg] = (m_.regs_[ref.reg] & ~0xffu) | (value & 0xff);
        else if (size == 2)
            m_.regs_[ref.reg] =
                (m_.regs_[ref.reg] & ~0xffffu) | (value & 0xffff);
        else
            m_.set_reg(ref.reg, value);  // set_reg handles PC writes
        return true;
      case Ref::Kind::kImm:
        Panic("write to immediate operand");
      case Ref::Kind::kMem:
        return m_.MicroWrite(ref.addr, size, value);
    }
    Panic("unreachable ref kind");
}

void
Executor::SetNZ(uint32_t v, bool clear_c)
{
    m_.psl_.n = (v >> 31) != 0;
    m_.psl_.z = v == 0;
    m_.psl_.v = false;
    if (clear_c)
        m_.psl_.c = false;
}

void
Executor::SetNZByte(uint8_t v)
{
    m_.psl_.n = (v >> 7) != 0;
    m_.psl_.z = v == 0;
    m_.psl_.v = false;
}

void
Executor::SetNZWord(uint16_t v)
{
    m_.psl_.n = (v >> 15) != 0;
    m_.psl_.z = v == 0;
    m_.psl_.v = false;
}

uint32_t
Executor::DoAdd(uint32_t a, uint32_t b)
{
    const uint32_t r = a + b;
    m_.psl_.n = (r >> 31) != 0;
    m_.psl_.z = r == 0;
    m_.psl_.c = r < a;
    m_.psl_.v = (((a ^ r) & (b ^ r)) >> 31) != 0;
    return r;
}

uint32_t
Executor::DoSub(uint32_t minuend, uint32_t subtrahend)
{
    const uint32_t r = minuend - subtrahend;
    m_.psl_.n = (r >> 31) != 0;
    m_.psl_.z = r == 0;
    m_.psl_.c = minuend < subtrahend;
    m_.psl_.v = (((minuend ^ subtrahend) & (minuend ^ r)) >> 31) != 0;
    return r;
}

bool
Executor::PhysRead32Traced(uint32_t pa, uint32_t* out)
{
    if (!m_.memory_.Contains(pa, 4))
        Panic("physical context access outside memory: 0x", std::hex, pa);
    *out = m_.memory_.Read32(pa);
    m_.AddCycles(ucode::CostOf(MicroOpKind::kDRead));
    ++m_.ev_.reads;
    m_.AddCycles(m_.control_store_.FireMemAccess(
        MemAccess{pa, pa, 4, MemAccessKind::kRead, true}));
    return true;
}

void
Executor::PhysWrite32Traced(uint32_t pa, uint32_t v)
{
    if (!m_.memory_.Contains(pa, 4))
        Panic("physical context access outside memory: 0x", std::hex, pa);
    m_.memory_.Write32(pa, v);
    m_.AddCycles(ucode::CostOf(MicroOpKind::kDWrite));
    ++m_.ev_.writes;
    m_.AddCycles(m_.control_store_.FireMemAccess(
        MemAccess{pa, pa, 4, MemAccessKind::kWrite, true}));
}

bool
Executor::ExecSvpctx()
{
    // Saves r0..r13, USP, the interrupt frame (PC, PSL popped from the
    // kernel stack) and the memory-management context into the PCB.
    const uint32_t pcb = m_.pcbb_;
    for (unsigned i = 0; i <= 13; ++i)
        PhysWrite32Traced(pcb + PcbLayout::kRegs + 4 * i, m_.regs_[i]);
    PhysWrite32Traced(pcb + PcbLayout::kUsp, m_.banked_sp_[1]);

    uint32_t frame_pc, frame_psl;
    if (!m_.MicroRead(m_.regs_[isa::kRegSp], 4, MemAccessKind::kRead,
                      &frame_pc) ||
        !m_.MicroRead(m_.regs_[isa::kRegSp] + 4, 4, MemAccessKind::kRead,
                      &frame_psl)) {
        return false;
    }
    m_.regs_[isa::kRegSp] += 8;
    PhysWrite32Traced(pcb + PcbLayout::kPc, frame_pc);
    PhysWrite32Traced(pcb + PcbLayout::kPsl, frame_psl);

    const mmu::RegionRegs p0 = m_.mmu_.GetRegion(mmu::Region::kP0);
    const mmu::RegionRegs p1 = m_.mmu_.GetRegion(mmu::Region::kP1);
    PhysWrite32Traced(pcb + PcbLayout::kP0Br, p0.base);
    PhysWrite32Traced(pcb + PcbLayout::kP0Lr, p0.length);
    PhysWrite32Traced(pcb + PcbLayout::kP1Br, p1.base);
    PhysWrite32Traced(pcb + PcbLayout::kP1Lr, p1.length);
    PhysWrite32Traced(pcb + PcbLayout::kPid, m_.pid_);

    m_.AddCycles(ucode::CostOf(MicroOpKind::kCtxSave));
    return true;
}

bool
Executor::ExecLdpctx()
{
    // Loads the context saved by SVPCTX and re-arms an interrupt frame on
    // the kernel stack so the following REI resumes the new process. This
    // is the microcode routine ATUM patched to record context switches.
    const uint32_t pcb = m_.pcbb_;
    for (unsigned i = 0; i <= 13; ++i) {
        uint32_t v;
        PhysRead32Traced(pcb + PcbLayout::kRegs + 4 * i, &v);
        m_.regs_[i] = v;
    }
    uint32_t usp, frame_pc, frame_psl, p0br, p0lr, p1br, p1lr, pid;
    PhysRead32Traced(pcb + PcbLayout::kUsp, &usp);
    PhysRead32Traced(pcb + PcbLayout::kPc, &frame_pc);
    PhysRead32Traced(pcb + PcbLayout::kPsl, &frame_psl);
    PhysRead32Traced(pcb + PcbLayout::kP0Br, &p0br);
    PhysRead32Traced(pcb + PcbLayout::kP0Lr, &p0lr);
    PhysRead32Traced(pcb + PcbLayout::kP1Br, &p1br);
    PhysRead32Traced(pcb + PcbLayout::kP1Lr, &p1lr);
    PhysRead32Traced(pcb + PcbLayout::kPid, &pid);

    m_.banked_sp_[1] = usp;
    m_.mmu_.SetRegion(mmu::Region::kP0, {p0br, p0lr});
    m_.mmu_.SetRegion(mmu::Region::kP1, {p1br, p1lr});
    m_.pid_ = pid;
    m_.mmu_.tlb().FlushProcessEntries();

    if (!m_.MicroWrite(m_.regs_[isa::kRegSp] - 4, 4, frame_psl) ||
        !m_.MicroWrite(m_.regs_[isa::kRegSp] - 8, 4, frame_pc)) {
        return false;
    }
    m_.regs_[isa::kRegSp] -= 8;

    m_.AddCycles(ucode::CostOf(MicroOpKind::kCtxLoad));
    m_.AddCycles(m_.control_store_.FireContextSwitch(
        static_cast<uint16_t>(pid), pcb));
    return true;
}

bool
Executor::ExecMovc3()
{
    Ref len_ref, src_ref, dst_ref;
    if (!Spec(DataType::kLong, Access::kRead, &len_ref) ||
        !Spec(DataType::kLong, Access::kAddress, &src_ref) ||
        !Spec(DataType::kLong, Access::kAddress, &dst_ref)) {
        return false;
    }
    uint32_t len;
    if (!ReadVal(len_ref, &len))
        return false;
    if (len > kMaxMovcLen)
        return RaiseFault(ExcVector::kReservedOperand);

    const uint32_t src = src_ref.addr;
    const uint32_t dst = dst_ref.addr;
    for (uint32_t i = 0; i < len; ++i) {
        uint32_t byte;
        if (!m_.MicroRead(src + i, 1, MemAccessKind::kRead, &byte))
            return false;
        if (!m_.MicroWrite(dst + i, 1, byte))
            return false;
    }
    // Architectural result registers, as on the VAX.
    m_.regs_[0] = 0;
    m_.regs_[1] = src + len;
    m_.regs_[2] = 0;
    m_.regs_[3] = dst + len;
    m_.regs_[4] = 0;
    m_.regs_[5] = 0;
    m_.psl_.z = true;
    m_.psl_.n = false;
    m_.psl_.v = false;
    m_.psl_.c = false;
    return true;
}

bool
Executor::ExecCmpc3()
{
    Ref len_ref, s1_ref, s2_ref;
    if (!Spec(DataType::kLong, Access::kRead, &len_ref) ||
        !Spec(DataType::kLong, Access::kAddress, &s1_ref) ||
        !Spec(DataType::kLong, Access::kAddress, &s2_ref)) {
        return false;
    }
    uint32_t len;
    if (!ReadVal(len_ref, &len))
        return false;
    if (len > kMaxMovcLen)
        return RaiseFault(ExcVector::kReservedOperand);

    const uint32_t s1 = s1_ref.addr;
    const uint32_t s2 = s2_ref.addr;
    for (uint32_t i = 0; i < len; ++i) {
        uint32_t b1, b2;
        if (!m_.MicroRead(s1 + i, 1, MemAccessKind::kRead, &b1) ||
            !m_.MicroRead(s2 + i, 1, MemAccessKind::kRead, &b2)) {
            return false;
        }
        if (b1 != b2) {
            m_.psl_.n = static_cast<int8_t>(b1) < static_cast<int8_t>(b2);
            m_.psl_.z = false;
            m_.psl_.c = (b1 & 0xff) < (b2 & 0xff);
            m_.psl_.v = false;
            m_.regs_[0] = len - i;  // bytes remaining, incl. the mismatch
            m_.regs_[1] = s1 + i;
            m_.regs_[2] = 0;
            m_.regs_[3] = s2 + i;
            return true;
        }
    }
    m_.psl_.n = false;
    m_.psl_.z = true;
    m_.psl_.c = false;
    m_.psl_.v = false;
    m_.regs_[0] = 0;
    m_.regs_[1] = s1 + len;
    m_.regs_[2] = 0;
    m_.regs_[3] = s2 + len;
    return true;
}

bool
Executor::ExecLocc()
{
    Ref char_ref, len_ref, addr_ref;
    uint32_t target, len;
    if (!Spec(DataType::kByte, Access::kRead, &char_ref) ||
        !ReadVal(char_ref, &target) ||
        !Spec(DataType::kLong, Access::kRead, &len_ref) ||
        !ReadVal(len_ref, &len) ||
        !Spec(DataType::kLong, Access::kAddress, &addr_ref)) {
        return false;
    }
    if (len > kMaxMovcLen)
        return RaiseFault(ExcVector::kReservedOperand);

    const uint32_t base = addr_ref.addr;
    for (uint32_t i = 0; i < len; ++i) {
        uint32_t b;
        if (!m_.MicroRead(base + i, 1, MemAccessKind::kRead, &b))
            return false;
        if ((b & 0xff) == (target & 0xff)) {
            m_.regs_[0] = len - i;  // bytes remaining from the match
            m_.regs_[1] = base + i;
            m_.psl_.z = false;
            m_.psl_.n = false;
            m_.psl_.v = false;
            m_.psl_.c = false;
            return true;
        }
    }
    m_.regs_[0] = 0;
    m_.regs_[1] = base + len;
    m_.psl_.z = true;  // Z set when the character was not found
    m_.psl_.n = false;
    m_.psl_.v = false;
    m_.psl_.c = false;
    return true;
}

bool
Executor::ExecInsque()
{
    // Queue entries are [next][prev] longword pairs, as on the VAX.
    Ref entry_ref, pred_ref;
    if (!Spec(DataType::kLong, Access::kAddress, &entry_ref) ||
        !Spec(DataType::kLong, Access::kAddress, &pred_ref)) {
        return false;
    }
    const uint32_t e = entry_ref.addr;
    const uint32_t p = pred_ref.addr;
    uint32_t next;
    if (!m_.MicroRead(p, 4, MemAccessKind::kRead, &next))
        return false;
    if (!m_.MicroWrite(e, 4, next) || !m_.MicroWrite(e + 4, 4, p) ||
        !m_.MicroWrite(p, 4, e) || !m_.MicroWrite(next + 4, 4, e)) {
        return false;
    }
    m_.psl_.z = next == p;  // the queue was empty before the insert
    m_.psl_.n = false;
    m_.psl_.v = false;
    m_.psl_.c = false;
    return true;
}

bool
Executor::ExecRemque()
{
    Ref entry_ref, dst_ref;
    if (!Spec(DataType::kLong, Access::kAddress, &entry_ref))
        return false;
    const uint32_t e = entry_ref.addr;
    uint32_t next, prev;
    if (!m_.MicroRead(e, 4, MemAccessKind::kRead, &next) ||
        !m_.MicroRead(e + 4, 4, MemAccessKind::kRead, &prev)) {
        return false;
    }
    if (!m_.MicroWrite(prev, 4, next) || !m_.MicroWrite(next + 4, 4, prev))
        return false;
    if (!Spec(DataType::kLong, Access::kWrite, &dst_ref) ||
        !WriteVal(dst_ref, e)) {
        return false;
    }
    m_.psl_.z = next == prev;  // the queue is empty after the removal
    m_.psl_.n = false;
    m_.psl_.v = false;
    m_.psl_.c = false;
    return true;
}

bool
Executor::ExecCasel()
{
    // casel sel, base, limit -- a word displacement table follows the
    // operands in the instruction stream. Displacements are relative to
    // the table start; out-of-range selectors fall through past the table.
    Ref sel_ref, base_ref, limit_ref;
    uint32_t sel, base, limit;
    if (!Spec(DataType::kLong, Access::kRead, &sel_ref) ||
        !ReadVal(sel_ref, &sel) ||
        !Spec(DataType::kLong, Access::kRead, &base_ref) ||
        !ReadVal(base_ref, &base) ||
        !Spec(DataType::kLong, Access::kRead, &limit_ref) ||
        !ReadVal(limit_ref, &limit)) {
        return false;
    }
    const uint32_t tmp = sel - base;
    m_.psl_.n = static_cast<int32_t>(tmp) < static_cast<int32_t>(limit);
    m_.psl_.z = tmp == limit;
    m_.psl_.c = tmp < limit;
    m_.psl_.v = false;

    const uint32_t table = m_.regs_[isa::kRegPc];
    if (tmp <= limit) {
        uint32_t disp;
        if (!m_.MicroRead(table + 2 * tmp, 2, MemAccessKind::kIFetch,
                          &disp)) {
            return false;
        }
        m_.set_pc(table + static_cast<uint32_t>(SignExtend(disp, 16)));
    } else {
        m_.set_pc(table + 2 * (limit + 1));
    }
    return true;
}

bool
Executor::ExecCalls()
{
    Ref narg_ref, dst_ref;
    if (!Spec(DataType::kLong, Access::kRead, &narg_ref) ||
        !Spec(DataType::kLong, Access::kAddress, &dst_ref)) {
        return false;
    }
    uint32_t narg;
    if (!ReadVal(narg_ref, &narg))
        return false;

    uint32_t sp = m_.regs_[isa::kRegSp];
    if (!m_.MicroWrite(sp - 4, 4, m_.regs_[isa::kRegPc]) ||
        !m_.MicroWrite(sp - 8, 4, m_.regs_[isa::kRegFp]) ||
        !m_.MicroWrite(sp - 12, 4, narg)) {
        return false;
    }
    sp -= 12;
    m_.regs_[isa::kRegSp] = sp;
    m_.regs_[isa::kRegFp] = sp;
    m_.set_pc(dst_ref.addr);
    m_.AddCycles(ucode::CostOf(MicroOpKind::kCall));
    return true;
}

bool
Executor::ExecRet()
{
    uint32_t sp = m_.regs_[isa::kRegFp];
    uint32_t narg, old_fp, ret_pc;
    if (!m_.MicroRead(sp, 4, MemAccessKind::kRead, &narg) ||
        !m_.MicroRead(sp + 4, 4, MemAccessKind::kRead, &old_fp) ||
        !m_.MicroRead(sp + 8, 4, MemAccessKind::kRead, &ret_pc)) {
        return false;
    }
    sp += 12;
    sp += 4 * (narg & 0xffff);  // pop the arguments
    m_.regs_[isa::kRegSp] = sp;
    m_.regs_[isa::kRegFp] = old_fp;
    m_.set_pc(ret_pc);
    m_.AddCycles(ucode::CostOf(MicroOpKind::kCall));
    return true;
}

bool
Executor::Dispatch(Opcode op)
{
    Psl& psl = m_.psl_;
    const bool kernel = psl.cur_mode == CpuMode::kKernel;

    const isa::InstrInfo& info = isa::GetInstrInfo(op);
    if (!info.valid)
        return RaiseFault(ExcVector::kReservedInstr);
    if (info.privileged && !kernel)
        return RaiseFault(ExcVector::kPrivInstr);

    switch (op) {
      case Opcode::kHalt:
        m_.halted_ = true;
        return true;

      case Opcode::kNop:
        return true;

      case Opcode::kBpt:
        return RaiseTrap(ExcVector::kBpt, 0, 0);

      case Opcode::kRei:
        m_.DoRei();
        return true;

      case Opcode::kChmk: {
        Ref code_ref;
        uint32_t code;
        if (!Spec(DataType::kLong, Access::kRead, &code_ref) ||
            !ReadVal(code_ref, &code)) {
            return false;
        }
        return RaiseTrap(ExcVector::kChmk, code, 1);
      }

      case Opcode::kMtpr: {
        Ref src_ref, ipr_ref;
        uint32_t src, ipr;
        if (!Spec(DataType::kLong, Access::kRead, &src_ref) ||
            !ReadVal(src_ref, &src) ||
            !Spec(DataType::kLong, Access::kRead, &ipr_ref) ||
            !ReadVal(ipr_ref, &ipr)) {
            return false;
        }
        if (ipr >= static_cast<uint32_t>(isa::Ipr::kNumIprs))
            return RaiseFault(ExcVector::kReservedOperand);
        m_.WriteIpr(static_cast<isa::Ipr>(ipr), src);
        return true;
      }

      case Opcode::kMfpr: {
        Ref ipr_ref, dst_ref;
        uint32_t ipr;
        if (!Spec(DataType::kLong, Access::kRead, &ipr_ref) ||
            !ReadVal(ipr_ref, &ipr) ||
            !Spec(DataType::kLong, Access::kWrite, &dst_ref)) {
            return false;
        }
        if (ipr >= static_cast<uint32_t>(isa::Ipr::kNumIprs))
            return RaiseFault(ExcVector::kReservedOperand);
        return WriteVal(dst_ref, m_.ReadIpr(static_cast<isa::Ipr>(ipr)));
      }

      case Opcode::kSvpctx:
        return ExecSvpctx();

      case Opcode::kLdpctx:
        return ExecLdpctx();

      case Opcode::kMovl: {
        Ref s, d;
        uint32_t v;
        if (!Spec(DataType::kLong, Access::kRead, &s) || !ReadVal(s, &v) ||
            !Spec(DataType::kLong, Access::kWrite, &d) || !WriteVal(d, v))
            return false;
        SetNZ(v);
        return true;
      }

      case Opcode::kMovb: {
        Ref s, d;
        uint32_t v;
        if (!Spec(DataType::kByte, Access::kRead, &s) || !ReadVal(s, &v) ||
            !Spec(DataType::kByte, Access::kWrite, &d) || !WriteVal(d, v))
            return false;
        SetNZByte(static_cast<uint8_t>(v));
        return true;
      }

      case Opcode::kMovzbl: {
        Ref s, d;
        uint32_t v;
        if (!Spec(DataType::kByte, Access::kRead, &s) || !ReadVal(s, &v) ||
            !Spec(DataType::kLong, Access::kWrite, &d) ||
            !WriteVal(d, v & 0xff))
            return false;
        psl.n = false;
        psl.z = (v & 0xff) == 0;
        psl.v = false;
        return true;
      }

      case Opcode::kMoval: {
        Ref s, d;
        if (!Spec(DataType::kLong, Access::kAddress, &s) ||
            !Spec(DataType::kLong, Access::kWrite, &d) ||
            !WriteVal(d, s.addr))
            return false;
        SetNZ(s.addr);
        return true;
      }

      case Opcode::kPushl: {
        Ref s;
        uint32_t v;
        if (!Spec(DataType::kLong, Access::kRead, &s) || !ReadVal(s, &v))
            return false;
        const uint32_t sp = m_.regs_[isa::kRegSp] - 4;
        if (!m_.MicroWrite(sp, 4, v))
            return false;
        m_.regs_[isa::kRegSp] = sp;
        SetNZ(v);
        return true;
      }

      case Opcode::kClrl: {
        Ref d;
        if (!Spec(DataType::kLong, Access::kWrite, &d) || !WriteVal(d, 0))
            return false;
        psl.n = false;
        psl.z = true;
        psl.v = false;
        return true;
      }

      case Opcode::kClrb: {
        Ref d;
        if (!Spec(DataType::kByte, Access::kWrite, &d) || !WriteVal(d, 0))
            return false;
        psl.n = false;
        psl.z = true;
        psl.v = false;
        return true;
      }

      case Opcode::kMovw: {
        Ref s, d;
        uint32_t v;
        if (!Spec(DataType::kWord, Access::kRead, &s) || !ReadVal(s, &v) ||
            !Spec(DataType::kWord, Access::kWrite, &d) || !WriteVal(d, v))
            return false;
        SetNZWord(static_cast<uint16_t>(v));
        return true;
      }

      case Opcode::kMovzwl: {
        Ref s, d;
        uint32_t v;
        if (!Spec(DataType::kWord, Access::kRead, &s) || !ReadVal(s, &v) ||
            !Spec(DataType::kLong, Access::kWrite, &d) ||
            !WriteVal(d, v & 0xffff))
            return false;
        psl.n = false;
        psl.z = (v & 0xffff) == 0;
        psl.v = false;
        return true;
      }

      case Opcode::kCmpw: {
        Ref s1, s2;
        uint32_t a, b;
        if (!Spec(DataType::kWord, Access::kRead, &s1) || !ReadVal(s1, &a) ||
            !Spec(DataType::kWord, Access::kRead, &s2) || !ReadVal(s2, &b))
            return false;
        psl.n = static_cast<int16_t>(a) < static_cast<int16_t>(b);
        psl.z = (a & 0xffff) == (b & 0xffff);
        psl.c = (a & 0xffff) < (b & 0xffff);
        psl.v = false;
        m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        return true;
      }

      case Opcode::kTstw: {
        Ref s;
        uint32_t v;
        if (!Spec(DataType::kWord, Access::kRead, &s) || !ReadVal(s, &v))
            return false;
        SetNZWord(static_cast<uint16_t>(v));
        psl.c = false;
        return true;
      }

      case Opcode::kMnegl: {
        Ref s, d;
        uint32_t v;
        if (!Spec(DataType::kLong, Access::kRead, &s) || !ReadVal(s, &v))
            return false;
        const uint32_t r = DoSub(0, v);
        if (!Spec(DataType::kLong, Access::kWrite, &d) || !WriteVal(d, r))
            return false;
        return true;
      }

      case Opcode::kAddl2:
      case Opcode::kSubl2:
      case Opcode::kMull2:
      case Opcode::kDivl2: {
        Ref s, d;
        uint32_t a, b;
        if (!Spec(DataType::kLong, Access::kRead, &s) || !ReadVal(s, &a) ||
            !Spec(DataType::kLong, Access::kModify, &d) || !ReadVal(d, &b))
            return false;
        uint32_t r;
        if (op == Opcode::kAddl2) {
            r = DoAdd(b, a);
            m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        } else if (op == Opcode::kSubl2) {
            r = DoSub(b, a);
            m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        } else if (op == Opcode::kMull2) {
            const int64_t wide = static_cast<int64_t>(static_cast<int32_t>(a)) *
                                 static_cast<int32_t>(b);
            r = static_cast<uint32_t>(wide);
            psl.n = (r >> 31) != 0;
            psl.z = r == 0;
            psl.v = wide != static_cast<int32_t>(r);
            psl.c = false;
            m_.AddCycles(ucode::CostOf(MicroOpKind::kMulDiv));
        } else {
            if (a == 0)
                return RaiseTrap(ExcVector::kArith, 0, 0);
            if (b == 0x80000000u && a == 0xffffffffu) {
                r = b;  // overflow: quotient unrepresentable
                psl.v = true;
            } else {
                r = static_cast<uint32_t>(static_cast<int32_t>(b) /
                                          static_cast<int32_t>(a));
                psl.v = false;
            }
            psl.n = (r >> 31) != 0;
            psl.z = r == 0;
            psl.c = false;
            m_.AddCycles(ucode::CostOf(MicroOpKind::kMulDiv));
        }
        return WriteVal(d, r);
      }

      case Opcode::kAddl3:
      case Opcode::kSubl3:
      case Opcode::kMull3:
      case Opcode::kDivl3: {
        Ref s1, s2, d;
        uint32_t a, b;
        if (!Spec(DataType::kLong, Access::kRead, &s1) || !ReadVal(s1, &a) ||
            !Spec(DataType::kLong, Access::kRead, &s2) || !ReadVal(s2, &b))
            return false;
        uint32_t r;
        if (op == Opcode::kAddl3) {
            r = DoAdd(b, a);
            m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        } else if (op == Opcode::kSubl3) {
            r = DoSub(b, a);  // dif = s2 - s1, as on the VAX
            m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        } else if (op == Opcode::kMull3) {
            const int64_t wide = static_cast<int64_t>(static_cast<int32_t>(a)) *
                                 static_cast<int32_t>(b);
            r = static_cast<uint32_t>(wide);
            psl.n = (r >> 31) != 0;
            psl.z = r == 0;
            psl.v = wide != static_cast<int32_t>(r);
            psl.c = false;
            m_.AddCycles(ucode::CostOf(MicroOpKind::kMulDiv));
        } else {
            if (a == 0)
                return RaiseTrap(ExcVector::kArith, 0, 0);
            if (b == 0x80000000u && a == 0xffffffffu) {
                r = b;
                psl.v = true;
            } else {
                r = static_cast<uint32_t>(static_cast<int32_t>(b) /
                                          static_cast<int32_t>(a));
                psl.v = false;
            }
            psl.n = (r >> 31) != 0;
            psl.z = r == 0;
            psl.c = false;
            m_.AddCycles(ucode::CostOf(MicroOpKind::kMulDiv));
        }
        if (!Spec(DataType::kLong, Access::kWrite, &d) || !WriteVal(d, r))
            return false;
        return true;
      }

      case Opcode::kIncl:
      case Opcode::kDecl: {
        Ref d;
        uint32_t v;
        if (!Spec(DataType::kLong, Access::kModify, &d) || !ReadVal(d, &v))
            return false;
        const uint32_t r =
            op == Opcode::kIncl ? DoAdd(v, 1) : DoSub(v, 1);
        m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        return WriteVal(d, r);
      }

      case Opcode::kCmpl: {
        Ref s1, s2;
        uint32_t a, b;
        if (!Spec(DataType::kLong, Access::kRead, &s1) || !ReadVal(s1, &a) ||
            !Spec(DataType::kLong, Access::kRead, &s2) || !ReadVal(s2, &b))
            return false;
        psl.n = static_cast<int32_t>(a) < static_cast<int32_t>(b);
        psl.z = a == b;
        psl.c = a < b;
        psl.v = false;
        m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        return true;
      }

      case Opcode::kCmpb: {
        Ref s1, s2;
        uint32_t a, b;
        if (!Spec(DataType::kByte, Access::kRead, &s1) || !ReadVal(s1, &a) ||
            !Spec(DataType::kByte, Access::kRead, &s2) || !ReadVal(s2, &b))
            return false;
        psl.n = static_cast<int8_t>(a) < static_cast<int8_t>(b);
        psl.z = (a & 0xff) == (b & 0xff);
        psl.c = (a & 0xff) < (b & 0xff);
        psl.v = false;
        m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        return true;
      }

      case Opcode::kTstl: {
        Ref s;
        uint32_t v;
        if (!Spec(DataType::kLong, Access::kRead, &s) || !ReadVal(s, &v))
            return false;
        SetNZ(v, /*clear_c=*/true);
        return true;
      }

      case Opcode::kTstb: {
        Ref s;
        uint32_t v;
        if (!Spec(DataType::kByte, Access::kRead, &s) || !ReadVal(s, &v))
            return false;
        SetNZByte(static_cast<uint8_t>(v));
        psl.c = false;
        return true;
      }

      case Opcode::kBisl2:
      case Opcode::kBicl2:
      case Opcode::kXorl2: {
        Ref s, d;
        uint32_t mask, v;
        if (!Spec(DataType::kLong, Access::kRead, &s) || !ReadVal(s, &mask) ||
            !Spec(DataType::kLong, Access::kModify, &d) || !ReadVal(d, &v))
            return false;
        const uint32_t r = op == Opcode::kBisl2   ? (v | mask)
                           : op == Opcode::kBicl2 ? (v & ~mask)
                                                  : (v ^ mask);
        m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        if (!WriteVal(d, r))
            return false;
        psl.n = (r >> 31) != 0;
        psl.z = r == 0;
        psl.v = false;
        return true;
      }

      case Opcode::kBisl3:
      case Opcode::kBicl3:
      case Opcode::kXorl3: {
        Ref s1, s2, d;
        uint32_t mask, v;
        if (!Spec(DataType::kLong, Access::kRead, &s1) ||
            !ReadVal(s1, &mask) ||
            !Spec(DataType::kLong, Access::kRead, &s2) || !ReadVal(s2, &v))
            return false;
        const uint32_t r = op == Opcode::kBisl3   ? (v | mask)
                           : op == Opcode::kBicl3 ? (v & ~mask)
                                                  : (v ^ mask);
        m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        if (!Spec(DataType::kLong, Access::kWrite, &d) || !WriteVal(d, r))
            return false;
        psl.n = (r >> 31) != 0;
        psl.z = r == 0;
        psl.v = false;
        return true;
      }

      case Opcode::kBitl: {
        Ref s1, s2;
        uint32_t mask, v;
        if (!Spec(DataType::kLong, Access::kRead, &s1) ||
            !ReadVal(s1, &mask) ||
            !Spec(DataType::kLong, Access::kRead, &s2) || !ReadVal(s2, &v))
            return false;
        const uint32_t r = mask & v;
        psl.n = (r >> 31) != 0;
        psl.z = r == 0;
        psl.v = false;
        m_.AddCycles(ucode::CostOf(MicroOpKind::kAlu));
        return true;
      }

      case Opcode::kAshl: {
        Ref cnt_ref, src_ref, dst_ref;
        uint32_t cnt_raw, src;
        if (!Spec(DataType::kByte, Access::kRead, &cnt_ref) ||
            !ReadVal(cnt_ref, &cnt_raw) ||
            !Spec(DataType::kLong, Access::kRead, &src_ref) ||
            !ReadVal(src_ref, &src))
            return false;
        const int32_t cnt = SignExtend(cnt_raw & 0xff, 8);
        uint32_t r;
        bool overflow = false;
        if (cnt >= 0) {
            if (cnt > 31) {
                r = 0;
                overflow = src != 0;
            } else {
                const int64_t wide =
                    static_cast<int64_t>(static_cast<int32_t>(src)) << cnt;
                r = static_cast<uint32_t>(wide);
                overflow = wide != static_cast<int32_t>(r);
            }
        } else {
            const int32_t sh = -cnt;
            const int32_t s = static_cast<int32_t>(src);
            r = static_cast<uint32_t>(sh > 31 ? (s < 0 ? -1 : 0) : (s >> sh));
        }
        m_.AddCycles(ucode::CostOf(MicroOpKind::kShift));
        if (!Spec(DataType::kLong, Access::kWrite, &dst_ref) ||
            !WriteVal(dst_ref, r))
            return false;
        psl.n = (r >> 31) != 0;
        psl.z = r == 0;
        psl.v = overflow;
        psl.c = false;
        return true;
      }

      case Opcode::kBrb:
      case Opcode::kBneq:
      case Opcode::kBeql:
      case Opcode::kBgtr:
      case Opcode::kBleq:
      case Opcode::kBgeq:
      case Opcode::kBlss:
      case Opcode::kBgtru:
      case Opcode::kBlequ:
      case Opcode::kBgequ:
      case Opcode::kBlssu:
      case Opcode::kBvc:
      case Opcode::kBvs: {
        int32_t disp;
        if (!FetchBranch8(&disp))
            return false;
        bool take;
        switch (op) {
          case Opcode::kBrb:   take = true; break;
          case Opcode::kBneq:  take = !psl.z; break;
          case Opcode::kBeql:  take = psl.z; break;
          case Opcode::kBgtr:  take = !(psl.n || psl.z); break;
          case Opcode::kBleq:  take = psl.n || psl.z; break;
          case Opcode::kBgeq:  take = !psl.n; break;
          case Opcode::kBlss:  take = psl.n; break;
          case Opcode::kBgtru: take = !(psl.c || psl.z); break;
          case Opcode::kBlequ: take = psl.c || psl.z; break;
          case Opcode::kBgequ: take = !psl.c; break;
          case Opcode::kBlssu: take = psl.c; break;
          case Opcode::kBvc:   take = !psl.v; break;
          default:             take = psl.v; break;  // kBvs
        }
        if (take)
            m_.set_pc(m_.regs_[isa::kRegPc] + disp);
        return true;
      }

      case Opcode::kBrw: {
        int32_t disp;
        if (!FetchBranch16(&disp))
            return false;
        m_.set_pc(m_.regs_[isa::kRegPc] + disp);
        return true;
      }

      case Opcode::kJmp: {
        Ref d;
        if (!Spec(DataType::kLong, Access::kAddress, &d))
            return false;
        m_.set_pc(d.addr);
        return true;
      }

      case Opcode::kJsb: {
        Ref d;
        if (!Spec(DataType::kLong, Access::kAddress, &d))
            return false;
        const uint32_t sp = m_.regs_[isa::kRegSp] - 4;
        if (!m_.MicroWrite(sp, 4, m_.regs_[isa::kRegPc]))
            return false;
        m_.regs_[isa::kRegSp] = sp;
        m_.set_pc(d.addr);
        m_.AddCycles(ucode::CostOf(MicroOpKind::kCall));
        return true;
      }

      case Opcode::kRsb: {
        uint32_t ret;
        if (!m_.MicroRead(m_.regs_[isa::kRegSp], 4, MemAccessKind::kRead,
                          &ret))
            return false;
        m_.regs_[isa::kRegSp] += 4;
        m_.set_pc(ret);
        m_.AddCycles(ucode::CostOf(MicroOpKind::kCall));
        return true;
      }

      case Opcode::kSobgtr:
      case Opcode::kSobgeq: {
        Ref idx;
        uint32_t v;
        if (!Spec(DataType::kLong, Access::kModify, &idx) ||
            !ReadVal(idx, &v))
            return false;
        int32_t disp;
        if (!FetchBranch8(&disp))
            return false;
        const uint32_t r = DoSub(v, 1);
        if (!WriteVal(idx, r))
            return false;
        const bool take = op == Opcode::kSobgtr
                              ? static_cast<int32_t>(r) > 0
                              : static_cast<int32_t>(r) >= 0;
        if (take)
            m_.set_pc(m_.regs_[isa::kRegPc] + disp);
        return true;
      }

      case Opcode::kAoblss: {
        Ref limit_ref, idx;
        uint32_t limit, v;
        if (!Spec(DataType::kLong, Access::kRead, &limit_ref) ||
            !ReadVal(limit_ref, &limit) ||
            !Spec(DataType::kLong, Access::kModify, &idx) ||
            !ReadVal(idx, &v))
            return false;
        int32_t disp;
        if (!FetchBranch8(&disp))
            return false;
        const uint32_t r = DoAdd(v, 1);
        if (!WriteVal(idx, r))
            return false;
        if (static_cast<int32_t>(r) < static_cast<int32_t>(limit))
            m_.set_pc(m_.regs_[isa::kRegPc] + disp);
        return true;
      }

      case Opcode::kCalls:
        return ExecCalls();

      case Opcode::kRet:
        return ExecRet();

      case Opcode::kMovc3:
        return ExecMovc3();

      case Opcode::kCmpc3:
        return ExecCmpc3();

      case Opcode::kLocc:
        return ExecLocc();

      case Opcode::kInsque:
        return ExecInsque();

      case Opcode::kRemque:
        return ExecRemque();

      case Opcode::kCasel:
        return ExecCasel();
    }
    // GetInstrInfo(op).valid was true, so every case must be handled above.
    Panic("Dispatch: unhandled valid opcode 0x", std::hex,
          static_cast<unsigned>(op));
}

void
Executor::Run()
{
    std::memcpy(m_.journal_regs_, m_.regs_, sizeof m_.regs_);
    m_.journal_psl_ = m_.psl_;
    inst_pc_ = m_.pc();
    abort_ = Abort::kNone;

    m_.AddCycles(ucode::CostOf(MicroOpKind::kDispatch));

    uint8_t raw_op = 0;
    bool ok = Fetch8(&raw_op);
    if (ok) {
        // "Instructions" counts decode dispatches (opcode byte fetched),
        // mirroring the kDecode fire — not icount_, which also advances
        // when the initial ifetch faults before any decode happens.
        ++m_.ev_.instructions;
        m_.AddCycles(m_.control_store_.FireDecode(
            inst_pc_, raw_op, m_.psl_.cur_mode == CpuMode::kKernel));
        ok = Dispatch(static_cast<Opcode>(raw_op));
    }

    if (ok)
        return;

    if (m_.pending_fault_.active) {
        // MMU fault: restartable. Roll back and dispatch TNV/ACV with the
        // fault parameters on top of the exception frame.
        const auto fault = m_.pending_fault_;
        m_.pending_fault_.active = false;
        std::memcpy(m_.regs_, m_.journal_regs_, sizeof m_.regs_);
        m_.psl_ = m_.journal_psl_;
        m_.InvalidateIBuf();
        const ExcVector vec = fault.status == mmu::XlateStatus::kTnv
                                  ? ExcVector::kTnv
                                  : ExcVector::kAcv;
        m_.DispatchException(vec, fault.write ? 1 : 0, fault.va, 2, inst_pc_);
        return;
    }

    switch (abort_) {
      case Abort::kFault:
        std::memcpy(m_.regs_, m_.journal_regs_, sizeof m_.regs_);
        m_.psl_ = m_.journal_psl_;
        m_.InvalidateIBuf();
        m_.DispatchSimple(fault_vec_, inst_pc_);
        return;
      case Abort::kTrap:
        // Side effects stand; resume after the instruction.
        m_.DispatchException(fault_vec_, trap_extra_, 0, trap_nextra_,
                             m_.pc());
        return;
      case Abort::kMicroFault:
      case Abort::kNone:
        break;
    }
    Panic("executor aborted without a recorded cause");
}

void
Machine::ExecuteInstruction()
{
    Executor ex(*this);
    ex.Run();
    // Faulted executions count as steps too, so Run() always terminates
    // and the interval timer keeps advancing even in fault storms.
    ++icount_;
}

}  // namespace atum::cpu
