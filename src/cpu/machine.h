#ifndef ATUM_CPU_MACHINE_H_
#define ATUM_CPU_MACHINE_H_

/**
 * @file
 * The VCX-32 machine: CPU state, the microcoded execution loop, exception
 * and interrupt machinery, and the devices (interval timer, console).
 *
 * The machine executes every architectural memory reference through
 * MicroRead/MicroWrite, which (a) translate through the MMU, (b) report
 * the reference to the control store's kMemAccess patch point, and
 * (c) account micro-cycles. This is the structural analogue of the
 * VAX 8200's microcode that ATUM patched.
 *
 * Faulting instructions are restartable: general-register state is
 * journaled at instruction start and rolled back before the exception is
 * dispatched, so demand paging works for any instruction, including the
 * multi-reference string ops.
 */

#include <cstdint>
#include <string>

#include "cpu/event_counters.h"
#include "isa/isa.h"
#include "mem/physical_memory.h"
#include "mmu/mmu.h"
#include "ucode/control_store.h"
#include "util/serialize.h"
#include "util/status.h"

namespace atum::obs {
class Registry;
class PhaseProfiler;
}

namespace atum::cpu {

/** CPU privilege modes. */
enum class CpuMode : uint8_t { kKernel = 0, kUser = 1 };

/** SCB exception/interrupt vector indices. */
enum class ExcVector : uint8_t {
    kStray = 0,
    kMachineCheck = 1,
    kReservedInstr = 2,   ///< unassigned opcode
    kReservedOperand = 3, ///< illegal addressing-mode use
    kPrivInstr = 4,       ///< privileged instruction in user mode
    kAcv = 5,             ///< access violation (+va, +reason frame)
    kTnv = 6,             ///< translation not valid / page fault (+va, +reason)
    kArith = 7,           ///< divide by zero, overflow traps
    kBpt = 8,
    kChmk = 9,            ///< system call (+code frame)
    kTimer = 10,          ///< interval timer interrupt
    kSoftware = 11,       ///< SIRR-requested software interrupt
    kDmaDone = 12,        ///< DMA transfer-complete interrupt
    kNumVectors = 16,
};

/** Processor status longword. */
struct Psl {
    bool c = false;
    bool v = false;
    bool z = false;
    bool n = false;
    uint8_t ipl = 0;  ///< interrupt priority level, 0..31
    CpuMode cur_mode = CpuMode::kKernel;
    CpuMode prev_mode = CpuMode::kKernel;

    uint32_t ToWord() const;
    static Psl FromWord(uint32_t w);
};

/** Interval-timer interrupt priority level. */
inline constexpr uint8_t kTimerIpl = 20;
/** Software-interrupt priority level. */
inline constexpr uint8_t kSoftwareIpl = 4;
/** DMA-completion interrupt priority level (a device, above the clock). */
inline constexpr uint8_t kDmaIpl = 21;

/**
 * Process control block layout (physical memory, PCBB-addressed), used by
 * SVPCTX/LDPCTX microcode. Offsets in bytes.
 */
struct PcbLayout {
    static constexpr uint32_t kRegs = 0;    ///< r0..r13, 14 longwords
    static constexpr uint32_t kUsp = 56;
    static constexpr uint32_t kPc = 60;
    static constexpr uint32_t kPsl = 64;
    static constexpr uint32_t kP0Br = 68;
    static constexpr uint32_t kP0Lr = 72;
    static constexpr uint32_t kP1Br = 76;
    static constexpr uint32_t kP1Lr = 80;
    static constexpr uint32_t kPid = 84;
    static constexpr uint32_t kSize = 88;
};

/** Complete restorable machine state (see Machine::SaveSnapshot). */
struct MachineSnapshot {
    std::vector<uint8_t> memory;
    uint32_t regs[isa::kNumRegs];
    Psl psl;
    uint32_t banked_sp[2];
    uint32_t scbb, pcbb, pid, iccs, icr_reload, icr_count;
    bool timer_pending, software_pending, halted;
    uint64_t icount, ucycles;
    bool mapen;
    mmu::RegionRegs regions[3];
    std::string console_output;
    EventCounters ev;
    uint32_t dma_src, dma_dst, dma_len, dma_delay;
    bool dma_pending;
};

class Machine
{
  public:
    struct Config {
        uint32_t mem_bytes = 4u << 20;
        unsigned tlb_sets = 32;
        unsigned tlb_ways = 2;
        uint32_t timer_reload = 5000;  ///< instructions per timer tick
    };

    explicit Machine(const Config& config);

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    PhysicalMemory& memory() { return memory_; }
    mmu::Mmu& mmu() { return mmu_; }
    ucode::ControlStore& control_store() { return control_store_; }

    /** General register access (r15 is the PC). */
    uint32_t reg(unsigned n) const;
    void set_reg(unsigned n, uint32_t v);
    uint32_t pc() const { return regs_[isa::kRegPc]; }
    void set_pc(uint32_t pc);

    Psl& psl() { return psl_; }
    const Psl& psl() const { return psl_; }

    /** Processor-register access, as MTPR/MFPR perform it. */
    uint32_t ReadIpr(isa::Ipr ipr);
    void WriteIpr(isa::Ipr ipr, uint32_t v);

    /** Why Run() returned. */
    enum class StopReason { kHalted, kInstrLimit };

    struct RunResult {
        StopReason reason;
        uint64_t instructions;  ///< executed during this Run call
    };

    /** Executes until HALT or `max_instructions` are retired. */
    RunResult Run(uint64_t max_instructions);

    /** Executes one instruction (or takes one pending interrupt). */
    void StepOne();

    bool halted() const { return halted_; }
    /** Clears the halted latch so execution can be resumed by tests. */
    void ClearHalt() { halted_ = false; }

    uint64_t icount() const { return icount_; }
    uint64_t ucycles() const { return ucycles_; }
    /**
     * Hardware-style event counters, maintained independently of any
     * tracer patch (see cpu/event_counters.h and docs/COUNTERS.md).
     */
    const EventCounters& event_counters() const { return ev_; }
    /** Exception/interrupt dispatches performed so far. */
    uint64_t exceptions_dispatched() const { return exceptions_; }
    /** Instruction prefetch-buffer refills (one aligned longword each). */
    uint64_t ibuf_refills() const { return ibuf_refills_; }

    /**
     * Publishes the machine's internal tallies (instructions, ucycles,
     * exceptions, prefetch refills, TB and page-walk traffic) into `reg`
     * as `cpu.*` / `mmu.*` counters. The tallies themselves are plain
     * members updated on the interpreter hot path for free; publishing
     * copies them out at snapshot boundaries (docs/METRICS.md).
     */
    void PublishMetrics(obs::Registry& reg) const;

    /**
     * Attaches the sampling phase profiler (obs/spans.h) driven by the
     * supervised run loop. While the profiler has a sampled window open,
     * Translate/MicroRead/MicroWrite attribute their time to the
     * translate/memory/tracer phases; outside a window (and with no
     * profiler, the default) the hot path pays one pointer test.
     */
    void SetPhaseProfiler(obs::PhaseProfiler* profiler)
    {
        profiler_ = profiler;
    }

    /**
     * Captures the complete architectural state (including a copy of
     * physical memory). The TB is not saved; RestoreSnapshot flushes it,
     * which is architecturally invisible (it only re-walks page tables).
     */
    MachineSnapshot SaveSnapshot() const;
    /** Restores state saved on this machine (same memory size). */
    void RestoreSnapshot(const MachineSnapshot& snapshot);

    /**
     * Serializes the *complete* machine — architectural state, physical
     * memory, MMU registers, and, unlike SaveSnapshot, the exact
     * microarchitectural state too: TB contents and the instruction
     * prefetch buffer. A restored machine re-executes the identical
     * micro-event stream (ifetches, TB misses, PTE walks), which the
     * checkpoint/resume subsystem needs for byte-identical traces.
     * Must be called at an instruction boundary (between StepOne calls).
     */
    util::Status Save(util::StateWriter& w) const;
    /**
     * Restores state saved by Save into a machine built with the same
     * Config. Mismatches (memory size, TB geometry) and truncation are
     * reported as a Status — a corrupt checkpoint never crashes.
     */
    util::Status Restore(util::StateReader& r);

    /** Bytes written to the console via the ConsTx processor register. */
    const std::string& console_output() const { return console_output_; }

    /**
     * Reports whether the last completed StepOne dispatched an exception
     * or interrupt (used by tests).
     */
    bool LastStepFaulted() const { return last_step_faulted_; }

  private:
    // --- implemented in machine.cc ---
    void AddCycles(uint32_t c) { ucycles_ += c; }
    uint32_t BankedSpSlot(CpuMode mode_of_slot) const;

    // Micro-level memory access. Returns false when a fault was recorded
    // in pending_fault_ (the caller aborts the instruction).
    bool Translate(uint32_t va, bool write, uint32_t* pa);
    bool MicroRead(uint32_t va, uint8_t size, ucode::MemAccessKind kind,
                   uint32_t* out);
    bool MicroWrite(uint32_t va, uint8_t size, uint32_t value);

    // Instruction-stream byte fetch through the prefetch buffer.
    bool FetchByte(uint8_t* out);
    void InvalidateIBuf() { ibuf_valid_ = false; }

    // DMA engine: copies immediately (the memory image is consistent at
    // once), then raises the completion interrupt after a transfer-sized
    // number of retired instructions, so completion lands at a
    // deterministic point in the instruction stream.
    void StartDma();

    // --- implemented in exceptions.cc ---
    void DispatchException(ExcVector vector, uint32_t extra0, uint32_t extra1,
                           unsigned num_extra, uint32_t restart_pc);
    void DispatchSimple(ExcVector vector, uint32_t restart_pc);
    bool CheckInterrupts();
    void DoRei();
    void SwitchMode(CpuMode new_mode);
    void PushKernel(uint32_t value);  ///< push during dispatch; double fault panics

    // --- implemented in executor.cc ---
    void ExecuteInstruction();

    friend class Executor;        ///< the instruction executor (executor.cc)
    friend class ExecutorAccess;  ///< test-only backdoor

    PhysicalMemory memory_;
    ucode::ControlStore control_store_;
    mmu::Mmu mmu_;

    uint32_t regs_[isa::kNumRegs] = {};
    Psl psl_;
    uint32_t banked_sp_[2] = {};  ///< [kernel, user] inactive stack pointers

    // Processor registers not owned by the MMU.
    uint32_t scbb_ = 0;
    uint32_t pcbb_ = 0;
    uint32_t pid_ = 0;
    uint32_t iccs_ = 0;
    uint32_t icr_reload_;
    uint32_t icr_count_;

    bool timer_pending_ = false;
    bool software_pending_ = false;

    // DMA engine registers and completion countdown (in instructions).
    uint32_t dma_src_ = 0;
    uint32_t dma_dst_ = 0;
    uint32_t dma_len_ = 0;
    uint32_t dma_delay_ = 0;
    bool dma_pending_ = false;

    bool halted_ = false;
    uint64_t icount_ = 0;
    uint64_t ucycles_ = 0;
    // Hardware event counters: checkpointed, so crosscheck intervals stay
    // valid across resume (docs/COUNTERS.md).
    EventCounters ev_;
    // Observability tallies (not checkpointed: metrics restart at zero on
    // resume, by design).
    uint64_t exceptions_ = 0;
    uint64_t ibuf_refills_ = 0;
    bool last_step_faulted_ = false;
    obs::PhaseProfiler* profiler_ = nullptr;

    // Pending fault set by MicroRead/MicroWrite.
    struct PendingFault {
        bool active = false;
        mmu::XlateStatus status = mmu::XlateStatus::kOk;
        uint32_t va = 0;
        bool write = false;
    } pending_fault_;

    // Instruction prefetch buffer: one aligned longword.
    bool ibuf_valid_ = false;
    uint32_t ibuf_va_ = 0;
    uint8_t ibuf_bytes_[4] = {};

    // Journal for instruction restart.
    uint32_t journal_regs_[isa::kNumRegs] = {};
    Psl journal_psl_;

    std::string console_output_;
};

}  // namespace atum::cpu

#endif  // ATUM_CPU_MACHINE_H_
