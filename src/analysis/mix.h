#ifndef ATUM_ANALYSIS_MIX_H_
#define ATUM_ANALYSIS_MIX_H_

/**
 * @file
 * Footprint analysis: distinct pages touched, split by mode and process —
 * the "how much memory does a full-system workload really cover" numbers
 * that user-only traces understated.
 */

#include <cstdint>
#include <map>
#include <set>

#include "trace/record.h"
#include "trace/sink.h"

namespace atum::analysis {

class FootprintAnalyzer
{
  public:
    void Feed(const trace::Record& record);
    void DriveAll(trace::TraceSource& source);

    uint64_t total_pages() const { return all_pages_.size(); }
    uint64_t kernel_pages() const { return kernel_pages_.size(); }
    uint64_t user_pages() const { return user_pages_.size(); }
    /** Distinct user pages per pid (kernel references excluded). */
    const std::map<uint16_t, std::set<uint32_t>>& per_pid() const
    {
        return per_pid_pages_;
    }

  private:
    std::set<uint32_t> all_pages_;
    std::set<uint32_t> kernel_pages_;
    std::set<uint32_t> user_pages_;
    std::map<uint16_t, std::set<uint32_t>> per_pid_pages_;
    uint16_t current_pid_ = 0;
};

}  // namespace atum::analysis

#endif  // ATUM_ANALYSIS_MIX_H_
