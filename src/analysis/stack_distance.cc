#include "analysis/stack_distance.h"

#include "util/logging.h"

namespace atum::analysis {

StackDistanceAnalyzer::StackDistanceAnalyzer(unsigned block_shift)
    : block_shift_(block_shift)
{
    if (block_shift > 16)
        Fatal("block_shift too large: ", block_shift);
    bit_.assign(2, 0);  // index 0 unused (1-based Fenwick tree)
    mark_.assign(2, 0);
}

void
StackDistanceAnalyzer::EnsureCapacity()
{
    if (time_ < bit_.size())
        return;
    // A Fenwick tree cannot simply be extended (its implicit range nodes
    // would miss earlier counts), so rebuild from the mark array. Each
    // doubling costs O(n log n); amortized O(log n) per access.
    size_t n = bit_.size();
    while (n <= time_)
        n *= 2;
    mark_.resize(n, 0);
    bit_.assign(n, 0);
    for (size_t pos = 1; pos < mark_.size(); ++pos) {
        if (mark_[pos])
            BitAdd(pos, +1);
    }
}

void
StackDistanceAnalyzer::BitAdd(size_t pos, int delta)
{
    for (; pos < bit_.size(); pos += pos & (~pos + 1))
        bit_[pos] += delta;
}

uint64_t
StackDistanceAnalyzer::BitSumFrom(size_t pos) const
{
    // Prefix sum 1..pos.
    int64_t sum = 0;
    for (; pos > 0; pos -= pos & (~pos + 1))
        sum += bit_[pos];
    return static_cast<uint64_t>(sum);
}

void
StackDistanceAnalyzer::TouchBlock(uint32_t block)
{
    ++time_;
    EnsureCapacity();

    auto [it, inserted] = last_pos_.try_emplace(block, time_);
    if (inserted) {
        ++cold_misses_;
    } else {
        const uint64_t prev = it->second;
        // Distinct blocks touched after `prev`: marks in (prev, time-1].
        const uint64_t distance =
            BitSumFrom(time_ - 1) - BitSumFrom(prev);
        if (distance >= distance_counts_.size())
            distance_counts_.resize(distance + 1, 0);
        ++distance_counts_[distance];
        BitAdd(prev, -1);
        mark_[prev] = 0;
        it->second = time_;
    }
    BitAdd(time_, +1);
    mark_[time_] = 1;
}

void
StackDistanceAnalyzer::Feed(const trace::Record& record)
{
    if (record.IsMemory() && record.type != trace::RecordType::kPte)
        TouchBlock(record.addr >> block_shift_);
}

void
StackDistanceAnalyzer::DriveAll(trace::TraceSource& source)
{
    while (auto r = source.Next())
        Feed(*r);
}

uint64_t
StackDistanceAnalyzer::MissesForCapacity(uint64_t capacity_blocks) const
{
    if (capacity_blocks == 0)
        Fatal("capacity must be nonzero");
    uint64_t misses = cold_misses_;
    for (uint64_t d = capacity_blocks; d < distance_counts_.size(); ++d)
        misses += distance_counts_[d];
    return misses;
}

double
StackDistanceAnalyzer::MissRateForCapacity(uint64_t capacity_blocks) const
{
    return time_ == 0 ? 0.0
                      : static_cast<double>(
                            MissesForCapacity(capacity_blocks)) /
                            static_cast<double>(time_);
}

uint64_t
StackDistanceAnalyzer::DistanceCount(uint64_t d) const
{
    return d < distance_counts_.size() ? distance_counts_[d] : 0;
}

}  // namespace atum::analysis
