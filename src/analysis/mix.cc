#include "analysis/mix.h"

#include "analysis/working_set.h"

namespace atum::analysis {

using trace::Record;
using trace::RecordType;

void
FootprintAnalyzer::Feed(const Record& record)
{
    if (record.type == RecordType::kCtxSwitch) {
        current_pid_ = record.info;
        return;
    }
    if (!record.IsMemory() || record.type == RecordType::kPte)
        return;
    const uint32_t page = PageOf(record);
    all_pages_.insert(page);
    if (record.kernel()) {
        kernel_pages_.insert(page);
    } else {
        user_pages_.insert(page);
        per_pid_pages_[current_pid_].insert(page);
    }
}

void
FootprintAnalyzer::DriveAll(trace::TraceSource& source)
{
    while (auto r = source.Next())
        Feed(*r);
}

}  // namespace atum::analysis
