#include "analysis/parallel_profiles.h"

#include <map>

#include "analysis/stack_distance.h"
#include "replay/thread_pool.h"

namespace atum::analysis {

using trace::Record;
using trace::RecordType;

std::vector<ProcessProfile>
PerProcessStackProfiles(const std::vector<Record>& records,
                        const ProcessProfileOptions& options, unsigned jobs)
{
    // Serial split: per-pid block substreams, in trace order. PTE refs
    // carry physical addresses and are excluded, as everywhere else.
    std::map<uint16_t, std::vector<uint32_t>> substreams;
    uint16_t current_pid = 0;
    for (const Record& r : records) {
        if (r.type == RecordType::kCtxSwitch) {
            current_pid = r.info;
            continue;
        }
        if (!r.IsMemory() || r.type == RecordType::kPte)
            continue;
        if (r.kernel() && !options.include_kernel)
            continue;
        const uint16_t pid = r.kernel() ? 0 : current_pid;
        substreams[pid].push_back(r.addr >> options.block_shift);
    }

    std::vector<ProcessProfile> profiles(substreams.size());
    replay::ThreadPool pool(jobs);
    std::size_t slot = 0;
    for (const auto& [pid, blocks] : substreams) {
        ProcessProfile* out = &profiles[slot++];
        out->pid = pid;
        const std::vector<uint32_t>* stream = &blocks;
        pool.Submit([out, stream, &options] {
            StackDistanceAnalyzer sd(0);  // stream is already blocks
            for (uint32_t block : *stream)
                sd.TouchBlock(block);
            out->accesses = sd.total_accesses();
            out->cold_misses = sd.cold_misses();
            out->distinct_blocks = sd.distinct_blocks();
            out->misses_at_capacity.reserve(options.capacities.size());
            for (uint64_t capacity : options.capacities)
                out->misses_at_capacity.push_back(
                    sd.MissesForCapacity(capacity));
        });
    }
    pool.Wait();
    return profiles;
}

}  // namespace atum::analysis
