#include "analysis/working_set.h"

#include <algorithm>

#include "mem/physical_memory.h"
#include "util/logging.h"

namespace atum::analysis {

uint32_t
PageOf(const trace::Record& record)
{
    return record.addr >> kPageShift;
}

WorkingSetAnalyzer::WorkingSetAnalyzer(std::vector<uint64_t> windows)
    : windows_(std::move(windows)), min_sums_(windows_.size(), 0)
{
    if (windows_.empty())
        Fatal("WorkingSetAnalyzer needs at least one window");
    for (uint64_t w : windows_)
        if (w == 0)
            Fatal("working-set windows must be nonzero");
}

void
WorkingSetAnalyzer::Touch(uint32_t page)
{
    ++time_;
    auto [it, inserted] = last_access_.try_emplace(page, time_);
    if (inserted) {
        // First access: the page was absent for arbitrarily long before.
        for (size_t i = 0; i < windows_.size(); ++i)
            min_sums_[i] += windows_[i];
    } else {
        const uint64_t gap = time_ - it->second;
        for (size_t i = 0; i < windows_.size(); ++i)
            min_sums_[i] += std::min(gap, windows_[i]);
        it->second = time_;
    }
}

void
WorkingSetAnalyzer::Feed(const trace::Record& record)
{
    if (record.IsMemory() && record.type != trace::RecordType::kPte)
        Touch(PageOf(record));
}

void
WorkingSetAnalyzer::DriveAll(trace::TraceSource& source)
{
    while (auto r = source.Next())
        Feed(*r);
}

double
WorkingSetAnalyzer::AverageWorkingSet(size_t i) const
{
    if (i >= windows_.size())
        Panic("window index out of range");
    if (time_ == 0)
        return 0.0;
    return static_cast<double>(min_sums_[i]) / static_cast<double>(time_);
}

}  // namespace atum::analysis
