#include "analysis/compare.h"

#include "trace/sink.h"

namespace atum::analysis {

using cache::Cache;
using cache::CacheConfig;
using cache::DriverOptions;
using cache::TraceCacheDriver;

cache::CacheStats
SimulateCache(const std::vector<trace::Record>& records,
              const CacheConfig& config, const DriverOptions& options)
{
    Cache c(config);
    TraceCacheDriver driver(c, options);
    for (const trace::Record& r : records)
        driver.Feed(r);
    return c.stats();
}

std::vector<SweepPoint>
SweepCacheSize(const std::vector<trace::Record>& records,
               const std::vector<uint32_t>& sizes, CacheConfig base,
               const DriverOptions& options)
{
    std::vector<SweepPoint> out;
    for (uint32_t size : sizes) {
        base.size_bytes = size;
        const auto stats = SimulateCache(records, base, options);
        out.push_back({size, stats.MissRate(), stats.accesses});
    }
    return out;
}

std::vector<SweepPoint>
SweepBlockSize(const std::vector<trace::Record>& records,
               const std::vector<uint32_t>& blocks, CacheConfig base,
               const DriverOptions& options)
{
    std::vector<SweepPoint> out;
    for (uint32_t block : blocks) {
        base.block_bytes = block;
        const auto stats = SimulateCache(records, base, options);
        out.push_back({block, stats.MissRate(), stats.accesses});
    }
    return out;
}

std::vector<SweepPoint>
SweepAssociativity(const std::vector<trace::Record>& records,
                   const std::vector<uint32_t>& assocs, CacheConfig base,
                   const DriverOptions& options)
{
    std::vector<SweepPoint> out;
    for (uint32_t assoc : assocs) {
        base.assoc = assoc;
        const auto stats = SimulateCache(records, base, options);
        out.push_back({assoc, stats.MissRate(), stats.accesses});
    }
    return out;
}

SampledStats
SetSampledMissRate(const std::vector<trace::Record>& records,
                   const CacheConfig& config, const DriverOptions& options,
                   unsigned sample_shift)
{
    Cache c(config);
    const uint32_t sets = c.num_sets();
    const uint32_t sample_mask = (1u << sample_shift) - 1;
    const unsigned block_shift = [&] {
        unsigned s = 0;
        while ((1u << s) < config.block_bytes)
            ++s;
        return s;
    }();

    uint16_t pid = 0;
    SampledStats stats;
    for (const trace::Record& r : records) {
        if (r.type == trace::RecordType::kCtxSwitch) {
            pid = r.info;
            if (options.flush_on_switch)
                c.Flush();
            continue;
        }
        if (!r.IsMemory() || r.type == trace::RecordType::kPte)
            continue;
        if (r.kernel() && !options.include_kernel)
            continue;
        if (r.type == trace::RecordType::kIFetch && !options.include_ifetch)
            continue;
        const uint32_t set = (r.addr >> block_shift) & (sets - 1);
        // Hash-select sets: alignment-free sampling (see header).
        const uint32_t pick = (set * 2654435761u) >> 16;
        if ((pick & sample_mask) != 0)
            continue;  // not a sampled set
        ++stats.sampled_accesses;
        if (!c.Access(r.addr, r.type == trace::RecordType::kWrite,
                      r.kernel() ? 0 : pid)) {
            ++stats.sampled_misses;
        }
    }
    return stats;
}

}  // namespace atum::analysis
