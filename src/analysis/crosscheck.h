#ifndef ATUM_ANALYSIS_CROSSCHECK_H_
#define ATUM_ANALYSIS_CROSSCHECK_H_

/**
 * @file
 * Trace-vs-hardware-counter cross-validation.
 *
 * The machine maintains event counters (cpu/event_counters.h) on a code
 * path entirely separate from the microcode tracer: the counters tick at
 * the control-store patch points, the tracer serializes records through
 * its own ring buffer, compressor and container writer. If both agree at
 * the end of a run, a whole family of capture bugs (dropped records,
 * double emission, mislabeled access kinds, loss accounting errors) is
 * ruled out. This module re-derives every counter from a decoded ATF2
 * record stream and compares.
 *
 * Loss markers (RecordType::kLoss) make the derivation interval-valued:
 * a marker says "`addr` records vanished here" but not which types they
 * were, so each derived count widens from an exact value to
 * [derived, derived + total_lost]. A salvaged prefix of a torn trace
 * (CrosscheckOptions::prefix) additionally has an unbounded upper end:
 * the file simply stops, so the stream is only a lower bound.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "cpu/event_counters.h"
#include "io/vfs.h"
#include "trace/record.h"
#include "util/status.h"

namespace atum::analysis {

/** Inclusive bound on a counter derived from an imperfect stream. */
struct CounterInterval {
    uint64_t lo = 0;
    uint64_t hi = 0;
    bool unbounded = false;  ///< prefix trace: no meaningful upper end

    bool Contains(uint64_t v) const
    {
        return v >= lo && (unbounded || v <= hi);
    }
};

struct CrosscheckOptions {
    /**
     * The record stream is a salvaged prefix (e.g. from `atum-report
     * --salvage` after a torn-final-block crash): derived counts are
     * lower bounds only.
     */
    bool prefix = false;
};

/** One counter's verdict: the machine's value vs the trace's interval. */
struct CounterCheck {
    std::string name;        ///< EventCounters field name
    uint64_t actual = 0;     ///< from the machine / run manifest
    CounterInterval derived; ///< from the record stream
    bool checked = true;     ///< false: underivable from this stream
    bool ok = true;

    std::string ToString() const;
};

struct CrosscheckReport {
    std::vector<CounterCheck> checks;
    uint64_t records = 0;  ///< stream length, loss markers included
    uint64_t lost = 0;     ///< total records covered by loss markers

    bool passed() const
    {
        for (const CounterCheck& c : checks)
            if (!c.ok)
                return false;
        return true;
    }

    /** Per-counter table plus a PASS/FAIL verdict line. */
    std::string ToString() const;
};

/**
 * Re-derives every event counter from `records` and compares against
 * `actual`. `instructions` is only checked when the stream carries
 * opcode markers (capture with --record-opcodes); otherwise that row is
 * reported with checked=false and never fails.
 */
CrosscheckReport Crosscheck(const std::vector<trace::Record>& records,
                            const cpu::EventCounters& actual,
                            const CrosscheckOptions& options = {});

/**
 * Reads the `cpu.ev.*` final counters out of a capture's run manifest
 * (`<trace>.run.json`, schema atum-run-v1). Missing keys read as zero;
 * a manifest with no cpu.ev.* counters at all is an error.
 */
util::StatusOr<cpu::EventCounters> ReadCountersFromManifest(
    const std::string& path, io::Vfs& vfs = io::RealVfs());

}  // namespace atum::analysis

#endif  // ATUM_ANALYSIS_CROSSCHECK_H_
