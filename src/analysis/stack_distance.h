#ifndef ATUM_ANALYSIS_STACK_DISTANCE_H_
#define ATUM_ANALYSIS_STACK_DISTANCE_H_

/**
 * @file
 * One-pass LRU stack-distance analysis (Mattson et al. 1970), the classic
 * companion to trace-driven cache studies: a single pass over the trace
 * yields the exact miss count of a fully-associative LRU cache of *every*
 * capacity simultaneously.
 *
 * The stack distance of an access is the number of distinct blocks touched
 * since the previous access to the same block (infinite for first
 * touches). A fully-associative LRU cache of capacity C misses exactly on
 * accesses with distance >= C, plus all cold first touches.
 *
 * Implementation: Fenwick tree over access timestamps — O(N log N) time,
 * O(N + B) space for N accesses and B distinct blocks.
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.h"
#include "trace/sink.h"

namespace atum::analysis {

class StackDistanceAnalyzer
{
  public:
    /** `block_shift` converts addresses to blocks (e.g. 4 = 16B blocks). */
    explicit StackDistanceAnalyzer(unsigned block_shift = 4);

    /** Processes one block access. */
    void TouchBlock(uint32_t block);

    /** Processes a memory record's address (markers/PTE refs skipped). */
    void Feed(const trace::Record& record);
    void DriveAll(trace::TraceSource& source);

    uint64_t total_accesses() const { return time_; }
    uint64_t cold_misses() const { return cold_misses_; }
    uint64_t distinct_blocks() const { return last_pos_.size(); }

    /**
     * Exact miss count of a fully-associative LRU cache holding
     * `capacity_blocks` blocks (> 0).
     */
    uint64_t MissesForCapacity(uint64_t capacity_blocks) const;
    double MissRateForCapacity(uint64_t capacity_blocks) const;

    /** Count of accesses with finite stack distance exactly d. */
    uint64_t DistanceCount(uint64_t d) const;

  private:
    void BitAdd(size_t pos, int delta);
    uint64_t BitSumFrom(size_t pos) const;  // sum of (pos, end]

    void EnsureCapacity();

    unsigned block_shift_;
    std::vector<int32_t> bit_;   ///< Fenwick tree over timestamps
    std::vector<uint8_t> mark_;  ///< which timestamps hold a block's
                                 ///< most-recent access (rebuild source)
    std::unordered_map<uint32_t, uint64_t> last_pos_;
    std::vector<uint64_t> distance_counts_;
    uint64_t time_ = 0;
    uint64_t cold_misses_ = 0;
};

}  // namespace atum::analysis

#endif  // ATUM_ANALYSIS_STACK_DISTANCE_H_
