#ifndef ATUM_ANALYSIS_COMPARE_H_
#define ATUM_ANALYSIS_COMPARE_H_

/**
 * @file
 * Shared experiment plumbing: run a captured record stream through cache
 * configurations and report miss rates. Used by the benchmark harnesses
 * for the full-system vs user-only comparisons.
 */

#include <cstdint>
#include <vector>

#include "cache/cache.h"
#include "cache/trace_driver.h"
#include "trace/record.h"

namespace atum::analysis {

/** Simulates `records` through one cache; returns the final statistics. */
cache::CacheStats SimulateCache(const std::vector<trace::Record>& records,
                                const cache::CacheConfig& config,
                                const cache::DriverOptions& options);

/** One sweep point: a configuration and its resulting miss rate. */
struct SweepPoint {
    uint32_t param = 0;  ///< the swept value (size, block, assoc, ...)
    double miss_rate = 0.0;
    uint64_t accesses = 0;
};

/** Sweeps cache size (bytes) with other parameters fixed. */
std::vector<SweepPoint> SweepCacheSize(
    const std::vector<trace::Record>& records,
    const std::vector<uint32_t>& sizes, cache::CacheConfig base,
    const cache::DriverOptions& options);

/** Sweeps block size (bytes) with other parameters fixed. */
std::vector<SweepPoint> SweepBlockSize(
    const std::vector<trace::Record>& records,
    const std::vector<uint32_t>& blocks, cache::CacheConfig base,
    const cache::DriverOptions& options);

/** Sweeps associativity with other parameters fixed. */
std::vector<SweepPoint> SweepAssociativity(
    const std::vector<trace::Record>& records,
    const std::vector<uint32_t>& assocs, cache::CacheConfig base,
    const cache::DriverOptions& options);

/** Result of a set-sampled simulation (see SetSampledMissRate). */
struct SampledStats {
    uint64_t sampled_accesses = 0;
    uint64_t sampled_misses = 0;
    double MissRate() const
    {
        return sampled_accesses == 0
                   ? 0.0
                   : static_cast<double>(sampled_misses) /
                         static_cast<double>(sampled_accesses);
    }
};

/**
 * Set sampling: simulates only a 1/2^`sample_shift` subset of the cache
 * sets, the classic cost reducer for big-trace cache studies. Sets do not
 * interact, so results for the sampled sets are exact; estimate error
 * comes purely from which sets are chosen. Selection hashes the set
 * index (Fibonacci multiplier) — naive "set % 2^k == 0" selection is
 * badly skewed by page-aligned kernel structures, a pitfall the sampling
 * literature documented.
 */
SampledStats SetSampledMissRate(const std::vector<trace::Record>& records,
                                const cache::CacheConfig& config,
                                const cache::DriverOptions& options,
                                unsigned sample_shift);

}  // namespace atum::analysis

#endif  // ATUM_ANALYSIS_COMPARE_H_
