#ifndef ATUM_ANALYSIS_PARALLEL_PROFILES_H_
#define ATUM_ANALYSIS_PARALLEL_PROFILES_H_

/**
 * @file
 * Per-process stack-distance profiles, computed in parallel. A cheap
 * serial pass splits the trace into per-process reference substreams
 * (kernel references group under pid 0, the shared system space); each
 * substream then gets its own StackDistanceAnalyzer on a worker thread.
 * Processes are independent streams, so the parallel result is
 * bit-identical to profiling each substream serially.
 */

#include <cstdint>
#include <vector>

#include "trace/record.h"

namespace atum::analysis {

struct ProcessProfileOptions {
    unsigned block_shift = 4;     ///< address -> block (4 = 16B blocks)
    bool include_kernel = true;   ///< profile kernel refs as pid 0
    /** Fully-associative LRU capacities (in blocks) to report misses for. */
    std::vector<uint64_t> capacities = {64, 1024};
};

/** One process's locality profile. */
struct ProcessProfile {
    uint16_t pid = 0;
    uint64_t accesses = 0;
    uint64_t cold_misses = 0;
    uint64_t distinct_blocks = 0;
    /** Miss counts parallel to ProcessProfileOptions::capacities. */
    std::vector<uint64_t> misses_at_capacity;

    double MissRateAt(std::size_t i) const
    {
        return accesses == 0 ? 0.0
                             : static_cast<double>(misses_at_capacity[i]) /
                                   static_cast<double>(accesses);
    }
};

/**
 * Profiles every process seen in `records`, one worker task per process
 * substream. Results are sorted by pid. `jobs` = 0 means one worker per
 * hardware thread.
 */
std::vector<ProcessProfile> PerProcessStackProfiles(
    const std::vector<trace::Record>& records,
    const ProcessProfileOptions& options = {}, unsigned jobs = 0);

}  // namespace atum::analysis

#endif  // ATUM_ANALYSIS_PARALLEL_PROFILES_H_
