#ifndef ATUM_ANALYSIS_WORKING_SET_H_
#define ATUM_ANALYSIS_WORKING_SET_H_

/**
 * @file
 * Denning working-set analysis over ATUM traces (experiment F5): average
 * working-set size s(tau) = (1/T) * sum_t |W(t, tau)|, where W(t, tau) is
 * the set of pages referenced in the last tau references.
 *
 * Computed incrementally from inter-reference gaps: a page whose accesses
 * are g references apart is resident in the window for min(g, tau) of
 * those g steps, so s(tau) = sum over accesses of min(gap, tau) / T (the
 * first access of each page counts as a full-tau gap; the end-of-trace
 * truncation is negligible for T >> tau).
 */

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "trace/record.h"
#include "trace/sink.h"

namespace atum::analysis {

class WorkingSetAnalyzer
{
  public:
    /** `windows` are the tau values (in references) to evaluate. */
    explicit WorkingSetAnalyzer(std::vector<uint64_t> windows);

    /** Feeds one memory reference's page; non-memory records are skipped
     *  by the Feed(Record) overload. */
    void Touch(uint32_t page);
    void Feed(const trace::Record& record);
    void DriveAll(trace::TraceSource& source);

    /** Total references seen. */
    uint64_t total_refs() const { return time_; }
    /** Distinct pages seen. */
    uint64_t distinct_pages() const { return last_access_.size(); }

    const std::vector<uint64_t>& windows() const { return windows_; }
    /** Average working-set size (pages) for windows()[i]. */
    double AverageWorkingSet(size_t i) const;

  private:
    std::vector<uint64_t> windows_;
    std::vector<uint64_t> min_sums_;
    std::unordered_map<uint32_t, uint64_t> last_access_;
    uint64_t time_ = 0;
};

/** Extracts the page number of a memory record (512-byte pages). */
uint32_t PageOf(const trace::Record& record);

}  // namespace atum::analysis

#endif  // ATUM_ANALYSIS_WORKING_SET_H_
