#include "analysis/crosscheck.h"

#include <string>
#include <vector>

#include "cpu/machine.h"
#include "util/json.h"
#include "util/table.h"

namespace atum::analysis {

namespace {

constexpr uint16_t kChmkVector =
    static_cast<uint16_t>(cpu::ExcVector::kChmk);
constexpr uint16_t kAcvVector = static_cast<uint16_t>(cpu::ExcVector::kAcv);
constexpr uint16_t kTnvVector = static_cast<uint16_t>(cpu::ExcVector::kTnv);

/** Raw per-type tallies from one pass over the stream. */
struct Tallies {
    uint64_t ifetches = 0;
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t pte_reads = 0;
    uint64_t tlb_misses = 0;
    uint64_t exceptions = 0;
    uint64_t syscalls = 0;
    uint64_t faults = 0;  ///< ACV + TNV dispatches (misses that don't fill)
    uint64_t opcodes = 0;
    uint64_t dma_words = 0;
    uint64_t lost = 0;
    bool have_opcodes = false;
};

Tallies
Tally(const std::vector<trace::Record>& records)
{
    Tallies t;
    for (const trace::Record& r : records) {
        switch (r.type) {
            case trace::RecordType::kIFetch: ++t.ifetches; break;
            case trace::RecordType::kRead: ++t.reads; break;
            case trace::RecordType::kWrite: ++t.writes; break;
            case trace::RecordType::kPte: ++t.pte_reads; break;
            case trace::RecordType::kCtxSwitch: break;
            case trace::RecordType::kTlbMiss: ++t.tlb_misses; break;
            case trace::RecordType::kException:
                ++t.exceptions;
                if (r.info == kChmkVector)
                    ++t.syscalls;
                if (r.info == kAcvVector || r.info == kTnvVector)
                    ++t.faults;
                break;
            case trace::RecordType::kOpcode:
                ++t.opcodes;
                t.have_opcodes = true;
                break;
            case trace::RecordType::kLoss: t.lost += r.addr; break;
            case trace::RecordType::kDma: ++t.dma_words; break;
            default: break;
        }
    }
    return t;
}

uint64_t
SubFloor(uint64_t a, uint64_t b)
{
    return a > b ? a - b : 0;
}

}  // namespace

std::string
CounterCheck::ToString() const
{
    if (!checked)
        return name + ": (not derivable from this stream)";
    std::string s = name + ": actual=" + std::to_string(actual) +
                    " derived=[" + std::to_string(derived.lo) + ", " +
                    (derived.unbounded ? std::string("inf")
                                       : std::to_string(derived.hi)) +
                    "] " + (ok ? "ok" : "MISMATCH");
    return s;
}

std::string
CrosscheckReport::ToString() const
{
    Table table({"counter", "actual", "derived-lo", "derived-hi", "delta",
                 "verdict"});
    for (const CounterCheck& c : checks) {
        if (!c.checked) {
            table.AddRow({c.name, std::to_string(c.actual), "-", "-", "-",
                          "skipped"});
            continue;
        }
        // Signed distance from the interval; zero when inside it.
        std::string delta = "0";
        if (c.actual < c.derived.lo)
            delta = "-" + std::to_string(c.derived.lo - c.actual);
        else if (!c.derived.unbounded && c.actual > c.derived.hi)
            delta = "+" + std::to_string(c.actual - c.derived.hi);
        table.AddRow({c.name, std::to_string(c.actual),
                      std::to_string(c.derived.lo),
                      c.derived.unbounded ? "inf"
                                          : std::to_string(c.derived.hi),
                      delta, c.ok ? "ok" : "MISMATCH"});
    }
    std::string s = table.ToString();
    s += "records=" + std::to_string(records) +
         " lost=" + std::to_string(lost) + "\n";
    s += passed() ? "crosscheck: PASS\n" : "crosscheck: FAIL\n";
    return s;
}

CrosscheckReport
Crosscheck(const std::vector<trace::Record>& records,
           const cpu::EventCounters& actual, const CrosscheckOptions& options)
{
    const Tallies t = Tally(records);

    CrosscheckReport report;
    report.records = records.size();
    report.lost = t.lost;

    auto check = [&](const char* name, uint64_t actual_value,
                     uint64_t lo, uint64_t hi, bool checked = true) {
        CounterCheck c;
        c.name = name;
        c.actual = actual_value;
        c.derived.lo = lo;
        c.derived.hi = hi;
        c.derived.unbounded = options.prefix;
        c.checked = checked;
        c.ok = !checked || c.derived.Contains(actual_value);
        report.checks.push_back(c);
    };
    // A loss marker hides `lost` records of unknown type, so every exact
    // tally widens to [d, d + lost].
    auto simple = [&](const char* name, uint64_t actual_value, uint64_t d) {
        check(name, actual_value, d, d + t.lost);
    };

    // Opcode markers are optional (atum-capture --record-opcodes); with
    // none in the stream the instruction count is unknowable from it.
    check("instructions", actual.instructions, t.opcodes,
          t.opcodes + t.lost, t.have_opcodes);
    simple("ifetches", actual.ifetches, t.ifetches);
    simple("reads", actual.reads, t.reads);
    simple("writes", actual.writes, t.writes);
    simple("pte_reads", actual.pte_reads, t.pte_reads);
    simple("tlb_misses", actual.tlb_misses, t.tlb_misses);
    // A miss fills the TB unless the walk faulted (ACV/TNV dispatch
    // follows); lost records could hide either misses or faults, so both
    // ends widen by the loss.
    check("tlb_fills", actual.tlb_fills,
          SubFloor(t.tlb_misses, t.faults + t.lost), t.tlb_misses + t.lost);
    simple("exceptions", actual.exceptions, t.exceptions);
    simple("syscalls", actual.syscalls, t.syscalls);
    // One kDma record per 4-byte word the engine writes.
    check("dma_bytes", actual.dma_bytes, 4 * t.dma_words,
          4 * (t.dma_words + t.lost));
    return report;
}

util::StatusOr<cpu::EventCounters>
ReadCountersFromManifest(const std::string& path, io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<io::ReadableFile>> file =
        vfs.OpenRead(path);
    if (!file.ok())
        return file.status();
    std::string body;
    char buf[4096];
    for (;;) {
        util::StatusOr<size_t> n = (*file)->Read(buf, sizeof buf);
        if (!n.ok())
            return n.status();
        if (*n == 0)
            break;
        body.append(buf, *n);
    }

    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(body);
    if (!doc.ok())
        return util::InvalidArgument("run manifest ", path, ": ",
                                     doc.status().ToString());
    const util::JsonValue& counters = doc->Get("counters");
    if (!counters.is_object())
        return util::InvalidArgument("run manifest ", path,
                                     ": no counters object");

    cpu::EventCounters ev;
    size_t found = 0;
    auto grab = [&](const char* key, uint64_t& field) {
        const util::JsonValue& v = counters.Get(key);
        if (v.is_number()) {
            field = v.AsU64();
            ++found;
        }
    };
    grab("cpu.ev.instructions", ev.instructions);
    grab("cpu.ev.ifetches", ev.ifetches);
    grab("cpu.ev.reads", ev.reads);
    grab("cpu.ev.writes", ev.writes);
    grab("cpu.ev.pte_reads", ev.pte_reads);
    grab("cpu.ev.tlb_misses", ev.tlb_misses);
    grab("cpu.ev.tlb_fills", ev.tlb_fills);
    grab("cpu.ev.exceptions", ev.exceptions);
    grab("cpu.ev.syscalls", ev.syscalls);
    grab("cpu.ev.dma_bytes", ev.dma_bytes);
    if (found == 0)
        return util::InvalidArgument(
            "run manifest ", path,
            ": no cpu.ev.* counters (captured by an older build?)");
    return ev;
}

}  // namespace atum::analysis
