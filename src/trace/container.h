#ifndef ATUM_TRACE_CONTAINER_H_
#define ATUM_TRACE_CONTAINER_H_

/**
 * @file
 * ATF2 — the crash-safe, self-describing trace container.
 *
 * The raw v1 format (8-byte magic + packed records) trusts every byte on
 * disk: one flipped bit poisons every downstream experiment undetected,
 * and a capture that dies mid-drain leaves a file indistinguishable from
 * a complete one. ATF2 fixes both with checksummed, fixed-capacity chunks
 * and a sealing footer:
 *
 *   +--------------------------------------------------------------+
 *   | header (32 B):  magic "ATF2\r\n\x1a\n" | version | rec size  |
 *   |                 chunk capacity | flags | CRC32C(header)      |
 *   +--------------------------------------------------------------+
 *   | chunk 0 (16 B + n*8 B):  "CHNK" | record count n             |
 *   |                 CRC32C(payload) | CRC32C(chunk header)       |
 *   |                 n packed records                             |
 *   +--------------------------------------------------------------+
 *   | ... more chunks ...                                          |
 *   +--------------------------------------------------------------+
 *   | footer (24 B):  "FOOT" | chunk count | total records         |
 *   |                 CRC32C(footer)   -- written by Seal() only   |
 *   +--------------------------------------------------------------+
 *
 * Failure behavior this buys:
 *  - truncation (crash, ENOSPC) is detected because the footer is absent
 *    or a trailing chunk is partial; every complete chunk before the tear
 *    is still readable and CRC-verified;
 *  - a flipped byte is confined to its chunk: the scanner reports that
 *    chunk corrupt and resynchronizes at the next chunk marker, salvaging
 *    the islands after it;
 *  - all checks return Status — no Fatal/Panic is reachable from bad
 *    file content.
 *
 * Readers still accept legacy v1 files (one warning, no checksums; only
 * the valid prefix is trusted).
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "io/vfs.h"
#include "trace/record.h"
#include "util/status.h"

namespace atum::trace {

// ---------------------------------------------------------------------------
// Byte-stream interfaces. The container reads/writes through these so that
// tests can interpose fault injection (trace/fault.h) or keep data in
// memory without touching a filesystem.

/** Destination for raw container bytes. */
class ByteSink
{
  public:
    virtual ~ByteSink() = default;
    /** Writes all `len` bytes or returns a non-OK status. */
    virtual util::Status Write(const void* data, size_t len) = 0;
    virtual util::Status Flush() { return util::OkStatus(); }
    /**
     * Makes everything written so far durable (fsync for files). The
     * checkpoint subsystem calls this before recording a trace-file
     * high-water mark, so the mark never points past what a crash can
     * lose.
     */
    virtual util::Status Sync() { return Flush(); }
    /** Flushes and releases the destination; idempotent. */
    virtual util::Status Close() { return Flush(); }
};

/** Source of raw container bytes. */
class ByteSource
{
  public:
    virtual ~ByteSource() = default;
    /** Reads up to `len` bytes; returns the count read, 0 at end. */
    virtual util::StatusOr<size_t> Read(void* data, size_t len) = 0;
};

/**
 * File-backed ByteSink over the Vfs seam (io/vfs.h); Close() is
 * fsync-then-close. Interrupted (EINTR-class) writes and syncs are
 * retried here, so callers only ever see them if they persist.
 */
class FileByteSink : public ByteSink
{
  public:
    static util::StatusOr<std::unique_ptr<FileByteSink>> Open(
        const std::string& path, io::Vfs& vfs = io::RealVfs());
    /**
     * Re-opens an existing file for appending at `offset`: bytes past the
     * offset (a torn chunk, a footer from a sealed-then-resumed capture)
     * are truncated away first. The resume path of atum-capture uses this
     * to rewind a trace to its checkpoint's high-water mark. Fails with
     * data-loss when the file is shorter than `offset`.
     */
    static util::StatusOr<std::unique_ptr<FileByteSink>> OpenAt(
        const std::string& path, uint64_t offset,
        io::Vfs& vfs = io::RealVfs());
    ~FileByteSink() override;

    FileByteSink(const FileByteSink&) = delete;
    FileByteSink& operator=(const FileByteSink&) = delete;

    util::Status Write(const void* data, size_t len) override;
    util::Status Sync() override;
    util::Status Close() override;

  private:
    FileByteSink(std::unique_ptr<io::WritableFile> file, std::string path);

    std::unique_ptr<io::WritableFile> file_;
    std::string path_;
};

/** File-backed ByteSource over the Vfs seam. */
class FileByteSource : public ByteSource
{
  public:
    static util::StatusOr<std::unique_ptr<FileByteSource>> Open(
        const std::string& path, io::Vfs& vfs = io::RealVfs());

    FileByteSource(const FileByteSource&) = delete;
    FileByteSource& operator=(const FileByteSource&) = delete;

    util::StatusOr<size_t> Read(void* data, size_t len) override;

  private:
    FileByteSource(std::unique_ptr<io::ReadableFile> file, std::string path);

    std::unique_ptr<io::ReadableFile> file_;
    std::string path_;
};

/** Accumulates container bytes in memory (tests, fault harness). */
class MemoryByteSink : public ByteSink
{
  public:
    util::Status Write(const void* data, size_t len) override
    {
        const auto* p = static_cast<const uint8_t*>(data);
        bytes_.insert(bytes_.end(), p, p + len);
        return util::OkStatus();
    }

    const std::vector<uint8_t>& bytes() const { return bytes_; }
    std::vector<uint8_t>& mutable_bytes() { return bytes_; }

  private:
    std::vector<uint8_t> bytes_;
};

/** Reads container bytes from a borrowed in-memory buffer. */
class MemoryByteSource : public ByteSource
{
  public:
    explicit MemoryByteSource(const std::vector<uint8_t>& bytes)
        : bytes_(bytes)
    {
    }

    util::StatusOr<size_t> Read(void* data, size_t len) override;

  private:
    const std::vector<uint8_t>& bytes_;
    size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// ATF2 constants.

inline constexpr uint8_t kAtf2Magic[8] = {'A', 'T', 'F',  '2',
                                          '\r', '\n', 0x1a, '\n'};
inline constexpr uint16_t kAtf2Version = 2;
inline constexpr uint32_t kAtf2HeaderBytes = 32;
inline constexpr uint32_t kAtf2ChunkHeaderBytes = 16;
inline constexpr uint32_t kAtf2FooterBytes = 24;
inline constexpr uint32_t kAtf2ChunkMagic = 0x4B4E4843;   // "CHNK"
inline constexpr uint32_t kAtf2FooterMagic = 0x544F4F46;  // "FOOT"
/** Upper bound a scanner will believe for one chunk's record count. */
inline constexpr uint32_t kAtf2MaxChunkRecords = 1u << 20;

/** Legacy v1 magic, still accepted by readers. */
inline constexpr char kV1Magic[8] = {'A', 'T', 'U', 'M', '0', '0', '0', '1'};

struct Atf2WriterOptions {
    /** Records per chunk; the loss-confinement granularity. */
    uint32_t chunk_records = 512;
};

/**
 * Everything needed to continue an interrupted ATF2 stream elsewhere:
 * the durable prefix (header + full chunks, never rewritten once on
 * disk) plus the open chunk's buffered records. A checkpoint carries
 * this; resume truncates the file back to `file_bytes` and reconstructs
 * the writer, after which continued appends are byte-identical to an
 * uninterrupted run.
 */
struct Atf2ResumeState {
    uint64_t file_bytes = 0;   ///< durable prefix length (0 = header unwritten)
    uint32_t chunks = 0;       ///< full chunks inside that prefix
    uint64_t records = 0;      ///< records accepted, incl. the open chunk
    uint32_t chunk_records = 512;   ///< writer geometry
    std::vector<uint8_t> pending;   ///< open chunk's packed records
};

// ---------------------------------------------------------------------------
// Writer.

/**
 * Streams records into an ATF2 container. Records accumulate in an open
 * chunk that is written out (header + payload, one Write call) when full;
 * Seal() flushes the final partial chunk and appends the footer.
 *
 * A failed Append consumed nothing: the same record can be retried once
 * the sink recovers, and no record is ever silently dropped or doubled.
 * A writer abandoned before Seal() leaves a valid-but-unsealed file from
 * which every completed chunk is recoverable — the crash guarantee.
 */
class Atf2Writer
{
  public:
    explicit Atf2Writer(ByteSink& out, const Atf2WriterOptions& options = {});

    /** Tag selecting the resume constructor (keeps the options overload
     *  unambiguous under designated initializers). */
    struct ResumeFrom {
        const Atf2ResumeState& state;
    };

    /**
     * Reconstructs a writer mid-stream from checkpointed state; `out`
     * must already be positioned at `state.file_bytes` (FileByteSink::
     * OpenAt does the truncation).
     */
    Atf2Writer(ByteSink& out, ResumeFrom resume);

    Atf2Writer(const Atf2Writer&) = delete;
    Atf2Writer& operator=(const Atf2Writer&) = delete;

    /** Buffers one record, flushing a full chunk first if needed. */
    util::Status Append(const Record& record);

    /** Flushes the open chunk and writes the footer; idempotent. */
    util::Status Seal();

    bool sealed() const { return sealed_; }
    /** Records accepted so far (buffered or written). */
    uint64_t records() const { return records_; }
    uint32_t chunks_written() const { return chunks_; }
    /** Bytes of durable prefix handed to the sink (header + full chunks). */
    uint64_t bytes_written() const { return bytes_written_; }

    /** Captures the mid-stream state a checkpoint needs (see above). */
    Atf2ResumeState SaveState() const;

  private:
    util::Status Start();
    util::Status FlushChunk();

    ByteSink& out_;
    Atf2WriterOptions options_;
    std::vector<uint8_t> pending_;  ///< packed records of the open chunk
    uint32_t pending_records_ = 0;
    uint64_t records_ = 0;
    uint32_t chunks_ = 0;
    uint64_t bytes_written_ = 0;
    bool started_ = false;
    bool sealed_ = false;
};

// ---------------------------------------------------------------------------
// Tolerant scanner / strict loader.

/** One problem the scanner found, anchored to a file offset. */
struct ScanIssue {
    uint64_t offset = 0;
    std::string error;
};

/** What a tolerant pass over one container found. */
struct ScanReport {
    bool recognized = false;  ///< carried a known trace magic
    bool legacy_v1 = false;   ///< raw v1 file (no checksums)
    bool sealed = false;      ///< valid ATF2 footer present
    uint64_t file_bytes = 0;
    uint32_t chunks_ok = 0;
    uint32_t chunks_bad = 0;
    uint64_t records_salvaged = 0;
    /** Footer's record total; meaningful only when `sealed`. */
    uint64_t footer_records = 0;
    /** Records recovered before the first tear (the guaranteed prefix). */
    uint64_t valid_prefix_records = 0;
    std::vector<ScanIssue> issues;

    /** True when the file is complete and every checksum verified. */
    bool intact() const;
    /** Multi-line human-readable report (the --verify output). */
    std::string ToString() const;
};

/**
 * Reads as much as possible from a (possibly damaged) container: verifies
 * per-chunk checksums, resynchronizes past corrupt regions at the next
 * chunk marker, and appends every salvageable record to `out` (which may
 * be null to verify only). Never terminates the process; all damage is
 * described in the returned report.
 */
ScanReport ScanTrace(ByteSource& in, std::vector<Record>* out);

/**
 * Strictly loads a trace file: every record or a non-OK status (kNotFound
 * or kIoError when unreadable, kInvalidArgument when not a trace,
 * kDataLoss when damaged — the message then names the salvageable record
 * count). Accepts legacy v1 files with a one-line warning.
 */
util::StatusOr<std::vector<Record>> LoadTrace(const std::string& path,
                                              io::Vfs& vfs = io::RealVfs());

/** Writes `records` as a sealed ATF2 container on `out`. */
util::Status WriteAtf2(ByteSink& out, const std::vector<Record>& records,
                       const Atf2WriterOptions& options = {});

}  // namespace atum::trace

#endif  // ATUM_TRACE_CONTAINER_H_
