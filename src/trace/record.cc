#include "trace/record.h"

#include "util/logging.h"

namespace atum::trace {

uint8_t
MakeFlags(bool kernel, uint8_t size_bytes)
{
    uint8_t log2_size;
    switch (size_bytes) {
      case 1:
        log2_size = 0;
        break;
      case 2:
        log2_size = 1;
        break;
      case 4:
        log2_size = 2;
        break;
      default:
        Panic("unsupported access size ", unsigned{size_bytes});
    }
    return static_cast<uint8_t>((kernel ? kFlagKernel : 0) |
                                (log2_size << 1));
}

Record
FromMemAccess(const ucode::MemAccess& access)
{
    Record r;
    r.addr = access.vaddr;
    switch (access.kind) {
      case ucode::MemAccessKind::kIFetch:
        r.type = RecordType::kIFetch;
        break;
      case ucode::MemAccessKind::kRead:
        r.type = RecordType::kRead;
        break;
      case ucode::MemAccessKind::kWrite:
        r.type = RecordType::kWrite;
        break;
      case ucode::MemAccessKind::kPte:
        r.type = RecordType::kPte;
        break;
      case ucode::MemAccessKind::kDma:
        r.type = RecordType::kDma;
        break;
    }
    r.flags = MakeFlags(access.kernel, access.size);
    return r;
}

Record
MakeCtxSwitch(uint16_t pid, uint32_t pcb_pa)
{
    Record r;
    r.addr = pcb_pa;
    r.type = RecordType::kCtxSwitch;
    r.flags = MakeFlags(true, 4);
    r.info = pid;
    return r;
}

Record
MakeTlbMiss(uint32_t vaddr, bool kernel)
{
    Record r;
    r.addr = vaddr;
    r.type = RecordType::kTlbMiss;
    r.flags = MakeFlags(kernel, 4);
    return r;
}

Record
MakeException(uint8_t vector)
{
    Record r;
    r.addr = 0;
    r.type = RecordType::kException;
    r.flags = MakeFlags(true, 4);
    r.info = vector;
    return r;
}

Record
MakeOpcode(uint32_t pc, uint8_t opcode, bool kernel)
{
    Record r;
    r.addr = pc;
    r.type = RecordType::kOpcode;
    r.flags = MakeFlags(kernel, 1);
    r.info = opcode;
    return r;
}

Record
MakeLoss(uint32_t lost, uint16_t event)
{
    Record r;
    r.addr = lost;
    r.type = RecordType::kLoss;
    r.flags = MakeFlags(true, 4);
    r.info = event;
    return r;
}

bool
IsPlausibleRecord(const Record& r)
{
    if (static_cast<uint8_t>(r.type) >=
        static_cast<uint8_t>(RecordType::kNumTypes))
        return false;
    // flags: bit 0 kernel, bits 2:1 log2(size) with size <= 4, rest zero.
    if ((r.flags & ~0x07u) != 0 || ((r.flags >> 1) & 3) == 3)
        return false;
    return true;
}

void
PackRecord(const Record& r, uint8_t out[kRecordBytes])
{
    out[0] = static_cast<uint8_t>(r.addr);
    out[1] = static_cast<uint8_t>(r.addr >> 8);
    out[2] = static_cast<uint8_t>(r.addr >> 16);
    out[3] = static_cast<uint8_t>(r.addr >> 24);
    out[4] = static_cast<uint8_t>(r.type);
    out[5] = r.flags;
    out[6] = static_cast<uint8_t>(r.info);
    out[7] = static_cast<uint8_t>(r.info >> 8);
}

Record
UnpackRecord(const uint8_t in[kRecordBytes])
{
    Record r;
    r.addr = static_cast<uint32_t>(in[0]) | static_cast<uint32_t>(in[1]) << 8 |
             static_cast<uint32_t>(in[2]) << 16 |
             static_cast<uint32_t>(in[3]) << 24;
    r.type = static_cast<RecordType>(in[4]);
    r.flags = in[5];
    r.info = static_cast<uint16_t>(in[6] | (in[7] << 8));
    return r;
}

}  // namespace atum::trace
