#include "trace/sink.h"

#include <cstring>

#include "util/logging.h"

namespace atum::trace {

namespace {
constexpr char kMagic[8] = {'A', 'T', 'U', 'M', '0', '0', '0', '1'};
}  // namespace

FileSink::FileSink(const std::string& path)
{
    file_ = std::fopen(path.c_str(), "wb");
    if (file_ == nullptr)
        Fatal("cannot open trace file for writing: ", path);
    if (std::fwrite(kMagic, 1, sizeof kMagic, file_) != sizeof kMagic)
        Fatal("cannot write trace header: ", path);
}

FileSink::~FileSink()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

void
FileSink::Append(const Record& record)
{
    if (file_ == nullptr)
        Panic("Append on a closed FileSink");
    uint8_t buf[kRecordBytes];
    PackRecord(record, buf);
    if (std::fwrite(buf, 1, sizeof buf, file_) != sizeof buf)
        Fatal("short write to trace file");
    ++count_;
}

void
FileSink::Close()
{
    if (file_ != nullptr) {
        std::fclose(file_);
        file_ = nullptr;
    }
}

FileSource::FileSource(const std::string& path)
{
    file_ = std::fopen(path.c_str(), "rb");
    if (file_ == nullptr)
        Fatal("cannot open trace file: ", path);
    char magic[8];
    if (std::fread(magic, 1, sizeof magic, file_) != sizeof magic ||
        std::memcmp(magic, kMagic, sizeof kMagic) != 0) {
        Fatal("not an ATUM trace file: ", path);
    }
}

FileSource::~FileSource()
{
    if (file_ != nullptr)
        std::fclose(file_);
}

std::optional<Record>
FileSource::Next()
{
    uint8_t buf[kRecordBytes];
    const size_t got = std::fread(buf, 1, sizeof buf, file_);
    if (got == 0)
        return std::nullopt;
    if (got != sizeof buf)
        Fatal("truncated trace file record");
    return UnpackRecord(buf);
}

void
WriteTraceFile(const std::string& path, const std::vector<Record>& records)
{
    FileSink sink(path);
    for (const Record& r : records)
        sink.Append(r);
    sink.Close();
}

std::vector<Record>
ReadTraceFile(const std::string& path)
{
    FileSource source(path);
    std::vector<Record> out;
    while (auto r = source.Next())
        out.push_back(*r);
    return out;
}

}  // namespace atum::trace
