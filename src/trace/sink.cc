#include "trace/sink.h"

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace atum::trace {

MeteredByteSink::MeteredByteSink(std::unique_ptr<ByteSink> inner)
    : inner_(std::move(inner)),
      bytes_(&obs::Registry::Global().GetCounter("trace.sink.bytes")),
      writes_(&obs::Registry::Global().GetCounter("trace.sink.writes")),
      fsyncs_(&obs::Registry::Global().GetCounter("trace.sink.fsyncs")),
      write_us_(&obs::Registry::Global().GetHistogram("trace.sink.write_us"))
{
}

util::Status
MeteredByteSink::Write(const void* data, size_t len)
{
    const auto t0 = std::chrono::steady_clock::now();
    util::Status status = inner_->Write(data, len);
    const auto elapsed = std::chrono::steady_clock::now() - t0;
    write_us_->Add(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(elapsed)
            .count()));
    writes_->Add(1);
    if (status.ok())
        bytes_->Add(len);
    return status;
}

util::Status
MeteredByteSink::Sync()
{
    util::Status status = inner_->Sync();
    fsyncs_->Add(1);
    return status;
}

FileSink::FileSink(const std::string& path)
{
    util::StatusOr<std::unique_ptr<FileByteSink>> out =
        FileByteSink::Open(path);
    if (!out.ok())
        Fatal(out.status().message());
    out_ = std::make_unique<MeteredByteSink>(std::move(*out));
    writer_ = std::make_unique<Atf2Writer>(*out_);
}

FileSink::FileSink(std::unique_ptr<ByteSink> out,
                   const Atf2WriterOptions& options)
    : out_(std::make_unique<MeteredByteSink>(std::move(out)))
{
    writer_ = std::make_unique<Atf2Writer>(*out_, options);
}

util::StatusOr<std::unique_ptr<FileSink>>
FileSink::Open(const std::string& path, const Atf2WriterOptions& options,
               io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<FileByteSink>> out =
        FileByteSink::Open(path, vfs);
    if (!out.ok())
        return out.status();
    return std::unique_ptr<FileSink>(
        new FileSink(std::move(*out), options));
}

FileSink::FileSink(std::unique_ptr<ByteSink> out,
                   const Atf2ResumeState& state)
    : out_(std::make_unique<MeteredByteSink>(std::move(out)))
{
    writer_ = std::make_unique<Atf2Writer>(*out_, Atf2Writer::ResumeFrom{state});
}

util::StatusOr<std::unique_ptr<FileSink>>
FileSink::OpenResumed(const std::string& path, const Atf2ResumeState& state,
                      io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<FileByteSink>> out =
        FileByteSink::OpenAt(path, state.file_bytes, vfs);
    if (!out.ok())
        return out.status();
    return std::unique_ptr<FileSink>(new FileSink(std::move(*out), state));
}

util::StatusOr<Atf2ResumeState>
FileSink::SaveState()
{
    if (closed_)
        return util::FailedPrecondition("SaveState on a closed FileSink");
    const util::Status status = out_->Sync();
    if (!status.ok())
        return status;
    return writer_->SaveState();
}

FileSink::~FileSink()
{
    const util::Status status = Close();
    if (!status.ok())
        Warn("closing trace sink: ", status.ToString());
}

util::Status
FileSink::Append(const Record& record)
{
    if (closed_)
        return util::FailedPrecondition("Append on a closed FileSink");
    return writer_->Append(record);
}

util::Status
FileSink::Close()
{
    if (closed_)
        return close_status_;
    closed_ = true;
    close_status_ = writer_->Seal();
    const util::Status out_status = out_->Close();
    if (close_status_.ok())
        close_status_ = out_status;
    return close_status_;
}

void
FileSink::PublishMetrics(obs::Registry& reg) const
{
    if (!writer_)
        return;
    reg.GetCounter("trace.sink.records").Set(writer_->records());
    reg.GetCounter("trace.sink.chunks").Set(writer_->chunks_written());
    reg.GetCounter("trace.sink.file_bytes").Set(writer_->bytes_written());
}

util::StatusOr<std::unique_ptr<FileSource>>
FileSource::Open(const std::string& path, io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<FileByteSource>> in =
        FileByteSource::Open(path, vfs);
    if (!in.ok())
        return in.status();

    std::unique_ptr<FileSource> source(new FileSource);
    source->report_ = ScanTrace(**in, &source->records_);
    if (!source->report_.recognized)
        return util::InvalidArgument("not an ATUM trace file: ", path);
    if (source->report_.legacy_v1 && source->report_.intact())
        Warn("reading legacy v1 trace ", path,
             " (no checksums; re-capture or --salvage to get ATF2)");
    if (!source->report_.intact()) {
        const auto& issues = source->report_.issues;
        source->status_ = util::DataLoss(
            path, ": ", issues.empty() ? "damaged" : issues[0].error, " (",
            source->report_.records_salvaged, " records salvageable)");
    }
    return source;
}

std::optional<Record>
FileSource::Next()
{
    if (pos_ >= records_.size())
        return std::nullopt;
    return records_[pos_++];
}

util::Status
WriteTraceFile(const std::string& path, const std::vector<Record>& records)
{
    util::StatusOr<std::unique_ptr<FileSink>> sink = FileSink::Open(path);
    if (!sink.ok())
        return sink.status();
    for (const Record& r : records) {
        util::Status status = (*sink)->Append(r);
        if (!status.ok())
            return status;
    }
    return (*sink)->Close();
}

std::vector<Record>
ReadTraceFile(const std::string& path)
{
    util::StatusOr<std::vector<Record>> records = LoadTrace(path);
    if (!records.ok())
        Fatal(records.status().ToString());
    return std::move(*records);
}

}  // namespace atum::trace
