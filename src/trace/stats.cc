#include "trace/stats.h"

#include <sstream>

#include "util/logging.h"

namespace atum::trace {

void
TraceStats::Accumulate(const Record& record)
{
    ++total_;
    const auto type_idx = static_cast<size_t>(record.type);
    if (type_idx >= static_cast<size_t>(RecordType::kNumTypes))
        Panic("bad record type ", type_idx);
    ++by_type_[type_idx];

    if (record.IsMemory()) {
        ++mem_refs_;
        if (record.kernel())
            ++kernel_refs_;
        ++refs_by_pid_[current_pid_];
        ++refs_since_switch_;
    } else if (record.type == RecordType::kCtxSwitch) {
        switch_interval_refs_.Add(refs_since_switch_);
        refs_since_switch_ = 0;
        current_pid_ = record.info;
    }
}

uint64_t
TraceStats::CountOf(RecordType type) const
{
    return by_type_[static_cast<size_t>(type)];
}

uint64_t
TraceStats::context_switches() const
{
    return CountOf(RecordType::kCtxSwitch);
}

double
TraceStats::KernelFraction() const
{
    return mem_refs_ == 0
               ? 0.0
               : static_cast<double>(kernel_refs_) /
                     static_cast<double>(mem_refs_);
}

double
TraceStats::WriteFraction() const
{
    const uint64_t reads = CountOf(RecordType::kRead);
    const uint64_t writes = CountOf(RecordType::kWrite);
    return reads + writes == 0
               ? 0.0
               : static_cast<double>(writes) /
                     static_cast<double>(reads + writes);
}

std::string
TraceStats::ToString() const
{
    std::ostringstream os;
    os << "records:        " << total_ << "\n"
       << "  ifetch:       " << CountOf(RecordType::kIFetch) << "\n"
       << "  read:         " << CountOf(RecordType::kRead) << "\n"
       << "  write:        " << CountOf(RecordType::kWrite) << "\n"
       << "  pte:          " << CountOf(RecordType::kPte) << "\n"
       << "  ctx-switch:   " << CountOf(RecordType::kCtxSwitch) << "\n"
       << "  tlb-miss:     " << CountOf(RecordType::kTlbMiss) << "\n"
       << "  exception:    " << CountOf(RecordType::kException) << "\n"
       << "  opcode:       " << CountOf(RecordType::kOpcode) << "\n"
       << "  loss:         " << CountOf(RecordType::kLoss) << "\n"
       << "  dma:          " << CountOf(RecordType::kDma) << "\n"
       << "memory refs:    " << mem_refs_ << "\n"
       << "  kernel:       " << kernel_refs_ << " ("
       << static_cast<int>(KernelFraction() * 1000) / 10.0 << "%)\n"
       << "  write frac:   " << static_cast<int>(WriteFraction() * 1000) / 10.0
       << "% of data refs\n";
    return os.str();
}

}  // namespace atum::trace
