#include "trace/container.h"

#include <cstring>
#include <sstream>

#include "util/crc32.h"
#include "util/logging.h"

namespace atum::trace {

namespace {

void
Put16(std::vector<uint8_t>& out, uint16_t v)
{
    out.push_back(static_cast<uint8_t>(v));
    out.push_back(static_cast<uint8_t>(v >> 8));
}

void
Put32(std::vector<uint8_t>& out, uint32_t v)
{
    Put16(out, static_cast<uint16_t>(v));
    Put16(out, static_cast<uint16_t>(v >> 16));
}

void
Put64(std::vector<uint8_t>& out, uint64_t v)
{
    Put32(out, static_cast<uint32_t>(v));
    Put32(out, static_cast<uint32_t>(v >> 32));
}

uint16_t
Get16(const uint8_t* p)
{
    return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t
Get32(const uint8_t* p)
{
    return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
           static_cast<uint32_t>(p[2]) << 16 |
           static_cast<uint32_t>(p[3]) << 24;
}

uint64_t
Get64(const uint8_t* p)
{
    return static_cast<uint64_t>(Get32(p)) |
           static_cast<uint64_t>(Get32(p + 4)) << 32;
}

constexpr size_t kNpos = static_cast<size_t>(-1);

/**
 * Bound on consecutive kInterrupted results retried before giving up.
 * Real EINTRs are already absorbed by io/posix.cc, so hitting this means
 * a fault injector (or a pathological signal storm) is at work.
 */
constexpr int kMaxInterrupts = 100;

/** First offset >= `from` holding a chunk or footer marker, or kNpos. */
size_t
FindMarker(const std::vector<uint8_t>& b, size_t from)
{
    for (size_t i = from; i + 4 <= b.size(); ++i) {
        const uint32_t m = Get32(&b[i]);
        if (m == kAtf2ChunkMagic || m == kAtf2FooterMagic)
            return i;
    }
    return kNpos;
}

}  // namespace

// ---------------------------------------------------------------------------
// File-backed byte streams.

FileByteSink::FileByteSink(std::unique_ptr<io::WritableFile> file,
                           std::string path)
    : file_(std::move(file)), path_(std::move(path))
{
}

util::StatusOr<std::unique_ptr<FileByteSink>>
FileByteSink::Open(const std::string& path, io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<io::WritableFile>> file =
        vfs.Create(path);
    if (!file.ok())
        return file.status();
    return std::unique_ptr<FileByteSink>(
        new FileByteSink(std::move(*file), path));
}

util::StatusOr<std::unique_ptr<FileByteSink>>
FileByteSink::OpenAt(const std::string& path, uint64_t offset, io::Vfs& vfs)
{
    // Rewinds to the durable prefix: everything past the mark (torn chunk,
    // chunks newer than the checkpoint, or a shutdown footer) goes.
    util::StatusOr<std::unique_ptr<io::WritableFile>> file =
        vfs.OpenForAppendAt(path, offset);
    if (!file.ok())
        return file.status();
    return std::unique_ptr<FileByteSink>(
        new FileByteSink(std::move(*file), path));
}

FileByteSink::~FileByteSink()
{
    const util::Status status = Close();
    if (!status.ok())
        Warn("closing ", path_, ": ", status.ToString());
}

util::Status
FileByteSink::Write(const void* data, size_t len)
{
    if (file_ == nullptr)
        return util::FailedPrecondition("write to closed file ", path_);
    util::Status status;
    for (int i = 0; i < kMaxInterrupts; ++i) {
        status = file_->Write(data, len);
        if (status.code() != util::StatusCode::kInterrupted)
            return status;
    }
    return status;
}

util::Status
FileByteSink::Sync()
{
    if (file_ == nullptr)
        return util::FailedPrecondition("fsync of closed file ", path_);
    util::Status status;
    for (int i = 0; i < kMaxInterrupts; ++i) {
        status = file_->Sync();
        if (status.code() != util::StatusCode::kInterrupted)
            return status;
    }
    return status;
}

util::Status
FileByteSink::Close()
{
    if (file_ == nullptr)
        return util::OkStatus();
    // fsync before close: a capture is hours of machine time, and "the
    // kernel probably wrote it eventually" is not crash-safe.
    util::Status status = Sync();
    const util::Status close_status = file_->Close();
    if (status.ok())
        status = close_status;
    file_ = nullptr;
    return status;
}

FileByteSource::FileByteSource(std::unique_ptr<io::ReadableFile> file,
                               std::string path)
    : file_(std::move(file)), path_(std::move(path))
{
}

util::StatusOr<std::unique_ptr<FileByteSource>>
FileByteSource::Open(const std::string& path, io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<io::ReadableFile>> file =
        vfs.OpenRead(path);
    if (!file.ok())
        return file.status();
    return std::unique_ptr<FileByteSource>(
        new FileByteSource(std::move(*file), path));
}

util::StatusOr<size_t>
FileByteSource::Read(void* data, size_t len)
{
    util::StatusOr<size_t> got = file_->Read(data, len);
    for (int i = 1;
         i < kMaxInterrupts &&
         got.status().code() == util::StatusCode::kInterrupted;
         ++i)
        got = file_->Read(data, len);
    return got;
}

util::StatusOr<size_t>
MemoryByteSource::Read(void* data, size_t len)
{
    const size_t avail = bytes_.size() - pos_;
    const size_t n = len < avail ? len : avail;
    std::memcpy(data, bytes_.data() + pos_, n);
    pos_ += n;
    return n;
}

// ---------------------------------------------------------------------------
// Writer.

Atf2Writer::Atf2Writer(ByteSink& out, const Atf2WriterOptions& options)
    : out_(out), options_(options)
{
    if (options_.chunk_records == 0 ||
        options_.chunk_records > kAtf2MaxChunkRecords)
        Fatal("bad ATF2 chunk capacity: ", options_.chunk_records);
    pending_.reserve(static_cast<size_t>(options_.chunk_records) *
                     kRecordBytes);
}

Atf2Writer::Atf2Writer(ByteSink& out, ResumeFrom resume)
    : out_(out),
      options_{resume.state.chunk_records},
      pending_(resume.state.pending),
      pending_records_(
          static_cast<uint32_t>(resume.state.pending.size() / kRecordBytes)),
      records_(resume.state.records),
      chunks_(resume.state.chunks),
      bytes_written_(resume.state.file_bytes),
      started_(resume.state.file_bytes > 0)
{
    if (options_.chunk_records == 0 ||
        options_.chunk_records > kAtf2MaxChunkRecords)
        Fatal("bad ATF2 chunk capacity: ", options_.chunk_records);
}

Atf2ResumeState
Atf2Writer::SaveState() const
{
    Atf2ResumeState state;
    state.file_bytes = bytes_written_;
    state.chunks = chunks_;
    state.records = records_;
    state.chunk_records = options_.chunk_records;
    state.pending = pending_;
    return state;
}

util::Status
Atf2Writer::Start()
{
    if (started_)
        return util::OkStatus();
    std::vector<uint8_t> header;
    header.insert(header.end(), kAtf2Magic, kAtf2Magic + sizeof kAtf2Magic);
    Put16(header, kAtf2Version);
    Put16(header, static_cast<uint16_t>(kRecordBytes));
    Put32(header, options_.chunk_records);
    Put32(header, 0);  // flags, reserved
    Put64(header, 0);  // reserved
    Put32(header, util::Crc32c(header.data(), header.size()));
    util::Status status = out_.Write(header.data(), header.size());
    if (status.ok()) {
        started_ = true;
        bytes_written_ += header.size();
    }
    return status;
}

util::Status
Atf2Writer::FlushChunk()
{
    if (pending_records_ == 0)
        return util::OkStatus();
    // One Write call per chunk: either the whole chunk reaches the sink
    // or the stream is torn at a point the scanner can resynchronize past.
    std::vector<uint8_t> chunk;
    chunk.reserve(kAtf2ChunkHeaderBytes + pending_.size());
    Put32(chunk, kAtf2ChunkMagic);
    Put32(chunk, pending_records_);
    Put32(chunk, util::Crc32c(pending_.data(), pending_.size()));
    Put32(chunk, util::Crc32c(chunk.data(), chunk.size()));
    chunk.insert(chunk.end(), pending_.begin(), pending_.end());
    util::Status status = out_.Write(chunk.data(), chunk.size());
    if (!status.ok())
        return status;  // pending_ kept: the flush can be retried
    ++chunks_;
    bytes_written_ += chunk.size();
    pending_.clear();
    pending_records_ = 0;
    return util::OkStatus();
}

util::Status
Atf2Writer::Append(const Record& record)
{
    if (sealed_)
        return util::FailedPrecondition("Append on a sealed ATF2 writer");
    util::Status status = Start();
    if (!status.ok())
        return status;
    if (pending_records_ == options_.chunk_records) {
        status = FlushChunk();
        if (!status.ok())
            return status;  // `record` was not consumed; caller may retry
    }
    uint8_t packed[kRecordBytes];
    PackRecord(record, packed);
    pending_.insert(pending_.end(), packed, packed + sizeof packed);
    ++pending_records_;
    ++records_;
    return util::OkStatus();
}

util::Status
Atf2Writer::Seal()
{
    if (sealed_)
        return util::OkStatus();
    util::Status status = Start();
    if (!status.ok())
        return status;
    status = FlushChunk();
    if (!status.ok())
        return status;
    std::vector<uint8_t> footer;
    Put32(footer, kAtf2FooterMagic);
    Put32(footer, chunks_);
    Put64(footer, records_);
    Put32(footer, 0);  // reserved
    Put32(footer, util::Crc32c(footer.data(), footer.size()));
    status = out_.Write(footer.data(), footer.size());
    if (!status.ok())
        return status;
    status = out_.Flush();
    if (!status.ok())
        return status;
    sealed_ = true;
    return util::OkStatus();
}

// ---------------------------------------------------------------------------
// Tolerant scanner.

ScanReport
ScanTrace(ByteSource& in, std::vector<Record>* out)
{
    ScanReport report;
    std::vector<uint8_t> b;
    uint8_t buf[64 << 10];
    while (true) {
        util::StatusOr<size_t> got = in.Read(buf, sizeof buf);
        if (!got.ok()) {
            report.issues.push_back(
                {b.size(), "read failed: " + got.status().ToString()});
            break;
        }
        if (*got == 0)
            break;
        b.insert(b.end(), buf, buf + *got);
    }
    report.file_bytes = b.size();

    bool prefix_intact = report.issues.empty();
    auto issue = [&](uint64_t offset, std::string message) {
        report.issues.push_back({offset, std::move(message)});
        prefix_intact = false;
    };

    // ---- legacy v1: no checksums, so only the plausible prefix is trusted.
    if (b.size() >= sizeof kV1Magic &&
        std::memcmp(b.data(), kV1Magic, sizeof kV1Magic) == 0) {
        report.recognized = true;
        report.legacy_v1 = true;
        size_t pos = sizeof kV1Magic;
        while (pos + kRecordBytes <= b.size()) {
            const Record r = UnpackRecord(&b[pos]);
            if (!IsPlausibleRecord(r)) {
                issue(pos, "implausible record; stopped (v1 carries no "
                           "checksums, nothing past this point is trusted)");
                break;
            }
            if (out != nullptr)
                out->push_back(r);
            ++report.records_salvaged;
            pos += kRecordBytes;
        }
        if (report.issues.empty() && pos != b.size())
            issue(pos, "trailing partial record (truncated capture)");
        report.valid_prefix_records = report.records_salvaged;
        return report;
    }

    // ---- ATF2.
    if (b.size() < sizeof kAtf2Magic ||
        std::memcmp(b.data(), kAtf2Magic, sizeof kAtf2Magic) != 0) {
        issue(0, b.empty() ? "empty file" : "unknown magic");
        return report;
    }
    report.recognized = true;
    if (b.size() < kAtf2HeaderBytes) {
        issue(b.size(), "file ends inside the container header");
        return report;
    }
    if (Get32(&b[28]) != util::Crc32c(b.data(), 28)) {
        // Header fields are untrusted, but chunks self-describe: keep going.
        issue(0, "container header CRC mismatch");
    } else {
        const uint16_t version = Get16(&b[8]);
        if (version != kAtf2Version) {
            issue(8, "unsupported container version " +
                         std::to_string(version));
            return report;
        }
        if (Get16(&b[10]) != kRecordBytes) {
            issue(10, "unsupported record size " +
                          std::to_string(Get16(&b[10])));
            return report;
        }
    }

    size_t pos = kAtf2HeaderBytes;
    while (pos < b.size()) {
        if (b.size() - pos < 4) {
            issue(pos, "trailing garbage (" +
                           std::to_string(b.size() - pos) + " bytes)");
            break;
        }
        const uint32_t magic = Get32(&b[pos]);

        if (magic == kAtf2FooterMagic) {
            if (b.size() - pos < kAtf2FooterBytes) {
                issue(pos, "file ends inside the footer");
                break;
            }
            if (Get32(&b[pos + 20]) != util::Crc32c(&b[pos], 20)) {
                issue(pos, "footer CRC mismatch");
                const size_t next = FindMarker(b, pos + 1);
                if (next == kNpos)
                    break;
                pos = next;
                continue;
            }
            report.sealed = true;
            const uint32_t footer_chunks = Get32(&b[pos + 4]);
            report.footer_records = Get64(&b[pos + 8]);
            if (report.issues.empty() && footer_chunks != report.chunks_ok)
                issue(pos, "footer expects " +
                               std::to_string(footer_chunks) +
                               " chunks, file has " +
                               std::to_string(report.chunks_ok));
            pos += kAtf2FooterBytes;
            if (pos != b.size())
                issue(pos, "bytes after the footer (" +
                               std::to_string(b.size() - pos) + ")");
            break;
        }

        if (magic == kAtf2ChunkMagic) {
            if (b.size() - pos < kAtf2ChunkHeaderBytes) {
                issue(pos, "file ends inside a chunk header");
                break;
            }
            if (Get32(&b[pos + 12]) != util::Crc32c(&b[pos], 12) ||
                Get32(&b[pos + 4]) > kAtf2MaxChunkRecords) {
                issue(pos, "chunk header CRC mismatch");
                const size_t next = FindMarker(b, pos + 1);
                if (next == kNpos)
                    break;
                pos = next;
                continue;
            }
            const uint32_t count = Get32(&b[pos + 4]);
            const size_t payload =
                static_cast<size_t>(count) * kRecordBytes;
            if (b.size() - pos - kAtf2ChunkHeaderBytes < payload) {
                issue(pos,
                      "file ends inside a chunk payload (" +
                          std::to_string(b.size() - pos -
                                         kAtf2ChunkHeaderBytes) +
                          " of " + std::to_string(payload) + " bytes)");
                break;
            }
            const uint8_t* records = &b[pos + kAtf2ChunkHeaderBytes];
            bool good = Get32(&b[pos + 8]) == util::Crc32c(records, payload);
            if (good) {
                for (uint32_t i = 0; i < count; ++i) {
                    if (!IsPlausibleRecord(
                            UnpackRecord(records + i * kRecordBytes))) {
                        good = false;
                        break;
                    }
                }
                if (!good)
                    issue(pos, "chunk passes CRC but holds implausible "
                               "records");
            } else {
                issue(pos, "chunk payload CRC mismatch (" +
                               std::to_string(count) + " records lost)");
            }
            if (good) {
                if (out != nullptr) {
                    for (uint32_t i = 0; i < count; ++i)
                        out->push_back(
                            UnpackRecord(records + i * kRecordBytes));
                }
                ++report.chunks_ok;
                report.records_salvaged += count;
                if (prefix_intact)
                    report.valid_prefix_records = report.records_salvaged;
            } else {
                ++report.chunks_bad;
            }
            pos += kAtf2ChunkHeaderBytes + payload;
            continue;
        }

        // Lost framing: resynchronize at the next marker (island salvage).
        const size_t next = FindMarker(b, pos + 1);
        if (next == kNpos) {
            issue(pos, "lost framing; no further chunk markers (" +
                           std::to_string(b.size() - pos) +
                           " bytes skipped)");
            break;
        }
        issue(pos, "lost framing; resynchronized after " +
                       std::to_string(next - pos) + " bytes");
        pos = next;
    }
    return report;
}

bool
ScanReport::intact() const
{
    if (!recognized)
        return false;
    if (legacy_v1)
        return issues.empty();
    return sealed && chunks_bad == 0 && issues.empty() &&
           records_salvaged == footer_records;
}

std::string
ScanReport::ToString() const
{
    std::ostringstream os;
    os << "format:  ";
    if (!recognized)
        os << "unrecognized (no trace magic)\n";
    else if (legacy_v1)
        os << "legacy v1 (no checksums)\n";
    else if (sealed)
        os << "ATF2 sealed\n";
    else
        os << "ATF2 UNSEALED (no footer: the capture did not complete)\n";
    os << "bytes:   " << file_bytes << "\n";
    if (recognized && !legacy_v1)
        os << "chunks:  " << chunks_ok << " ok, " << chunks_bad << " bad\n";
    os << "records: " << records_salvaged << " salvageable";
    if (sealed)
        os << " of " << footer_records << " expected";
    os << " (intact prefix: " << valid_prefix_records << ")\n";
    if (!issues.empty()) {
        constexpr size_t kMaxListed = 20;
        os << "issues:  " << issues.size() << "\n";
        for (size_t i = 0; i < issues.size() && i < kMaxListed; ++i)
            os << "  @" << issues[i].offset << ": " << issues[i].error
               << "\n";
        if (issues.size() > kMaxListed)
            os << "  ... and " << issues.size() - kMaxListed << " more\n";
    }
    os << "status:  " << (intact() ? "intact" : "DAMAGED") << "\n";
    return os.str();
}

util::StatusOr<std::vector<Record>>
LoadTrace(const std::string& path, io::Vfs& vfs)
{
    util::StatusOr<std::unique_ptr<FileByteSource>> source =
        FileByteSource::Open(path, vfs);
    if (!source.ok())
        return source.status();

    std::vector<Record> records;
    const ScanReport report = ScanTrace(**source, &records);
    if (!report.recognized)
        return util::InvalidArgument("not an ATUM trace file: ", path);
    if (report.intact()) {
        if (report.legacy_v1)
            Warn("reading legacy v1 trace ", path,
                 " (no checksums; re-capture or --salvage to get ATF2)");
        return records;
    }
    const std::string first =
        report.issues.empty() ? "damaged" : report.issues[0].error;
    return util::DataLoss(path, ": ", first, " (",
                          report.records_salvaged,
                          " records salvageable; try atum-report --salvage)");
}

util::Status
WriteAtf2(ByteSink& out, const std::vector<Record>& records,
          const Atf2WriterOptions& options)
{
    Atf2Writer writer(out, options);
    for (const Record& r : records) {
        util::Status status = writer.Append(r);
        if (!status.ok())
            return status;
    }
    return writer.Seal();
}

}  // namespace atum::trace
