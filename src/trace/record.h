#ifndef ATUM_TRACE_RECORD_H_
#define ATUM_TRACE_RECORD_H_

/**
 * @file
 * The ATUM trace record: the 8-byte unit the microcode patch appends to the
 * reserved physical-memory buffer for every event of interest.
 *
 * Layout (little-endian when serialized):
 *   bytes 0..3  addr   virtual address (physical for kPte records)
 *   byte  4     type   RecordType
 *   byte  5     flags  bit0 kernel-mode, bits 2:1 log2(access size)
 *   bytes 6..7  info   pid (kCtxSwitch), vector (kException), else 0
 */

#include <cstdint>

#include "ucode/micro_op.h"

namespace atum::trace {

/** What a record describes. */
enum class RecordType : uint8_t {
    kIFetch = 0,     ///< instruction-stream fetch
    kRead = 1,       ///< data-stream read
    kWrite = 2,      ///< data-stream write
    kPte = 3,        ///< page-table entry reference (addr is physical)
    kCtxSwitch = 4,  ///< context switch; info = new pid, addr = PCB
    kTlbMiss = 5,    ///< translation-buffer miss; addr = faulting va
    kException = 6,  ///< exception/interrupt dispatch; info = vector
    kOpcode = 7,     ///< instruction decode marker; addr = pc, info = opcode
    kLoss = 8,       ///< capture gap; addr = records lost, info = event no.
    kDma = 9,        ///< DMA engine bus write; addr is physical
    kNumTypes = 10,
};

/** Flag bits in Record::flags. */
inline constexpr uint8_t kFlagKernel = 0x01;

struct Record {
    uint32_t addr = 0;
    RecordType type = RecordType::kRead;
    uint8_t flags = 0;
    uint16_t info = 0;

    bool kernel() const { return (flags & kFlagKernel) != 0; }
    /** Access size in bytes (1, 2 or 4); meaningful for memory records. */
    uint8_t size() const { return static_cast<uint8_t>(1u << ((flags >> 1) & 3)); }
    /** True for kIFetch/kRead/kWrite/kPte records. */
    bool IsMemory() const
    {
        return type == RecordType::kIFetch || type == RecordType::kRead ||
               type == RecordType::kWrite || type == RecordType::kPte;
    }

    bool operator==(const Record&) const = default;
};

/** Serialized record size in the trace buffer and trace files. */
inline constexpr uint32_t kRecordBytes = 8;

/** Builds the flags byte. */
uint8_t MakeFlags(bool kernel, uint8_t size_bytes);

/** Converts a microcode-level memory access into a trace record. */
Record FromMemAccess(const ucode::MemAccess& access);

/** Builds a context-switch marker record. */
Record MakeCtxSwitch(uint16_t pid, uint32_t pcb_pa);

/** Builds a TB-miss marker record. */
Record MakeTlbMiss(uint32_t vaddr, bool kernel);

/** Builds an exception-dispatch marker record. */
Record MakeException(uint8_t vector);

/** Builds an instruction-decode marker record. */
Record MakeOpcode(uint32_t pc, uint8_t opcode, bool kernel);

/**
 * Builds a capture-gap marker: `lost` records were dropped here because
 * the drain sink kept failing (HMTT-style, so consumers can detect the
 * gap and resynchronize instead of silently analyzing a torn stream).
 * `event` numbers the gaps within one capture.
 */
Record MakeLoss(uint32_t lost, uint16_t event);

/**
 * True when every field of `r` is an encoding this library can produce.
 * Raw v1 trace files carry no checksums, so a reader must vet each record
 * before trusting it (a corrupt type byte must not reach per-type arrays).
 */
bool IsPlausibleRecord(const Record& r);

/** Packs a record into 8 bytes (little-endian). */
void PackRecord(const Record& r, uint8_t out[kRecordBytes]);

/** Unpacks a record from 8 bytes. */
Record UnpackRecord(const uint8_t in[kRecordBytes]);

}  // namespace atum::trace

#endif  // ATUM_TRACE_RECORD_H_
