#ifndef ATUM_TRACE_COMPRESS_H_
#define ATUM_TRACE_COMPRESS_H_

/**
 * @file
 * Compact trace encoding.
 *
 * ATUM-era traces were precious: half a megabyte of reserved memory per
 * extraction and tapes for archival, so compact encodings mattered. This
 * codec exploits the structure full-system traces actually have — the
 * instruction stream advances by small strides, data references cluster —
 * by encoding each record as:
 *
 *   header byte:  type (3 bits) | kernel (1 bit) | log2 size (2 bits)
 *   address:      zigzag varint of (addr - previous addr of same type)
 *   info:         varint, only for types that carry it (kCtxSwitch,
 *                 kException)
 *
 * Typical full-system traces compress to ~2-3 bytes/record from the fixed
 * 8-byte form (see bench_a1_compression).
 */

#include <cstddef>
#include <cstdint>
#include <vector>

#include "trace/record.h"

namespace atum::trace {

/** Encodes `records` into the compact byte stream. */
std::vector<uint8_t> CompressTrace(const std::vector<Record>& records);

/** Decodes a stream produced by CompressTrace; Fatal on malformed input. */
std::vector<Record> DecompressTrace(const std::vector<uint8_t>& bytes);

/** Streaming encoder with the same format. */
class TraceCompressor
{
  public:
    /** Appends one record to the compressed stream. */
    void Append(const Record& record);

    const std::vector<uint8_t>& bytes() const { return bytes_; }
    uint64_t records() const { return records_; }
    /** Compressed bytes per record (8.0 = no gain over the raw format). */
    double BytesPerRecord() const;

  private:
    std::vector<uint8_t> bytes_;
    uint64_t records_ = 0;
    uint32_t last_addr_[static_cast<size_t>(RecordType::kNumTypes)] = {};
};

}  // namespace atum::trace

#endif  // ATUM_TRACE_COMPRESS_H_
