#include "trace/compress.h"

#include "util/logging.h"

namespace atum::trace {

namespace {

/** Maps signed deltas onto small unsigned values (0, -1, 1, -2, ...). */
uint32_t
ZigZag(int32_t v)
{
    return (static_cast<uint32_t>(v) << 1) ^
           static_cast<uint32_t>(v >> 31);
}

int32_t
UnZigZag(uint32_t v)
{
    return static_cast<int32_t>((v >> 1) ^ (~(v & 1) + 1));
}

void
PutVarint(std::vector<uint8_t>& out, uint32_t v)
{
    while (v >= 0x80) {
        out.push_back(static_cast<uint8_t>(v) | 0x80);
        v >>= 7;
    }
    out.push_back(static_cast<uint8_t>(v));
}

uint32_t
GetVarint(const std::vector<uint8_t>& in, size_t* pos)
{
    uint32_t v = 0;
    unsigned shift = 0;
    while (true) {
        if (*pos >= in.size())
            Fatal("truncated compressed trace");
        const uint8_t byte = in[(*pos)++];
        v |= static_cast<uint32_t>(byte & 0x7f) << shift;
        if (!(byte & 0x80))
            return v;
        shift += 7;
        if (shift > 28)
            Fatal("overlong varint in compressed trace");
    }
}

bool
TypeHasInfo(RecordType type)
{
    return type == RecordType::kCtxSwitch ||
           type == RecordType::kException || type == RecordType::kOpcode ||
           type == RecordType::kLoss;
}

}  // namespace

void
TraceCompressor::Append(const Record& record)
{
    const auto type_idx = static_cast<size_t>(record.type);
    if (type_idx >= static_cast<size_t>(RecordType::kNumTypes))
        Panic("bad record type ", type_idx);

    const uint8_t log2_size = static_cast<uint8_t>((record.flags >> 1) & 3);
    const uint8_t header =
        static_cast<uint8_t>(type_idx) |
        static_cast<uint8_t>(record.kernel() ? 0x10 : 0) |
        static_cast<uint8_t>(log2_size << 5);
    bytes_.push_back(header);

    const int32_t delta = static_cast<int32_t>(record.addr) -
                          static_cast<int32_t>(last_addr_[type_idx]);
    PutVarint(bytes_, ZigZag(delta));
    last_addr_[type_idx] = record.addr;

    if (TypeHasInfo(record.type))
        PutVarint(bytes_, record.info);
    ++records_;
}

double
TraceCompressor::BytesPerRecord()
    const
{
    return records_ == 0 ? 0.0
                         : static_cast<double>(bytes_.size()) /
                               static_cast<double>(records_);
}

std::vector<uint8_t>
CompressTrace(const std::vector<Record>& records)
{
    TraceCompressor compressor;
    for (const Record& r : records)
        compressor.Append(r);
    return compressor.bytes();
}

std::vector<Record>
DecompressTrace(const std::vector<uint8_t>& bytes)
{
    std::vector<Record> out;
    uint32_t last_addr[static_cast<size_t>(RecordType::kNumTypes)] = {};
    size_t pos = 0;
    while (pos < bytes.size()) {
        const uint8_t header = bytes[pos++];
        const auto type_idx = static_cast<size_t>(header & 0x0F);
        if (type_idx >= static_cast<size_t>(RecordType::kNumTypes))
            Fatal("bad record type in compressed trace");
        Record r;
        r.type = static_cast<RecordType>(type_idx);
        const bool kernel = (header & 0x10) != 0;
        const uint8_t log2_size = (header >> 5) & 3;
        if (log2_size > 2)
            Fatal("bad access size in compressed trace");
        r.flags = MakeFlags(kernel, static_cast<uint8_t>(1u << log2_size));

        const int32_t delta = UnZigZag(GetVarint(bytes, &pos));
        r.addr = static_cast<uint32_t>(
            static_cast<int32_t>(last_addr[type_idx]) + delta);
        last_addr[type_idx] = r.addr;

        if (TypeHasInfo(r.type))
            r.info = static_cast<uint16_t>(GetVarint(bytes, &pos));
        out.push_back(r);
    }
    return out;
}

}  // namespace atum::trace
