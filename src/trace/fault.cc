#include "trace/fault.h"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "util/rng.h"

namespace atum::trace {

std::string
FaultOp::ToString() const
{
    std::ostringstream os;
    switch (kind) {
      case Kind::kFailWrite:
        os << "fail-write@" << index;
        break;
      case Kind::kShortWrite:
        os << "short-write@" << index << " keep " << arg;
        break;
      case Kind::kFlipByte:
        os << "flip@" << index << " ^0x" << std::hex << arg;
        break;
      case Kind::kTruncateAt:
        os << "truncate@" << index;
        break;
      case Kind::kFailRead:
        os << "fail-read@" << index;
        break;
    }
    return os.str();
}

FaultPlan&
FaultPlan::FailWrite(uint64_t nth)
{
    ops.push_back({FaultOp::Kind::kFailWrite, nth, 0});
    return *this;
}

FaultPlan&
FaultPlan::ShortWrite(uint64_t nth, uint64_t keep_bytes)
{
    ops.push_back({FaultOp::Kind::kShortWrite, nth, keep_bytes});
    return *this;
}

FaultPlan&
FaultPlan::FlipByte(uint64_t offset, uint8_t xor_mask)
{
    ops.push_back({FaultOp::Kind::kFlipByte, offset, xor_mask});
    return *this;
}

FaultPlan&
FaultPlan::TruncateAt(uint64_t offset)
{
    ops.push_back({FaultOp::Kind::kTruncateAt, offset, 0});
    return *this;
}

FaultPlan&
FaultPlan::FailRead(uint64_t nth)
{
    ops.push_back({FaultOp::Kind::kFailRead, nth, 0});
    return *this;
}

FaultPlan
FaultPlan::Random(uint64_t seed, uint64_t stream_bytes, unsigned faults)
{
    Rng rng(seed * 0x9E3779B97F4A7C15ULL + 1);
    FaultPlan plan;
    for (unsigned i = 0; i < faults; ++i) {
        const uint64_t offset =
            stream_bytes == 0 ? 0 : rng.Next64() % stream_bytes;
        switch (rng.Below(4)) {
          case 0:
            plan.FailWrite(rng.Below(64));
            break;
          case 1:
            plan.ShortWrite(rng.Below(64), rng.Below(16));
            break;
          case 2:
            plan.FlipByte(offset, static_cast<uint8_t>(rng.Range(1, 255)));
            break;
          default:
            // Truncation past ~the tail half, so plans usually leave a
            // salvageable prefix (a truncate at 0 just tests "empty file").
            plan.TruncateAt(stream_bytes / 2 + offset / 2);
            break;
        }
    }
    return plan;
}

std::string
FaultPlan::ToString() const
{
    std::string s;
    for (const FaultOp& op : ops) {
        if (!s.empty())
            s += "; ";
        s += op.ToString();
    }
    return s.empty() ? "none" : s;
}

// ---------------------------------------------------------------------------
// FaultySink.

util::Status
FaultySink::Deliver(const uint8_t* data, size_t len)
{
    if (len == 0)
        return util::OkStatus();

    // Crash truncation: bytes at/after the cut vanish but the writer is
    // told everything succeeded — exactly what a dying machine does.
    uint64_t cut = UINT64_MAX;
    for (const FaultOp& op : plan_.ops)
        if (op.kind == FaultOp::Kind::kTruncateAt)
            cut = std::min(cut, op.index);

    const uint64_t start = offset_;
    offset_ += len;
    size_t keep = len;
    if (cut != UINT64_MAX && start + len > cut) {
        keep = cut > start ? static_cast<size_t>(cut - start) : 0;
        ++faults_fired_;
    }
    if (keep == 0)
        return util::OkStatus();

    // Byte flips inside this span: corrupt a private copy in flight.
    std::vector<uint8_t> flipped;
    const uint8_t* payload = data;
    for (const FaultOp& op : plan_.ops) {
        if (op.kind != FaultOp::Kind::kFlipByte || op.index < start ||
            op.index >= start + keep)
            continue;
        if (flipped.empty()) {
            flipped.assign(data, data + keep);
            payload = flipped.data();
        }
        flipped[static_cast<size_t>(op.index - start)] ^=
            static_cast<uint8_t>(op.arg);
        ++faults_fired_;
    }
    return base_.Write(payload, keep);
}

util::Status
FaultySink::Write(const void* data, size_t len)
{
    const uint64_t call = writes_++;
    for (const FaultOp& op : plan_.ops) {
        if (op.kind == FaultOp::Kind::kFailWrite && op.index == call) {
            ++faults_fired_;
            return util::Unavailable("injected fault: ", op.ToString());
        }
    }
    for (const FaultOp& op : plan_.ops) {
        if (op.kind == FaultOp::Kind::kShortWrite && op.index == call) {
            ++faults_fired_;
            const size_t keep =
                std::min<uint64_t>(op.arg, static_cast<uint64_t>(len));
            util::Status status =
                Deliver(static_cast<const uint8_t*>(data), keep);
            if (!status.ok())
                return status;
            return util::IoError("injected fault: ", op.ToString());
        }
    }
    return Deliver(static_cast<const uint8_t*>(data), len);
}

// ---------------------------------------------------------------------------
// FaultySource.

util::StatusOr<size_t>
FaultySource::Read(void* data, size_t len)
{
    const uint64_t call = reads_++;
    for (const FaultOp& op : plan_.ops) {
        if (op.kind == FaultOp::Kind::kFailRead && op.index == call) {
            ++faults_fired_;
            return util::Status(util::StatusCode::kIoError,
                                "injected fault: " + op.ToString());
        }
    }

    uint64_t cut = UINT64_MAX;
    for (const FaultOp& op : plan_.ops)
        if (op.kind == FaultOp::Kind::kTruncateAt)
            cut = std::min(cut, op.index);
    if (cut != UINT64_MAX) {
        if (offset_ >= cut)
            return size_t{0};  // injected EOF
        len = std::min<uint64_t>(len, cut - offset_);
    }

    util::StatusOr<size_t> got = base_.Read(data, len);
    if (!got.ok())
        return got;
    auto* bytes = static_cast<uint8_t*>(data);
    for (const FaultOp& op : plan_.ops) {
        if (op.kind != FaultOp::Kind::kFlipByte || op.index < offset_ ||
            op.index >= offset_ + *got)
            continue;
        bytes[static_cast<size_t>(op.index - offset_)] ^=
            static_cast<uint8_t>(op.arg);
        ++faults_fired_;
    }
    offset_ += *got;
    return got;
}

}  // namespace atum::trace
