#ifndef ATUM_TRACE_FAULT_H_
#define ATUM_TRACE_FAULT_H_

/**
 * @file
 * Deterministic fault injection for the trace I/O path.
 *
 * A FaultPlan is an explicit, ordered list of faults — fail the Nth
 * write, cut a write short, flip a byte in flight, or silently drop
 * everything past an offset (the crash model). FaultySink / FaultySource
 * interpose a plan on any ByteSink / ByteSource, so the same container
 * code that runs in production is exercised against every failure the
 * plan describes. Plans built from a seed are pure functions of that
 * seed: the fault-recovery bench and the corruption-matrix tests are
 * bit-reproducible.
 */

#include <cstdint>
#include <string>
#include <vector>

#include "trace/container.h"
#include "util/status.h"

namespace atum::trace {

/** One injected fault. */
struct FaultOp {
    enum class Kind : uint8_t {
        kFailWrite,   ///< write call `index` fails; nothing reaches the sink
        kShortWrite,  ///< write call `index` persists only `arg` bytes, then fails
        kFlipByte,    ///< stream byte at offset `index` is xor-ed with `arg`
        kTruncateAt,  ///< bytes at offset >= `index` silently vanish (crash)
        kFailRead,    ///< read call `index` fails
    };

    Kind kind = Kind::kFailWrite;
    uint64_t index = 0;  ///< call number (writes/reads) or byte offset
    uint64_t arg = 0;    ///< short-write byte count / xor mask

    std::string ToString() const;
};

/** An ordered fault list plus convenience builders. */
struct FaultPlan {
    std::vector<FaultOp> ops;

    FaultPlan& FailWrite(uint64_t nth);
    FaultPlan& ShortWrite(uint64_t nth, uint64_t keep_bytes);
    FaultPlan& FlipByte(uint64_t offset, uint8_t xor_mask = 0xFF);
    FaultPlan& TruncateAt(uint64_t offset);
    FaultPlan& FailRead(uint64_t nth);

    /**
     * A reproducible mixed plan: `faults` faults drawn over a stream of
     * roughly `stream_bytes`, fully determined by `seed`.
     */
    static FaultPlan Random(uint64_t seed, uint64_t stream_bytes,
                            unsigned faults);

    std::string ToString() const;
};

/** ByteSink wrapper that injects a FaultPlan's write-side faults. */
class FaultySink : public ByteSink
{
  public:
    FaultySink(ByteSink& base, FaultPlan plan)
        : base_(base), plan_(std::move(plan))
    {
    }

    util::Status Write(const void* data, size_t len) override;
    util::Status Flush() override { return base_.Flush(); }
    util::Status Close() override { return base_.Close(); }

    uint64_t writes() const { return writes_; }
    uint64_t bytes() const { return offset_; }
    uint64_t faults_fired() const { return faults_fired_; }

  private:
    ByteSink& base_;
    FaultPlan plan_;
    uint64_t writes_ = 0;      ///< write calls attempted so far
    uint64_t offset_ = 0;      ///< stream offset of the next byte
    uint64_t faults_fired_ = 0;

    /** Passes `len` bytes from `data` through flip/truncate faults. */
    util::Status Deliver(const uint8_t* data, size_t len);
};

/** ByteSource wrapper that injects a FaultPlan's read-side faults. */
class FaultySource : public ByteSource
{
  public:
    FaultySource(ByteSource& base, FaultPlan plan)
        : base_(base), plan_(std::move(plan))
    {
    }

    util::StatusOr<size_t> Read(void* data, size_t len) override;

    uint64_t faults_fired() const { return faults_fired_; }

  private:
    ByteSource& base_;
    FaultPlan plan_;
    uint64_t reads_ = 0;
    uint64_t offset_ = 0;
    uint64_t faults_fired_ = 0;
};

}  // namespace atum::trace

#endif  // ATUM_TRACE_FAULT_H_
