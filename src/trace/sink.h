#ifndef ATUM_TRACE_SINK_H_
#define ATUM_TRACE_SINK_H_

/**
 * @file
 * Trace consumers and producers: where drained trace-buffer contents go
 * (sinks) and where analyzers read records from (sources).
 *
 * Sinks report failure through Status instead of dying: the captured
 * trace is the single most valuable artifact this system produces, and a
 * full disk must never take the (simulated) machine down with it — the
 * tracer's drain path retries and degrades instead (core/atum_tracer.h).
 *
 * File-backed sinks write the checksummed ATF2 container
 * (trace/container.h); file sources read ATF2 and legacy v1.
 */

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.h"
#include "trace/container.h"
#include "trace/record.h"
#include "util/status.h"

namespace atum::trace {

/**
 * ByteSink decorator that meters the host-side write path: bytes and
 * write calls (`trace.sink.bytes`, `trace.sink.writes`), fsyncs
 * (`trace.sink.fsyncs`) and per-Write wall latency (`trace.sink.write_us`
 * log2-µs histogram), all in the global metrics registry. Pure
 * pass-through otherwise — statuses (including injected faults)
 * propagate unchanged.
 */
class MeteredByteSink : public ByteSink
{
  public:
    explicit MeteredByteSink(std::unique_ptr<ByteSink> inner);

    util::Status Write(const void* data, size_t len) override;
    util::Status Flush() override { return inner_->Flush(); }
    util::Status Sync() override;
    util::Status Close() override { return inner_->Close(); }

  private:
    std::unique_ptr<ByteSink> inner_;
    obs::Counter* bytes_;
    obs::Counter* writes_;
    obs::Counter* fsyncs_;
    obs::Histogram* write_us_;
};

/** Receives records drained from the trace buffer. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    /**
     * Accepts one record. A non-OK status means the record was NOT
     * consumed; the caller owns the retry/degrade decision and may call
     * again with the same record once the sink recovers.
     */
    virtual util::Status Append(const Record& record) = 0;
};

/** Accumulates records in memory. */
class VectorSink : public TraceSink
{
  public:
    util::Status Append(const Record& record) override
    {
        records_.push_back(record);
        return util::OkStatus();
    }

    const std::vector<Record>& records() const { return records_; }
    std::vector<Record> TakeRecords() { return std::move(records_); }

  private:
    std::vector<Record> records_;
};

/** Counts records without storing them (for long capacity runs). */
class CountingSink : public TraceSink
{
  public:
    util::Status Append(const Record&) override
    {
        ++count_;
        return util::OkStatus();
    }
    uint64_t count() const { return count_; }

  private:
    uint64_t count_ = 0;
};

/** Streams records into an ATF2 container file. */
class FileSink : public TraceSink
{
  public:
    /**
     * Opens `path` for writing; Fatal when the file cannot be created
     * (kept for the quickstart path — use Open() where a recoverable
     * error is wanted).
     */
    explicit FileSink(const std::string& path);

    /** Recoverable open; `vfs` selects the filesystem (chaos tests). */
    static util::StatusOr<std::unique_ptr<FileSink>> Open(
        const std::string& path, const Atf2WriterOptions& options = {},
        io::Vfs& vfs = io::RealVfs());

    /**
     * Re-opens an interrupted capture's trace file for continuation:
     * truncates it back to the checkpointed high-water mark and
     * reconstructs the container writer (including the open chunk's
     * buffered records) so continued appends are byte-identical to a
     * capture that was never interrupted.
     */
    static util::StatusOr<std::unique_ptr<FileSink>> OpenResumed(
        const std::string& path, const Atf2ResumeState& state,
        io::Vfs& vfs = io::RealVfs());

    /** Writes the container into an arbitrary byte sink (fault tests). */
    explicit FileSink(std::unique_ptr<ByteSink> out,
                      const Atf2WriterOptions& options = {});

    /** Closes (seal + fsync) if still open; failure is a warning only. */
    ~FileSink() override;

    FileSink(const FileSink&) = delete;
    FileSink& operator=(const FileSink&) = delete;

    /** Appends one record; after Close() returns failed-precondition. */
    util::Status Append(const Record& record) override;

    /**
     * Seals the container, fsyncs and closes the file. Idempotent: a
     * second Close() is a no-op returning the first outcome.
     */
    util::Status Close();

    uint64_t count() const { return writer_ ? writer_->records() : 0; }

    /** Bytes of durable container prefix so far — what a trace-byte
     *  quota meters (buffered open-chunk records not yet included). */
    uint64_t bytes_written() const
    {
        return writer_ ? writer_->bytes_written() : 0;
    }

    /**
     * Makes the durable prefix crash-safe (fsync) and returns the
     * writer's mid-stream state for a checkpoint. Called between drains;
     * fails after Close().
     */
    util::StatusOr<Atf2ResumeState> SaveState();

    /**
     * Publishes container-level tallies into `reg` as `trace.sink.*`
     * counters (records, chunks, file_bytes). The byte-path metrics
     * (bytes/writes/fsyncs/write_us) are event-driven via
     * MeteredByteSink and need no publishing.
     */
    void PublishMetrics(obs::Registry& reg) const;

  private:
    FileSink(std::unique_ptr<ByteSink> out, const Atf2ResumeState& state);

    std::unique_ptr<ByteSink> out_;
    std::unique_ptr<Atf2Writer> writer_;
    bool closed_ = false;
    util::Status close_status_;
};

/** Sequential record reader. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    /** Returns the next record, or nullopt at end of trace. */
    virtual std::optional<Record> Next() = 0;
};

/** Reads from an in-memory record vector (borrowed, not owned). */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(const std::vector<Record>& records)
        : records_(records)
    {
    }

    std::optional<Record> Next() override
    {
        if (pos_ >= records_.size())
            return std::nullopt;
        return records_[pos_++];
    }

    void Reset() { pos_ = 0; }

  private:
    const std::vector<Record>& records_;
    size_t pos_ = 0;
};

/**
 * Reads a trace file (ATF2 or legacy v1). Damage does not kill the
 * stream: Next() serves every checksum-verified record and then stops;
 * status() tells whether that end was a clean EOF (OK) or a tear
 * (data-loss), and report() has the per-chunk detail.
 */
class FileSource : public TraceSource
{
  public:
    static util::StatusOr<std::unique_ptr<FileSource>> Open(
        const std::string& path, io::Vfs& vfs = io::RealVfs());

    std::optional<Record> Next() override;

    /** OK while every record so far came from verified, complete data. */
    const util::Status& status() const { return status_; }
    const ScanReport& report() const { return report_; }
    bool legacy_v1() const { return report_.legacy_v1; }

  private:
    FileSource() = default;

    std::vector<Record> records_;
    size_t pos_ = 0;
    ScanReport report_;
    util::Status status_;
};

/**
 * Writes `records` to `path` as a sealed ATF2 container.
 * The returned status may be ignored by legacy callers; nothing aborts.
 */
util::Status WriteTraceFile(const std::string& path,
                            const std::vector<Record>& records);

/**
 * Reads an entire trace file into memory; Fatal on any error (legacy
 * convenience — prefer LoadTrace (trace/container.h) in new code).
 */
std::vector<Record> ReadTraceFile(const std::string& path);

}  // namespace atum::trace

#endif  // ATUM_TRACE_SINK_H_
