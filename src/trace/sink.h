#ifndef ATUM_TRACE_SINK_H_
#define ATUM_TRACE_SINK_H_

/**
 * @file
 * Trace consumers and producers: where drained trace-buffer contents go
 * (sinks) and where analyzers read records from (sources). Binary trace
 * files use an 8-byte magic header followed by packed records.
 */

#include <cstdint>
#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "trace/record.h"

namespace atum::trace {

/** Receives records drained from the trace buffer. */
class TraceSink
{
  public:
    virtual ~TraceSink() = default;
    virtual void Append(const Record& record) = 0;
};

/** Accumulates records in memory. */
class VectorSink : public TraceSink
{
  public:
    void Append(const Record& record) override
    {
        records_.push_back(record);
    }

    const std::vector<Record>& records() const { return records_; }
    std::vector<Record> TakeRecords() { return std::move(records_); }

  private:
    std::vector<Record> records_;
};

/** Counts records without storing them (for long capacity runs). */
class CountingSink : public TraceSink
{
  public:
    void Append(const Record&) override { ++count_; }
    uint64_t count() const { return count_; }

  private:
    uint64_t count_ = 0;
};

/** Streams packed records to a binary trace file. */
class FileSink : public TraceSink
{
  public:
    /** Opens `path` for writing and emits the header; Fatal on failure. */
    explicit FileSink(const std::string& path);
    ~FileSink() override;

    FileSink(const FileSink&) = delete;
    FileSink& operator=(const FileSink&) = delete;

    void Append(const Record& record) override;
    /** Flushes and closes; further Append calls are a Panic. */
    void Close();

    uint64_t count() const { return count_; }

  private:
    std::FILE* file_;
    uint64_t count_ = 0;
};

/** Sequential record reader. */
class TraceSource
{
  public:
    virtual ~TraceSource() = default;
    /** Returns the next record, or nullopt at end of trace. */
    virtual std::optional<Record> Next() = 0;
};

/** Reads from an in-memory record vector (borrowed, not owned). */
class VectorSource : public TraceSource
{
  public:
    explicit VectorSource(const std::vector<Record>& records)
        : records_(records)
    {
    }

    std::optional<Record> Next() override
    {
        if (pos_ >= records_.size())
            return std::nullopt;
        return records_[pos_++];
    }

    void Reset() { pos_ = 0; }

  private:
    const std::vector<Record>& records_;
    size_t pos_ = 0;
};

/** Reads a binary trace file produced by FileSink. */
class FileSource : public TraceSource
{
  public:
    /** Opens `path` and validates the header; Fatal on failure. */
    explicit FileSource(const std::string& path);
    ~FileSource() override;

    FileSource(const FileSource&) = delete;
    FileSource& operator=(const FileSource&) = delete;

    std::optional<Record> Next() override;

  private:
    std::FILE* file_;
};

/** Writes `records` to `path` in the binary trace format. */
void WriteTraceFile(const std::string& path,
                    const std::vector<Record>& records);

/** Reads an entire binary trace file into memory. */
std::vector<Record> ReadTraceFile(const std::string& path);

}  // namespace atum::trace

#endif  // ATUM_TRACE_SINK_H_
