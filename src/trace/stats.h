#ifndef ATUM_TRACE_STATS_H_
#define ATUM_TRACE_STATS_H_

/**
 * @file
 * Trace characterization: the per-trace summary statistics the ATUM paper
 * tabulated for each captured workload (reference counts by type, the
 * system/user split, write fraction, context-switch behaviour).
 */

#include <cstdint>
#include <map>
#include <string>

#include "trace/record.h"
#include "util/stats.h"

namespace atum::trace {

class TraceStats
{
  public:
    /** Feeds one record, in trace order (context tracking is stateful). */
    void Accumulate(const Record& record);

    uint64_t total() const { return total_; }
    uint64_t CountOf(RecordType type) const;
    /** Memory references only (ifetch + read + write + pte). */
    uint64_t mem_refs() const { return mem_refs_; }
    uint64_t kernel_refs() const { return kernel_refs_; }
    uint64_t user_refs() const { return mem_refs_ - kernel_refs_; }
    uint64_t context_switches() const;

    /** Fraction of memory references made in kernel mode, in [0,1]. */
    double KernelFraction() const;
    /** Fraction of data references (read+write) that are writes. */
    double WriteFraction() const;

    /** Memory references attributed to each pid (kernel refs under the
     *  pid that was running; pid 0 = before the first switch / kernel). */
    const std::map<uint16_t, uint64_t>& refs_by_pid() const
    {
        return refs_by_pid_;
    }

    /** Histogram of memory references between context switches. */
    const Log2Histogram& switch_interval_refs() const
    {
        return switch_interval_refs_;
    }

    /** Multi-line human-readable summary. */
    std::string ToString() const;

  private:
    uint64_t total_ = 0;
    uint64_t by_type_[static_cast<size_t>(RecordType::kNumTypes)] = {};
    uint64_t mem_refs_ = 0;
    uint64_t kernel_refs_ = 0;
    std::map<uint16_t, uint64_t> refs_by_pid_;
    uint16_t current_pid_ = 0;
    uint64_t refs_since_switch_ = 0;
    Log2Histogram switch_interval_refs_;
};

}  // namespace atum::trace

#endif  // ATUM_TRACE_STATS_H_
