#include "obs/flight.h"

#include <errno.h>
#include <fcntl.h>
#include <signal.h>
#include <string.h>
#include <time.h>
#include <unistd.h>

#include <atomic>

namespace atum::obs::flight {
namespace {

constexpr uint64_t kRingSlots = 256;  // power of two
constexpr uint64_t kRingMask = kRingSlots - 1;

struct FlightEvent {
    uint64_t mono_ns;
    uint32_t tid;
    char name[40];
    char detail[56];
    uint64_t a;
    uint64_t b;
};

FlightEvent g_ring[kRingSlots];
std::atomic<uint64_t> g_head{0};
char g_dump_path[512];
std::atomic<bool> g_armed{false};
std::atomic<bool> g_handlers_installed{false};

/** Small process-local thread ids, assigned on first Note. */
std::atomic<uint32_t> g_next_tid{1};
thread_local uint32_t t_flight_tid = 0;

uint32_t FlightTid()
{
    if (t_flight_tid == 0)
        t_flight_tid = g_next_tid.fetch_add(1, std::memory_order_relaxed);
    return t_flight_tid;
}

uint64_t NowNs(clockid_t clock)
{
    struct timespec ts;
    clock_gettime(clock, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

void BoundedCopy(char* dst, size_t cap, const char* src)
{
    size_t i = 0;
    if (src != nullptr)
        for (; i + 1 < cap && src[i] != '\0'; ++i) dst[i] = src[i];
    dst[i] = '\0';
}

// ---------------------------------------------------- signal-safe writer

/** Buffered writer over write(2); the buffer lives on the dump caller's
 *  stack, so concurrent dumps cannot interleave inside one buffer. */
struct RawWriter {
    explicit RawWriter(int f) : fd(f) {}

    int fd;
    char buf[4096];
    size_t len = 0;
    bool failed = false;

    void Flush()
    {
        size_t off = 0;
        while (off < len) {
            const ssize_t n = write(fd, buf + off, len - off);
            if (n < 0) {
                if (errno == EINTR) continue;
                failed = true;
                break;
            }
            off += static_cast<size_t>(n);
        }
        len = 0;
    }

    void Put(char c)
    {
        if (len == sizeof buf) Flush();
        buf[len++] = c;
    }

    void Str(const char* s)
    {
        for (; *s != '\0'; ++s) Put(*s);
    }

    void U64(uint64_t v)
    {
        char digits[20];
        int n = 0;
        do {
            digits[n++] = static_cast<char>('0' + v % 10);
            v /= 10;
        } while (v != 0);
        while (n > 0) Put(digits[--n]);
    }

    /** JSON string body: escapes quote/backslash, drops control bytes. */
    void Escaped(const char* s)
    {
        for (; *s != '\0'; ++s) {
            const unsigned char c = static_cast<unsigned char>(*s);
            if (c < 0x20) continue;
            if (c == '"' || c == '\\') Put('\\');
            Put(static_cast<char>(c));
        }
    }
};

void WriteEvent(RawWriter& w, const FlightEvent& event, bool first)
{
    if (!first) w.Put(',');
    w.Str("{\"mono_us\":");
    w.U64(event.mono_ns / 1000);
    w.Str(",\"tid\":");
    w.U64(event.tid);
    w.Str(",\"name\":\"");
    w.Escaped(event.name);
    w.Str("\",\"detail\":\"");
    w.Escaped(event.detail);
    w.Str("\",\"a\":");
    w.U64(event.a);
    w.Str(",\"b\":");
    w.U64(event.b);
    w.Put('}');
}

const char* SignalName(int sig)
{
    switch (sig) {
        case SIGSEGV: return "signal:SIGSEGV";
        case SIGBUS: return "signal:SIGBUS";
        case SIGILL: return "signal:SIGILL";
        case SIGFPE: return "signal:SIGFPE";
        case SIGABRT: return "signal:SIGABRT";
    }
    return "signal:?";
}

void CrashHandler(int sig)
{
    Note(SignalName(sig));
    DumpNow(SignalName(sig));
    // Restore the default disposition and re-raise so the process still
    // dies with the real signal (core dumps, wait status intact).
    signal(sig, SIG_DFL);
    raise(sig);
}

}  // namespace

void Note(const char* name, const char* detail, uint64_t a, uint64_t b)
{
    const uint64_t slot = g_head.fetch_add(1, std::memory_order_relaxed);
    FlightEvent& event = g_ring[slot & kRingMask];
    event.mono_ns = NowNs(CLOCK_MONOTONIC);
    event.tid = FlightTid();
    BoundedCopy(event.name, sizeof event.name, name);
    BoundedCopy(event.detail, sizeof event.detail, detail);
    event.a = a;
    event.b = b;
}

void SetDumpPath(const char* path)
{
    if (path == nullptr || path[0] == '\0' ||
        strlen(path) >= sizeof g_dump_path) {
        g_armed.store(false, std::memory_order_release);
        return;
    }
    BoundedCopy(g_dump_path, sizeof g_dump_path, path);
    g_armed.store(true, std::memory_order_release);
}

bool Armed()
{
    return g_armed.load(std::memory_order_acquire);
}

bool DumpNow(const char* reason)
{
    if (!Armed()) return false;
    const int fd =
        open(g_dump_path, O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
    if (fd < 0) return false;

    RawWriter w{fd};
    const uint64_t head = g_head.load(std::memory_order_relaxed);
    const uint64_t count = head < kRingSlots ? head : kRingSlots;

    w.Str("{\"schema\":\"atum-flight-v1\",\"reason\":\"");
    w.Escaped(reason != nullptr ? reason : "");
    w.Str("\",\"wall_ms\":");
    w.U64(NowNs(CLOCK_REALTIME) / 1'000'000);
    w.Str(",\"mono_us\":");
    w.U64(NowNs(CLOCK_MONOTONIC) / 1000);
    w.Str(",\"pid\":");
    w.U64(static_cast<uint64_t>(getpid()));
    w.Str(",\"dropped\":");
    w.U64(head - count);
    w.Str(",\"events\":[");
    for (uint64_t i = head - count; i < head; ++i)
        WriteEvent(w, g_ring[i & kRingMask], i == head - count);
    w.Str("]}\n");
    w.Flush();
    const bool ok = !w.failed;
    close(fd);
    return ok;
}

void InstallCrashHandler()
{
    bool expected = false;
    if (!g_handlers_installed.compare_exchange_strong(expected, true))
        return;
    struct sigaction action;
    memset(&action, 0, sizeof action);
    action.sa_handler = CrashHandler;
    sigemptyset(&action.sa_mask);
    for (const int sig : {SIGSEGV, SIGBUS, SIGILL, SIGFPE, SIGABRT})
        sigaction(sig, &action, nullptr);
}

void ResetForTest()
{
    g_head.store(0, std::memory_order_relaxed);
    g_armed.store(false, std::memory_order_release);
    g_dump_path[0] = '\0';
    memset(g_ring, 0, sizeof g_ring);
}

}  // namespace atum::obs::flight
