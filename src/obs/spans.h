#ifndef ATUM_OBS_SPANS_H_
#define ATUM_OBS_SPANS_H_

/**
 * @file
 * Causal span tracing + the sampling hot-path phase profiler.
 *
 * Two instruments share this header because they share one clock
 * (CLOCK_MONOTONIC, see MonotonicNowNs) and one consumer (the Chrome
 * trace-event / Perfetto JSON exporter):
 *
 *  1. **Spans** — begin/end scoped regions and point instants, recorded
 *     into lock-free thread-local overwrite-oldest rings. A span records
 *     two relaxed timestamps and a fixed-size payload; there is no
 *     allocation, no lock and no syscall on the record path. Rings are
 *     heap-allocated and owned by a process-wide collector so spans from
 *     exited pool workers survive until export. Collection is meant for
 *     quiescent points (tool shutdown, after joins): the collector reads
 *     live rings without synchronizing with their single writer, which is
 *     benign for a diagnostics dump but not for exact accounting.
 *
 *  2. **PhaseProfiler** — a 1-in-N sampling profiler the supervised run
 *     loop drives around each retired instruction. A sampled window
 *     attributes its wall time across phases (ucode dispatch, TB/MMU
 *     translate, memory, tracer append) via a flat innermost-wins phase
 *     stack; rare heavy sections inside a window (tracer drain,
 *     checkpoint publish) are timed *exactly* and excised from the
 *     sampled window (SkipTime) so scaling by N cannot multiply them.
 *     Single-threaded by design: only the supervisor loop touches it.
 *
 * Everything here compiles out with `-DATUM_TRACING=OFF`
 * (ATUM_TRACING_ENABLED=0): ScopedSpan becomes an empty object, the
 * record functions and PhaseProfiler methods become empty inlines, and
 * the hot paths carry exactly zero instructions. The export entry points
 * (CollectSpans/SpansToChromeJson/WriteSpansFile) keep working in both
 * modes — an OFF build writes a valid document with
 * `otherData.tracing == "off"` and no events, so tooling never needs to
 * know which build it is talking to.
 *
 * The always-on crash flight recorder lives separately in obs/flight.h;
 * span completions are mirrored into it once a dump path is armed.
 */

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "io/vfs.h"
#include "util/status.h"

#ifndef ATUM_TRACING_ENABLED
#define ATUM_TRACING_ENABLED 1
#endif

namespace atum::obs {

/**
 * Nanoseconds on CLOCK_MONOTONIC. Async-signal-safe (POSIX lists
 * clock_gettime) and shared by spans, the phase profiler, the flight
 * recorder and the StatsEmitter `mono_us` field — one time axis for
 * every telemetry stream this process emits.
 */
uint64_t MonotonicNowNs();

/** One completed span or instant, as stored in a ring slot. */
struct SpanEvent {
    const char* name = nullptr;      ///< interned string literal
    const char* category = nullptr;  ///< interned string literal
    uint64_t start_ns = 0;           ///< MonotonicNowNs at begin
    uint64_t dur_ns = 0;             ///< 0 and kind==kInstant for instants
    uint32_t tid = 0;                ///< small process-local thread id
    uint8_t kind = 0;                ///< 0 = complete ("X"), 1 = instant ("i")
    /** Optional dynamic label (sweep config, job id); "" when unused. */
    char detail[48] = {0};
    const char* arg_name0 = nullptr;  ///< optional named u64 args
    uint64_t arg0 = 0;
    const char* arg_name1 = nullptr;
    uint64_t arg1 = 0;
};

/** Everything CollectSpans hands the exporter. */
struct SpanDump {
    std::vector<SpanEvent> events;  ///< sorted by start_ns
    /** tid → human name ("main", "pool-worker", ...). */
    std::vector<std::pair<uint32_t, std::string>> threads;
    uint64_t recorded = 0;  ///< total ever recorded, across all rings
    uint64_t dropped = 0;   ///< overwritten by ring wraparound
};

/**
 * Serializes a dump as Chrome trace-event JSON (catapult / Perfetto
 * "JSON trace" format): process/thread metadata events plus "X" and "i"
 * events with microsecond ts/dur relative to the earliest span.
 * `otherData` carries tool name, tracing on/off, the monotonic and
 * wall-clock anchors, and recorded/dropped totals.
 */
std::string SpansToChromeJson(const SpanDump& dump,
                              const std::string& process_name);

/** CollectSpans + SpansToChromeJson + one Create/Write/Sync/Close. */
util::Status WriteSpansFile(const std::string& path,
                            const std::string& process_name,
                            io::Vfs& vfs = io::RealVfs());

/**
 * The hot-path phases the profiler attributes time across. The first
 * four are *sampled* (accumulated inside 1-in-N instruction windows,
 * scaled by N when read); the last three are *exact* (timed at every
 * occurrence — they are rare and heavy, the worst case for sampling).
 */
enum class Phase : uint8_t {
    kDispatch = 0,    ///< ucode fetch/decode/execute + supervision checks
    kTranslate = 1,   ///< TB/MMU address translation
    kMemory = 2,      ///< guest memory reads/writes
    kTracer = 3,      ///< trace-record append (FireMemAccess fan-out)
    kDrain = 4,       ///< tracer ring drain to the sink (exact)
    kCheckpoint = 5,  ///< checkpoint publish (exact)
    kIo = 6,          ///< metrics emit + manifest I/O (exact)
};
inline constexpr int kPhaseCount = 7;

/** Stable lower-case name ("dispatch", "translate", ...). */
const char* PhaseName(Phase phase);

#if ATUM_TRACING_ENABLED

/** Runtime kill switch for span recording (default on when compiled
 *  in). Lets one binary measure its own tracing overhead. */
void SetSpansEnabled(bool enabled);
bool SpansEnabled();

/** Names the calling thread in exports ("pool-worker", "serve-conn"). */
void SetCurrentThreadName(const char* name);

/** Records a completed span ending now-ish; called by ~ScopedSpan. */
void RecordSpan(const char* category, const char* name, uint64_t start_ns,
                uint64_t dur_ns, const char* detail, const char* arg_name0,
                uint64_t arg0, const char* arg_name1, uint64_t arg1);

/** Records a zero-duration instant ("job submitted"). */
void RecordInstant(const char* category, const char* name,
                   const char* detail = nullptr, const char* arg_name0 = nullptr,
                   uint64_t arg0 = 0);

/**
 * Snapshots every ring (live and orphaned), oldest-first per ring,
 * merged and sorted by start time. Meant for quiescent points.
 */
SpanDump CollectSpans();

/** Test hooks: ring capacity (power of two) and a full reset. */
void SetSpanRingLog2ForTest(int log2_capacity);
void ResetSpansForTest();

class ScopedSpan
{
  public:
    ScopedSpan(const char* category, const char* name)
        : category_(category), name_(name),
          start_ns_(SpansEnabled() ? MonotonicNowNs() : 0)
    {
    }

    ~ScopedSpan() { Close(); }

    ScopedSpan(const ScopedSpan&) = delete;
    ScopedSpan& operator=(const ScopedSpan&) = delete;

    /** Ends the span before scope exit (idempotent). */
    void Close()
    {
        if (start_ns_ != 0) {
            RecordSpan(category_, name_, start_ns_,
                       MonotonicNowNs() - start_ns_,
                       detail_[0] ? detail_ : nullptr, arg_name_[0],
                       arg_[0], arg_name_[1], arg_[1]);
            start_ns_ = 0;
        }
    }

    /** Attaches a dynamic label (truncated to the slot payload). */
    void set_detail(const char* detail)
    {
        if (start_ns_ == 0 || detail == nullptr) return;
        std::strncpy(detail_, detail, sizeof detail_ - 1);
        detail_[sizeof detail_ - 1] = '\0';
    }
    void set_detail(const std::string& detail) { set_detail(detail.c_str()); }

    /** Attaches up to two named u64 args (extra calls are dropped). */
    void set_arg(const char* name, uint64_t value)
    {
        for (int i = 0; i < 2; ++i) {
            if (arg_name_[i] == nullptr) {
                arg_name_[i] = name;
                arg_[i] = value;
                return;
            }
        }
    }

  private:
    const char* category_;
    const char* name_;
    uint64_t start_ns_;
    char detail_[48] = {0};
    const char* arg_name_[2] = {nullptr, nullptr};
    uint64_t arg_[2] = {0, 0};
};

/**
 * The 1-in-N sampling phase profiler. Owned and driven by exactly one
 * thread (the supervised run loop); see the file comment for the model.
 */
class PhaseProfiler
{
  public:
    /** Samples 1 in (1 << sample_shift) instruction windows. */
    explicit PhaseProfiler(int sample_shift = 6);

    /** Marks the start/end of the measured run (for coverage math). */
    void BeginRun();
    void EndRun();

    /**
     * Opens an instruction window 1 time in N; returns whether this one
     * is sampled. While a window is open, sampling() is true and
     * Enter/Exit attribute time to nested phases; the remainder of the
     * window lands in kDispatch.
     */
    bool BeginSample()
    {
        if ((tick_++ & mask_) != 0) return false;
        ++samples_taken_;
        sampling_ = true;
        depth_ = 1;
        stack_[0] = Phase::kDispatch;
        last_ts_ = Now();
        return true;
    }

    void EndSample()
    {
        if (!sampling_) return;
        Accumulate();
        sampling_ = false;
    }

    /** Cheap guard for instrumented hot paths. */
    bool sampling() const { return sampling_; }

    /** Innermost-wins phase nesting inside a sampled window. */
    void Enter(Phase phase)
    {
        if (!sampling_ || depth_ >= kMaxDepth) return;
        Accumulate();
        stack_[depth_++] = phase;
    }

    void Exit()
    {
        if (!sampling_ || depth_ <= 1) return;
        Accumulate();
        --depth_;
    }

    /** Exact accounting for rare heavy sections (drain, checkpoint). */
    void AddExact(Phase phase, uint64_t ns)
    {
        exact_ns_[static_cast<int>(phase)] += ns;
    }

    /**
     * Excises `ns` from the open sampled window — called right after an
     * exactly-timed section that ran inside it, so scaling by N cannot
     * count the same nanoseconds N times.
     */
    void SkipTime(uint64_t ns)
    {
        if (sampling_) last_ts_ += ns;
    }

    struct Row {
        Phase phase;
        const char* name;    ///< PhaseName(phase)
        uint64_t ns;         ///< estimate (sampled phases) or exact total
        bool sampled;        ///< statistical estimate vs exact timing
    };

    /**
     * Per-phase totals. Sampled phases are estimated gprof-style: the
     * windows' relative proportions, anchored to the wall time left
     * after the exactly-timed sections (drains, checkpoints, I/O).
     */
    std::vector<Row> Breakdown() const;

    /** Wall nanoseconds between BeginRun and EndRun (or now). */
    uint64_t run_ns() const;

    /** Σ Breakdown ns / run_ns — how much wall time is attributed. */
    double CoverageFraction() const;

    /** Sampled windows opened so far. */
    uint64_t samples() const { return samples_taken_; }

    int sample_shift() const { return shift_; }

    /** Deterministic-clock seam for tests; null restores the default. */
    static void SetClockForTest(uint64_t (*now_ns)());

  private:
    static constexpr int kMaxDepth = 8;

    static uint64_t Now();

    void Accumulate()
    {
        const uint64_t now = Now();
        // Each attribution boundary pays one clock read; subtracting the
        // calibrated read cost keeps the ×N-scaled estimate from
        // inflating sampled windows with the profiler's own overhead.
        uint64_t delta = now - last_ts_;
        delta = delta > clock_cost_ns_ ? delta - clock_cost_ns_ : 0;
        sampled_ns_[static_cast<int>(stack_[depth_ - 1])] += delta;
        last_ts_ = now;
    }

    int shift_;
    uint64_t mask_;
    uint64_t tick_ = 0;
    uint64_t samples_taken_ = 0;
    bool sampling_ = false;
    int depth_ = 0;
    Phase stack_[kMaxDepth] = {};
    uint64_t last_ts_ = 0;
    uint64_t clock_cost_ns_ = 0;
    uint64_t run_begin_ns_ = 0;
    uint64_t run_end_ns_ = 0;
    uint64_t sampled_ns_[kPhaseCount] = {0};
    uint64_t exact_ns_[kPhaseCount] = {0};
};

#else  // !ATUM_TRACING_ENABLED — every record path is an empty inline.

inline void SetSpansEnabled(bool) {}
inline bool SpansEnabled() { return false; }
inline void SetCurrentThreadName(const char*) {}
inline void RecordSpan(const char*, const char*, uint64_t, uint64_t,
                       const char*, const char*, uint64_t, const char*,
                       uint64_t)
{
}
inline void RecordInstant(const char*, const char*, const char* = nullptr,
                          const char* = nullptr, uint64_t = 0)
{
}
inline SpanDump CollectSpans() { return {}; }
inline void SetSpanRingLog2ForTest(int) {}
inline void ResetSpansForTest() {}

class ScopedSpan
{
  public:
    ScopedSpan(const char*, const char*) {}
    void Close() {}
    void set_detail(const char*) {}
    void set_detail(const std::string&) {}
    void set_arg(const char*, uint64_t) {}
};

class PhaseProfiler
{
  public:
    explicit PhaseProfiler(int = 6) {}
    void BeginRun() {}
    void EndRun() {}
    bool BeginSample() { return false; }
    void EndSample() {}
    bool sampling() const { return false; }
    void Enter(Phase) {}
    void Exit() {}
    void AddExact(Phase, uint64_t) {}
    void SkipTime(uint64_t) {}
    struct Row {
        Phase phase;
        const char* name;
        uint64_t ns;
        bool sampled;
    };
    std::vector<Row> Breakdown() const { return {}; }
    uint64_t run_ns() const { return 0; }
    double CoverageFraction() const { return 0.0; }
    uint64_t samples() const { return 0; }
    int sample_shift() const { return 0; }
    static void SetClockForTest(uint64_t (*)()) {}
};

#endif  // ATUM_TRACING_ENABLED

// Span macros expand to a ScopedSpan, which is an empty object in OFF
// builds — callers never need #ifdefs.
#define ATUM_SPAN_CONCAT2_(a, b) a##b
#define ATUM_SPAN_CONCAT_(a, b) ATUM_SPAN_CONCAT2_(a, b)
/** Anonymous scoped span covering the rest of the enclosing block. */
#define ATUM_SPAN(category, name) \
    ::atum::obs::ScopedSpan ATUM_SPAN_CONCAT_(atum_span_, \
                                              __COUNTER__)(category, name)
/** Named scoped span, for set_detail/set_arg. */
#define ATUM_SPAN_NAMED(var, category, name) \
    ::atum::obs::ScopedSpan var(category, name)

}  // namespace atum::obs

#endif  // ATUM_OBS_SPANS_H_
