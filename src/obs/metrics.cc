#include "obs/metrics.h"

#include <sstream>

namespace atum::obs {

uint64_t
HistogramSnapshot::ValueAtQuantile(double q) const
{
    if (count == 0)
        return 0;
    if (q < 0.0)
        q = 0.0;
    if (q > 1.0)
        q = 1.0;
    // Rank of the target sample, 1-based; ceil without float error.
    uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(count));
    if (rank == 0)
        rank = 1;
    uint64_t seen = 0;
    for (const auto& [index, n] : buckets) {
        seen += n;
        if (seen >= rank)
            return Histogram::BucketUpperBound(index);
    }
    return Histogram::BucketUpperBound(buckets.back().first);
}

std::string
RegistrySnapshot::ToText() const
{
    std::ostringstream os;
    for (const auto& [name, value] : counters)
        os << name << " = " << value << "\n";
    for (const auto& [name, value] : gauges)
        os << name << " = " << value << "\n";
    for (const auto& [name, h] : histograms) {
        os << name << ": count=" << h.count << " sum=" << h.sum
           << " p50=" << h.p50() << " p99=" << h.p99() << "\n";
    }
    return os.str();
}

namespace {

/** "serve.jobs.admitted" -> "atum_serve_jobs_admitted". */
std::string
PrometheusName(const std::string& name)
{
    std::string out = "atum_";
    for (const char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9');
        out += ok ? c : '_';
    }
    return out;
}

}  // namespace

std::string
RegistrySnapshot::ToPrometheusText() const
{
    std::ostringstream os;
    for (const auto& [name, value] : counters) {
        const std::string p = PrometheusName(name);
        os << "# TYPE " << p << "_total counter\n";
        os << p << "_total " << value << "\n";
    }
    for (const auto& [name, value] : gauges) {
        const std::string p = PrometheusName(name);
        os << "# TYPE " << p << " gauge\n";
        os << p << " " << value << "\n";
    }
    for (const auto& [name, h] : histograms) {
        const std::string p = PrometheusName(name);
        os << "# TYPE " << p << " histogram\n";
        uint64_t cumulative = 0;
        for (const auto& [index, n] : h.buckets) {
            cumulative += n;
            os << p << "_bucket{le=\""
               << Histogram::BucketUpperBound(index) << "\"} "
               << cumulative << "\n";
        }
        os << p << "_bucket{le=\"+Inf\"} " << h.count << "\n";
        os << p << "_sum " << h.sum << "\n";
        os << p << "_count " << h.count << "\n";
    }
    return os.str();
}

Counter&
Registry::GetCounter(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Counter>& slot = counters_[name];
    if (!slot)
        slot = std::make_unique<Counter>();
    return *slot;
}

Gauge&
Registry::GetGauge(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Gauge>& slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<Gauge>();
    return *slot;
}

Histogram&
Registry::GetHistogram(const std::string& name)
{
    std::lock_guard<std::mutex> lock(mu_);
    std::unique_ptr<Histogram>& slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<Histogram>();
    return *slot;
}

RegistrySnapshot
Registry::Snapshot() const
{
    RegistrySnapshot snap;
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& [name, counter] : counters_)
        snap.counters.emplace(name, counter->value());
    for (const auto& [name, gauge] : gauges_)
        snap.gauges.emplace(name, gauge->value());
    for (const auto& [name, hist] : histograms_) {
        HistogramSnapshot h;
        h.count = hist->count();
        h.sum = hist->sum();
        for (unsigned i = 0; i < Histogram::kBuckets; ++i) {
            if (const uint64_t n = hist->BucketCount(i); n != 0)
                h.buckets.emplace_back(i, n);
        }
        snap.histograms.emplace(name, std::move(h));
    }
    return snap;
}

void
Registry::Reset()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, counter] : counters_)
        counter->Set(0);
    for (auto& [name, gauge] : gauges_)
        gauge->Set(0);
    for (auto& [name, hist] : histograms_)
        hist->Reset();
}

Registry&
Registry::Global()
{
    static Registry* registry = new Registry;
    return *registry;
}

}  // namespace atum::obs
