#ifndef ATUM_OBS_METRICS_H_
#define ATUM_OBS_METRICS_H_

/**
 * @file
 * The metrics registry: named counters, gauges and log2-bucket histograms
 * shared by every layer of the capture/replay stack.
 *
 * Design constraints, in order:
 *
 *  1. Lock-cheap. Instrument updates are single relaxed atomic RMWs; the
 *     registry mutex is touched only on first lookup of a name (layers
 *     cache the returned reference) and on snapshot. Nothing on a hot
 *     path blocks, and concurrent updates from replay workers are exact.
 *
 *  2. TSan-clean. All cross-thread data flow goes through std::atomic.
 *     A snapshot taken while writers are mid-update observes each value
 *     atomically (no torn reads); counter totals are monotone between
 *     snapshots.
 *
 *  3. Removable. `-DATUM_METRICS=OFF` compiles every update to nothing,
 *     which is the baseline the 3%-overhead budget in ISSUE 4 is measured
 *     against. The registry and emitter still exist (they just report
 *     zeros) so no call site needs #ifdefs.
 *
 * Update semantics by layer (documented in docs/METRICS.md):
 *  - event counters (`Add`) accumulate process-wide across instances —
 *    used by cold paths (drains, chunk flushes, sweep configs);
 *  - published counters/gauges (`Set`) mirror a live object's internal
 *    tally at snapshot time — used for per-instruction tallies that are
 *    too hot to update atomically (cpu.*, mmu.*).
 */

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#ifndef ATUM_METRICS_ENABLED
#define ATUM_METRICS_ENABLED 1
#endif

namespace atum::obs {

/** A monotonically-increasing (or published) 64-bit counter. */
class Counter
{
  public:
    void Add(uint64_t delta = 1)
    {
#if ATUM_METRICS_ENABLED
        value_.fetch_add(delta, std::memory_order_relaxed);
#else
        (void)delta;
#endif
    }

    /** Publishes an externally-maintained tally (see file comment). */
    void Set(uint64_t value)
    {
#if ATUM_METRICS_ENABLED
        value_.store(value, std::memory_order_relaxed);
#else
        (void)value;
#endif
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<uint64_t> value_{0};
};

/** A point-in-time signed value (queue depth, degraded flag, slack). */
class Gauge
{
  public:
    void Set(int64_t value)
    {
#if ATUM_METRICS_ENABLED
        value_.store(value, std::memory_order_relaxed);
#else
        (void)value;
#endif
    }

    void Add(int64_t delta)
    {
#if ATUM_METRICS_ENABLED
        value_.fetch_add(delta, std::memory_order_relaxed);
#else
        (void)delta;
#endif
    }

    int64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

  private:
    std::atomic<int64_t> value_{0};
};

/**
 * A log2-bucketed histogram of non-negative integer samples (latencies
 * in microseconds, sizes in bytes). Bucket i counts samples in
 * [2^i, 2^(i+1)); samples 0 and 1 both land in bucket 0, matching
 * util::Log2Histogram. Concurrent Adds are exact (each bucket and the
 * count/sum are independent relaxed atomics); a concurrent snapshot may
 * observe a sample in `count` before `sum` or vice versa, which is the
 * documented (and tested) consistency: each field is itself torn-free.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    void Add(uint64_t sample)
    {
#if ATUM_METRICS_ENABLED
        buckets_[BucketOf(sample)].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
        sum_.fetch_add(sample, std::memory_order_relaxed);
#else
        (void)sample;
#endif
    }

    uint64_t count() const { return count_.load(std::memory_order_relaxed); }
    uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
    uint64_t BucketCount(unsigned i) const
    {
        return i < kBuckets ? buckets_[i].load(std::memory_order_relaxed)
                            : 0;
    }

    /**
     * Zeroes every field. Only meaningful while no concurrent Adds are
     * in flight (test/bench isolation); a racing Add may survive or be
     * split across fields, but each store is still atomic.
     */
    void Reset()
    {
        for (auto& b : buckets_)
            b.store(0, std::memory_order_relaxed);
        count_.store(0, std::memory_order_relaxed);
        sum_.store(0, std::memory_order_relaxed);
    }

    /** Bucket index of a sample: floor(log2(max(sample, 1))). */
    static unsigned BucketOf(uint64_t sample)
    {
        if (sample < 2)
            return 0;
        return 63u - static_cast<unsigned>(__builtin_clzll(sample));
    }

    /** Inclusive upper bound of bucket i (2^(i+1) - 1). */
    static uint64_t BucketUpperBound(unsigned i)
    {
        return i >= 63 ? UINT64_MAX : (uint64_t{2} << i) - 1;
    }

  private:
    std::atomic<uint64_t> buckets_[kBuckets] = {};
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_{0};
};

/** Point-in-time copy of one histogram (only non-empty buckets kept). */
struct HistogramSnapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    /** (bucket index, count) pairs, ascending by index. */
    std::vector<std::pair<unsigned, uint64_t>> buckets;

    /**
     * Upper bound of the bucket containing the q-th quantile sample
     * (q in [0,1]); 0 when empty. Log2 buckets bound the estimate to a
     * factor of two, which is plenty for drain/write latency dashboards.
     */
    uint64_t ValueAtQuantile(double q) const;
    uint64_t p50() const { return ValueAtQuantile(0.50); }
    uint64_t p99() const { return ValueAtQuantile(0.99); }
};

/** Point-in-time copy of a whole registry, sorted by name. */
struct RegistrySnapshot {
    std::map<std::string, uint64_t> counters;
    std::map<std::string, int64_t> gauges;
    std::map<std::string, HistogramSnapshot> histograms;

    /** Multi-line human-readable rendering (atum-report --stats). */
    std::string ToText() const;

    /**
     * Prometheus text exposition (version 0.0.4) of the snapshot, the
     * body atum-serve's metrics endpoint returns. Dots in atum metric
     * names become underscores ("serve.jobs.admitted" ->
     * "atum_serve_jobs_admitted"); counters get a `_total` suffix,
     * histograms emit cumulative `_bucket{le="..."}` series plus
     * `_sum`/`_count`, gauges pass through.
     */
    std::string ToPrometheusText() const;
};

/**
 * Owns every named instrument. Lookup creates on first use and returns a
 * reference that stays valid for the registry's lifetime, so layers
 * resolve names once (constructor) and update lock-free thereafter.
 */
class Registry
{
  public:
    Counter& GetCounter(const std::string& name);
    Gauge& GetGauge(const std::string& name);
    Histogram& GetHistogram(const std::string& name);

    RegistrySnapshot Snapshot() const;

    /** Resets every instrument to zero (tests and bench isolation). */
    void Reset();

    /** The process-wide default registry. */
    static Registry& Global();

  private:
    mutable std::mutex mu_;
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

}  // namespace atum::obs

#endif  // ATUM_OBS_METRICS_H_
