#include "obs/stats_emitter.h"

#include <cerrno>
#include <chrono>
#include <cstring>

#include "obs/spans.h"
#include "util/json.h"
#include "util/logging.h"

namespace atum::obs {

uint64_t
WallClockMs()
{
    using namespace std::chrono;
    return static_cast<uint64_t>(
        duration_cast<milliseconds>(system_clock::now().time_since_epoch())
            .count());
}

namespace {

void
AppendSnapshotFields(util::JsonWriter& w, const RegistrySnapshot& snapshot)
{
    w.Key("counters");
    w.BeginObject();
    for (const auto& [name, value] : snapshot.counters)
        w.KeyValue(name, value);
    w.EndObject();

    w.Key("gauges");
    w.BeginObject();
    for (const auto& [name, value] : snapshot.gauges)
        w.KeyValue(name, value);
    w.EndObject();

    w.Key("histograms");
    w.BeginObject();
    for (const auto& [name, h] : snapshot.histograms) {
        w.Key(name);
        w.BeginObject();
        w.KeyValue("count", h.count);
        w.KeyValue("sum", h.sum);
        w.KeyValue("p50", h.p50());
        w.KeyValue("p99", h.p99());
        w.Key("buckets");
        w.BeginArray();
        for (const auto& [index, n] : h.buckets) {
            w.BeginArray();
            w.Value(index);
            w.Value(n);
            w.EndArray();
        }
        w.EndArray();
        w.EndObject();
    }
    w.EndObject();
}

}  // namespace

std::string
SnapshotToJsonLine(const RegistrySnapshot& snapshot, uint64_t seq,
                   uint64_t ts_ms, uint64_t mono_us,
                   const std::string& phase)
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("schema", "atum-metrics-v1");
    w.KeyValue("seq", seq);
    w.KeyValue("ts_ms", ts_ms);
    w.KeyValue("mono_us", mono_us);
    w.KeyValue("phase", phase);
    AppendSnapshotFields(w, snapshot);
    w.EndObject();
    return w.TakeStr();
}

StatsEmitter::StatsEmitter(std::FILE* file, std::string path,
                           Registry& registry,
                           const StatsEmitterOptions& options)
    : file_(file),
      path_(std::move(path)),
      registry_(registry),
      options_(options)
{
}

util::StatusOr<std::unique_ptr<StatsEmitter>>
StatsEmitter::Open(const std::string& path, Registry& registry,
                   const StatsEmitterOptions& options)
{
    std::FILE* file = std::fopen(path.c_str(), "wb");
    if (!file)
        return util::IoError("cannot open metrics file ", path, ": ",
                             std::strerror(errno));
    return std::unique_ptr<StatsEmitter>(
        new StatsEmitter(file, path, registry, options));
}

StatsEmitter::~StatsEmitter()
{
    if (file_)
        std::fclose(file_);
}

void
StatsEmitter::Emit(const std::string& phase)
{
    if (!status_.ok())
        return;  // sticky failure: stop touching a dead file
    const uint64_t now =
        options_.now_ms ? options_.now_ms() : WallClockMs();
    // Both clocks on every line: ts_ms joins runs across machines,
    // mono_us joins this line with span timelines and flight dumps.
    const std::string line = SnapshotToJsonLine(
        registry_.Snapshot(), seq_, now, MonotonicNowNs() / 1000, phase);
    ++seq_;
    // One line, flushed whole, so a tailer never sees a torn document.
    if (std::fprintf(file_, "%s\n", line.c_str()) < 0 ||
        std::fflush(file_) != 0) {
        status_ = util::IoError("writing metrics to ", path_, ": ",
                                std::strerror(errno));
        Warn("metrics emission disabled: ", status_.ToString());
        return;
    }
    ++lines_;
    last_emit_ms_ = now;
}

void
StatsEmitter::MaybeEmit(const std::string& phase)
{
    const uint64_t now =
        options_.now_ms ? options_.now_ms() : WallClockMs();
    if (lines_ != 0 && now - last_emit_ms_ < options_.interval_ms)
        return;
    Emit(phase);
}

util::Status
WriteRunManifest(const std::string& path, const RunManifest& manifest,
                 io::Vfs& vfs)
{
    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("schema", "atum-run-v1");
    w.KeyValue("tool", manifest.tool);
    w.KeyValue("version", manifest.version);
    w.KeyValue("build", manifest.build_type);
    w.KeyValue("trace", manifest.trace_path);
    w.KeyValue("started_ms", manifest.started_ms);
    w.KeyValue("ended_ms", manifest.ended_ms);
    w.KeyValue("exit_code", static_cast<int64_t>(manifest.exit_code));
    w.KeyValue("stop_cause", manifest.stop_cause);
    if (!manifest.phase_ns.empty()) {
        w.Key("phases");
        w.BeginObject();
        for (const auto& [name, ns] : manifest.phase_ns)
            w.KeyValue(name + "_ms", static_cast<double>(ns) / 1e6);
        w.KeyValue("coverage_pct", manifest.phase_coverage_pct);
        w.EndObject();
    }
    w.Key("config");
    w.BeginObject();
    for (const auto& [key, value] : manifest.config)
        w.KeyValue(key, value);
    w.EndObject();
    AppendSnapshotFields(w, manifest.finals);
    w.EndObject();

    const std::string body = w.str() + "\n";
    const std::string tmp = path + ".tmp";
    {
        util::StatusOr<std::unique_ptr<io::WritableFile>> file =
            vfs.Create(tmp);
        if (!file.ok())
            return file.status();
        util::Status status = (*file)->Write(body.data(), body.size());
        if (status.ok())
            status = (*file)->Sync();
        const util::Status close_status = (*file)->Close();
        if (status.ok())
            status = close_status;
        if (!status.ok()) {
            (void)vfs.Unlink(tmp);
            return status;
        }
    }
    if (util::Status status = vfs.Rename(tmp, path); !status.ok()) {
        (void)vfs.Unlink(tmp);
        return status;
    }
    return vfs.DirSync(path);
}

}  // namespace atum::obs
