#include "obs/spans.h"

#include <time.h>

#include <algorithm>
#include <cstdio>
#include <mutex>

#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/stats_emitter.h"
#include "util/json.h"

namespace atum::obs {

uint64_t MonotonicNowNs()
{
    struct timespec ts;
    clock_gettime(CLOCK_MONOTONIC, &ts);
    return static_cast<uint64_t>(ts.tv_sec) * 1'000'000'000ull +
           static_cast<uint64_t>(ts.tv_nsec);
}

const char* PhaseName(Phase phase)
{
    switch (phase) {
        case Phase::kDispatch: return "dispatch";
        case Phase::kTranslate: return "translate";
        case Phase::kMemory: return "memory";
        case Phase::kTracer: return "tracer";
        case Phase::kDrain: return "drain";
        case Phase::kCheckpoint: return "checkpoint";
        case Phase::kIo: return "io";
    }
    return "unknown";
}

#if ATUM_TRACING_ENABLED

namespace {

constexpr int kDefaultRingLog2 = 12;  // 4096 spans/thread ≈ 700 KB

/**
 * One thread's span ring. Single writer (the owning thread); `head`
 * counts spans ever recorded, the slot index is `head & mask`. The
 * collector reads rings of exited threads exactly and live rings
 * approximately (quiescent-point contract, see the header).
 */
struct SpanRing {
    explicit SpanRing(int log2)
        : slots(static_cast<size_t>(1) << log2),
          mask((static_cast<uint32_t>(1) << log2) - 1)
    {
    }

    std::vector<SpanEvent> slots;
    uint32_t mask;
    std::atomic<uint64_t> head{0};
    uint32_t tid = 0;
    char thread_name[32] = {0};
};

/** Registry of every ring ever created; rings outlive their threads. */
struct SpanCollector {
    std::mutex mu;
    std::vector<std::unique_ptr<SpanRing>> rings;
    uint32_t next_tid = 1;
    int ring_log2 = kDefaultRingLog2;
};

SpanCollector& Collector()
{
    static SpanCollector* collector = new SpanCollector;
    return *collector;
}

std::atomic<bool> g_spans_enabled{true};
/** Bumped by ResetSpansForTest so cached thread-local pointers die. */
std::atomic<uint64_t> g_generation{1};

thread_local SpanRing* t_ring = nullptr;
thread_local uint64_t t_ring_generation = 0;

SpanRing* RingForThisThread()
{
    if (t_ring != nullptr &&
        t_ring_generation == g_generation.load(std::memory_order_relaxed))
        return t_ring;
    SpanCollector& collector = Collector();
    std::lock_guard<std::mutex> lock(collector.mu);
    auto ring = std::make_unique<SpanRing>(collector.ring_log2);
    ring->tid = collector.next_tid++;
    std::snprintf(ring->thread_name, sizeof ring->thread_name,
                  ring->tid == 1 ? "main" : "thread-%u", ring->tid);
    t_ring = ring.get();
    t_ring_generation = g_generation.load(std::memory_order_relaxed);
    collector.rings.push_back(std::move(ring));
    return t_ring;
}

void CopyDetail(SpanEvent& event, const char* detail)
{
    if (detail == nullptr) return;
    std::strncpy(event.detail, detail, sizeof event.detail - 1);
    event.detail[sizeof event.detail - 1] = '\0';
}

}  // namespace

void SetSpansEnabled(bool enabled)
{
    g_spans_enabled.store(enabled, std::memory_order_relaxed);
}

bool SpansEnabled()
{
    return g_spans_enabled.load(std::memory_order_relaxed);
}

void SetCurrentThreadName(const char* name)
{
    SpanRing* ring = RingForThisThread();
    std::snprintf(ring->thread_name, sizeof ring->thread_name, "%s-%u",
                  name, ring->tid);
}

void RecordSpan(const char* category, const char* name, uint64_t start_ns,
                uint64_t dur_ns, const char* detail, const char* arg_name0,
                uint64_t arg0, const char* arg_name1, uint64_t arg1)
{
    SpanRing* ring = RingForThisThread();
    const uint64_t head = ring->head.load(std::memory_order_relaxed);
    SpanEvent& event = ring->slots[head & ring->mask];
    event = SpanEvent{};
    event.name = name;
    event.category = category;
    event.start_ns = start_ns;
    event.dur_ns = dur_ns;
    event.tid = ring->tid;
    event.kind = 0;
    CopyDetail(event, detail);
    event.arg_name0 = arg_name0;
    event.arg0 = arg0;
    event.arg_name1 = arg_name1;
    event.arg1 = arg1;
    ring->head.store(head + 1, std::memory_order_release);
    // Once a flight dump path is armed, completions double as flight
    // breadcrumbs: the post-mortem ring shows what the process was doing.
    if (flight::Armed()) flight::Note(name, detail, dur_ns, 0);
}

void RecordInstant(const char* category, const char* name, const char* detail,
                   const char* arg_name0, uint64_t arg0)
{
    if (!SpansEnabled()) return;
    SpanRing* ring = RingForThisThread();
    const uint64_t head = ring->head.load(std::memory_order_relaxed);
    SpanEvent& event = ring->slots[head & ring->mask];
    event = SpanEvent{};
    event.name = name;
    event.category = category;
    event.start_ns = MonotonicNowNs();
    event.tid = ring->tid;
    event.kind = 1;
    CopyDetail(event, detail);
    event.arg_name0 = arg_name0;
    event.arg0 = arg0;
    ring->head.store(head + 1, std::memory_order_release);
    if (flight::Armed()) flight::Note(name, detail, arg0, 0);
}

SpanDump CollectSpans()
{
    SpanDump dump;
    SpanCollector& collector = Collector();
    std::lock_guard<std::mutex> lock(collector.mu);
    for (const auto& ring : collector.rings) {
        dump.threads.emplace_back(ring->tid, ring->thread_name);
        const uint64_t head = ring->head.load(std::memory_order_acquire);
        const uint64_t capacity = ring->slots.size();
        const uint64_t count = std::min(head, capacity);
        dump.recorded += head;
        dump.dropped += head - count;
        for (uint64_t i = head - count; i < head; ++i)
            dump.events.push_back(ring->slots[i & ring->mask]);
    }
    std::sort(dump.events.begin(), dump.events.end(),
              [](const SpanEvent& a, const SpanEvent& b) {
                  return a.start_ns < b.start_ns;
              });
    Registry::Global().GetCounter("obs.spans.recorded").Set(dump.recorded);
    Registry::Global().GetCounter("obs.spans.dropped").Set(dump.dropped);
    return dump;
}

void SetSpanRingLog2ForTest(int log2_capacity)
{
    SpanCollector& collector = Collector();
    std::lock_guard<std::mutex> lock(collector.mu);
    collector.ring_log2 = log2_capacity;
}

void ResetSpansForTest()
{
    SpanCollector& collector = Collector();
    std::lock_guard<std::mutex> lock(collector.mu);
    collector.rings.clear();
    collector.next_tid = 1;
    collector.ring_log2 = kDefaultRingLog2;
    g_generation.fetch_add(1, std::memory_order_relaxed);
}

// ---------------------------------------------------------------- profiler

namespace {
uint64_t (*g_profiler_clock)() = nullptr;
}  // namespace

PhaseProfiler::PhaseProfiler(int sample_shift)
    : shift_(sample_shift),
      mask_((static_cast<uint64_t>(1) << sample_shift) - 1)
{
}

uint64_t PhaseProfiler::Now()
{
    return g_profiler_clock != nullptr ? g_profiler_clock()
                                       : MonotonicNowNs();
}

void PhaseProfiler::SetClockForTest(uint64_t (*now_ns)())
{
    g_profiler_clock = now_ns;
}

void PhaseProfiler::BeginRun()
{
    // Calibrate the cost of one clock read so Accumulate can excise the
    // profiler's own overhead from sampled windows (an instrumented
    // window pays a dozen-odd reads the unsampled ones do not; scaling
    // by N would multiply that inflation into a >100% "coverage"). The
    // minimum back-to-back delta is robust to preemption. Deterministic
    // test clocks skip calibration: their fixed per-call advance is the
    // quantity under test, not overhead.
    clock_cost_ns_ = 0;
    if (g_profiler_clock == nullptr) {
        uint64_t best = UINT64_MAX;
        uint64_t prev = Now();
        for (int i = 0; i < 256; ++i) {
            const uint64_t t = Now();
            if (t - prev < best) best = t - prev;
            prev = t;
        }
        if (best != UINT64_MAX) clock_cost_ns_ = best;
    }
    run_begin_ns_ = Now();
    run_end_ns_ = 0;
}

void PhaseProfiler::EndRun()
{
    run_end_ns_ = Now();
}

std::vector<PhaseProfiler::Row> PhaseProfiler::Breakdown() const
{
    // Sampled phases are apportioned gprof-style: the windows yield
    // *proportions*, which are anchored to the measured wall time left
    // after the exactly-timed sections. Scaling the raw window times by
    // N instead would inflate the estimate with the instrumented
    // windows' own clock-read overhead (measured at 1.6-2.6x here).
    uint64_t sampled_total = 0;
    uint64_t exact_total = 0;
    for (int i = 0; i < kPhaseCount; ++i) {
        sampled_total += sampled_ns_[i];
        exact_total += exact_ns_[i];
    }
    const uint64_t run = run_ns();
    const uint64_t anchor_ns = run > exact_total ? run - exact_total : 0;

    std::vector<Row> rows;
    for (int i = 0; i < kPhaseCount; ++i) {
        const Phase phase = static_cast<Phase>(i);
        const bool is_sampled = i < static_cast<int>(Phase::kDrain);
        uint64_t ns = exact_ns_[i];
        if (sampled_ns_[i] != 0) {
            if (run != 0 && sampled_total != 0) {
                ns += static_cast<uint64_t>(
                    static_cast<double>(sampled_ns_[i]) /
                    static_cast<double>(sampled_total) *
                    static_cast<double>(anchor_ns));
            } else {
                // No BeginRun anchor: fall back to raw xN extrapolation.
                ns += sampled_ns_[i] << shift_;
            }
        }
        rows.push_back(Row{phase, PhaseName(phase), ns, is_sampled});
    }
    return rows;
}

uint64_t PhaseProfiler::run_ns() const
{
    if (run_begin_ns_ == 0) return 0;
    const uint64_t end = run_end_ns_ != 0 ? run_end_ns_ : Now();
    return end > run_begin_ns_ ? end - run_begin_ns_ : 0;
}

double PhaseProfiler::CoverageFraction() const
{
    const uint64_t total = run_ns();
    if (total == 0) return 0.0;
    uint64_t attributed = 0;
    for (const Row& row : Breakdown())
        attributed += row.ns;
    return static_cast<double>(attributed) / static_cast<double>(total);
}

#endif  // ATUM_TRACING_ENABLED

// ------------------------------------------------------------------ export
// Compiled in both modes: an OFF build exports a valid empty document
// with otherData.tracing == "off".

std::string SpansToChromeJson(const SpanDump& dump,
                              const std::string& process_name)
{
    uint64_t anchor_ns = 0;
    for (const SpanEvent& event : dump.events) {
        if (anchor_ns == 0 || event.start_ns < anchor_ns)
            anchor_ns = event.start_ns;
    }

    util::JsonWriter w;
    w.BeginObject();
    w.KeyValue("displayTimeUnit", "ms");
    w.Key("otherData");
    w.BeginObject();
    w.KeyValue("tool", process_name);
    w.KeyValue("tracing", ATUM_TRACING_ENABLED ? "on" : "off");
    w.KeyValue("mono_anchor_ns", anchor_ns);
    w.KeyValue("wall_anchor_ms", WallClockMs());
    w.KeyValue("recorded", dump.recorded);
    w.KeyValue("dropped", dump.dropped);
    w.EndObject();
    w.Key("traceEvents");
    w.BeginArray();
    w.BeginObject();
    w.KeyValue("ph", "M");
    w.KeyValue("name", "process_name");
    w.KeyValue("pid", 1);
    w.KeyValue("tid", 0);
    w.Key("args");
    w.BeginObject();
    w.KeyValue("name", process_name);
    w.EndObject();
    w.EndObject();
    for (const auto& [tid, name] : dump.threads) {
        w.BeginObject();
        w.KeyValue("ph", "M");
        w.KeyValue("name", "thread_name");
        w.KeyValue("pid", 1);
        w.KeyValue("tid", tid);
        w.Key("args");
        w.BeginObject();
        w.KeyValue("name", name);
        w.EndObject();
        w.EndObject();
    }
    for (const SpanEvent& event : dump.events) {
        w.BeginObject();
        w.KeyValue("ph", event.kind == 0 ? "X" : "i");
        if (event.kind != 0) w.KeyValue("s", "t");
        w.KeyValue("name", event.name != nullptr ? event.name : "?");
        w.KeyValue("cat",
                   event.category != nullptr ? event.category : "atum");
        w.KeyValue("pid", 1);
        w.KeyValue("tid", event.tid);
        w.KeyValue("ts",
                   static_cast<double>(event.start_ns - anchor_ns) / 1e3);
        if (event.kind == 0)
            w.KeyValue("dur", static_cast<double>(event.dur_ns) / 1e3);
        const bool has_args = event.detail[0] != '\0' ||
                              event.arg_name0 != nullptr ||
                              event.arg_name1 != nullptr;
        if (has_args) {
            w.Key("args");
            w.BeginObject();
            if (event.detail[0] != '\0')
                w.KeyValue("detail", std::string(event.detail));
            if (event.arg_name0 != nullptr)
                w.KeyValue(event.arg_name0, event.arg0);
            if (event.arg_name1 != nullptr)
                w.KeyValue(event.arg_name1, event.arg1);
            w.EndObject();
        }
        w.EndObject();
    }
    w.EndArray();
    w.EndObject();
    std::string out = w.TakeStr();
    out.push_back('\n');
    return out;
}

util::Status WriteSpansFile(const std::string& path,
                            const std::string& process_name, io::Vfs& vfs)
{
    const std::string json = SpansToChromeJson(CollectSpans(), process_name);
    auto file = vfs.Create(path);
    if (!file.ok()) return file.status();
    if (util::Status s = (*file)->Write(json.data(), json.size()); !s.ok())
        return s;
    if (util::Status s = (*file)->Sync(); !s.ok()) return s;
    return (*file)->Close();
}

}  // namespace atum::obs
