#ifndef ATUM_OBS_FLIGHT_H_
#define ATUM_OBS_FLIGHT_H_

/**
 * @file
 * The crash flight recorder: a fixed-size, always-on, in-memory ring of
 * breadcrumb events that can be dumped to JSON from contexts where
 * nothing else is safe — a fatal signal handler, a watchdog that caught
 * the interpreter wedged, a tracer falling into degraded mode, a serve
 * quota kill.
 *
 * Design constraints, in order:
 *
 *  1. Signal-safe dump. DumpNow uses only open(2)/write(2)/close(2) and
 *     hand-rolled integer formatting — no malloc, no stdio, no locks.
 *     Event payloads are fixed char arrays inside a static ring, so the
 *     dumper never follows a pointer that a crashing thread half-wrote.
 *
 *  2. Always compiled. Unlike spans (obs/spans.h), the flight recorder
 *     is NOT gated by -DATUM_TRACING=OFF: post-mortem context for a
 *     wedge or crash is cheap (one relaxed fetch_add + two bounded
 *     string copies per Note) and too valuable to lose in lean builds.
 *
 *  3. Multi-producer. Writers claim distinct slots with a relaxed
 *     fetch_add; two threads never write the same slot until the ring
 *     wraps over it. A dump taken while writers are active may contain
 *     one in-flight event — acceptable for a post-mortem artifact.
 *
 * The recorder is *disarmed* until SetDumpPath names a destination;
 * producers may Note() unconditionally, and span completions mirror in
 * automatically once armed (see obs/spans.cc). Dump schema
 * ("atum-flight-v1", documented in docs/TRACING.md):
 *
 *   {"schema":"atum-flight-v1","reason":"watchdog","wall_ms":...,
 *    "mono_us":...,"pid":...,"dropped":N,
 *    "events":[{"mono_us":...,"tid":...,"name":"...","detail":"...",
 *               "a":...,"b":...},...]}   // oldest → newest
 */

#include <cstdint>

namespace atum::obs::flight {

/**
 * Appends one breadcrumb. `name` must be a short literal-ish tag
 * ("tracer.drain", "supervisor.watchdog"); `detail` an optional free
 * label; `a`/`b` optional numeric payloads. Never blocks, never fails.
 */
void Note(const char* name, const char* detail = nullptr, uint64_t a = 0,
          uint64_t b = 0);

/** Arms the recorder: dumps (including crash dumps) go to `path`.
 *  Copied into a fixed buffer; truncation disarms rather than corrupts. */
void SetDumpPath(const char* path);

/** Whether SetDumpPath has named a destination. */
bool Armed();

/**
 * Writes the ring to the armed path, newest state wins (O_TRUNC).
 * Async-signal-safe. No-op when disarmed. Returns false on any write
 * failure — callers on failure paths should not care.
 */
bool DumpNow(const char* reason);

/**
 * Installs handlers for SIGSEGV/SIGBUS/SIGILL/SIGFPE/SIGABRT that dump
 * the ring (when armed) and re-raise with the default disposition, so
 * the exit status still reflects the crash. Idempotent.
 */
void InstallCrashHandler();

/** Clears the ring and disarms; tests only. */
void ResetForTest();

}  // namespace atum::obs::flight

#endif  // ATUM_OBS_FLIGHT_H_
