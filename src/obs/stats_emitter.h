#ifndef ATUM_OBS_STATS_EMITTER_H_
#define ATUM_OBS_STATS_EMITTER_H_

/**
 * @file
 * Periodic registry snapshots as JSON Lines, plus the RUN.json manifest.
 *
 * The emitter is driven synchronously by whoever owns the run loop
 * (core::RunSupervised ticks it at supervision-slice boundaries), so no
 * emitter thread ever races the machine. Each line is one self-contained
 * JSON document flushed immediately — `tail -f` and atum-top can follow
 * a live capture. Schema (documented in docs/METRICS.md):
 *
 *   {"schema":"atum-metrics-v1","seq":N,"ts_ms":...,"mono_us":...,
 *    "phase":"interval","counters":{...},"gauges":{...},
 *    "histograms":{"name":{"count":..,"sum":..,"p50":..,"p99":..,
 *                          "buckets":[[i,n],...]}}}
 *
 * `ts_ms` is wall-clock (joins runs across machines); `mono_us` is
 * CLOCK_MONOTONIC (joins a line with the span timeline and flight dump
 * of the same process — see docs/TRACING.md).
 *
 * Emission failures are sticky and never abort the capture: metrics are
 * a flight recorder, not a second point of failure.
 */

#include <cstdint>
#include <cstdio>
#include <functional>
#include <memory>
#include <string>

#include "io/vfs.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace atum::obs {

struct StatsEmitterOptions {
    /** Minimum wall-clock gap between MaybeEmit() lines. */
    uint64_t interval_ms = 1000;
    /**
     * Wall-clock source in milliseconds since the epoch; tests override
     * it to get deterministic ts_ms values. Null = system clock.
     */
    std::function<uint64_t()> now_ms;
};

/** Milliseconds since the Unix epoch (system clock). */
uint64_t WallClockMs();

class StatsEmitter
{
  public:
    /** Opens (truncates) `path` for JSONL snapshots of `registry`. */
    static util::StatusOr<std::unique_ptr<StatsEmitter>> Open(
        const std::string& path, Registry& registry,
        const StatsEmitterOptions& options = {});

    ~StatsEmitter();

    StatsEmitter(const StatsEmitter&) = delete;
    StatsEmitter& operator=(const StatsEmitter&) = delete;

    /** Unconditionally snapshots and writes one line. */
    void Emit(const std::string& phase);

    /** Emits iff `interval_ms` has elapsed since the previous line. */
    void MaybeEmit(const std::string& phase = "interval");

    /** Lines successfully written. */
    uint64_t lines() const { return lines_; }

    /** First write failure, OK while healthy. Emission stops after the
     *  first failure (the file is likely on a dead disk). */
    const util::Status& status() const { return status_; }

  private:
    StatsEmitter(std::FILE* file, std::string path, Registry& registry,
                 const StatsEmitterOptions& options);

    std::FILE* file_;
    std::string path_;
    Registry& registry_;
    StatsEmitterOptions options_;
    uint64_t seq_ = 0;
    uint64_t lines_ = 0;
    uint64_t last_emit_ms_ = 0;
    util::Status status_;
};

/** Serializes one snapshot as the canonical JSONL document. */
std::string SnapshotToJsonLine(const RegistrySnapshot& snapshot,
                               uint64_t seq, uint64_t ts_ms,
                               uint64_t mono_us, const std::string& phase);

/**
 * The RUN.json manifest written next to every captured trace: enough to
 * re-run, attribute and compare the capture without parsing prose.
 */
struct RunManifest {
    std::string tool;          ///< "atum-capture"
    std::string version;       ///< git describe (util/build_info.h)
    std::string build_type;    ///< CMAKE_BUILD_TYPE
    std::string trace_path;
    uint64_t started_ms = 0;
    uint64_t ended_ms = 0;
    int exit_code = 0;
    std::string stop_cause;    ///< "halted", "signal", ...
    /** Flat key/value capture configuration (workloads, buffer size...). */
    std::vector<std::pair<std::string, std::string>> config;
    /**
     * Optional per-phase wall-time attribution from the PhaseProfiler
     * (name → nanoseconds), written as a "phases" block of *_ms rows
     * plus coverage_pct when non-empty.
     */
    std::vector<std::pair<std::string, uint64_t>> phase_ns;
    double phase_coverage_pct = 0.0;
    /** Final registry state. */
    RegistrySnapshot finals;
};

/**
 * Writes `manifest` to `path` as a single JSON document, atomically
 * (temp + fsync + rename + directory sync): the manifest is the "this
 * run completed" witness, so a crash must leave either the whole
 * document or nothing — never a torn one.
 */
util::Status WriteRunManifest(const std::string& path,
                              const RunManifest& manifest,
                              io::Vfs& vfs = io::RealVfs());

}  // namespace atum::obs

#endif  // ATUM_OBS_STATS_EMITTER_H_
