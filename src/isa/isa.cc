#include "isa/isa.h"

#include <array>
#include <cstdio>

#include "util/logging.h"

namespace atum::isa {

namespace {

using OD = OperandDesc;
constexpr DataType kB = DataType::kByte;
constexpr DataType kW = DataType::kWord;
constexpr DataType kL = DataType::kLong;

struct TableEntry {
    Opcode op;
    const char* mnemonic;
    std::vector<OperandDesc> operands;
    bool privileged;
};

std::vector<TableEntry>
MakeEntries()
{
    const OD rd_l{Access::kRead, kL};
    const OD rd_b{Access::kRead, kB};
    const OD rd_w{Access::kRead, kW};
    const OD wr_l{Access::kWrite, kL};
    const OD wr_b{Access::kWrite, kB};
    const OD wr_w{Access::kWrite, kW};
    const OD mod_l{Access::kModify, kL};
    const OD addr{Access::kAddress, kL};
    const OD b8{Access::kBranch8, kB};
    const OD b16{Access::kBranch16, kB};

    return {
        {Opcode::kHalt, "halt", {}, true},
        {Opcode::kNop, "nop", {}, false},
        {Opcode::kBpt, "bpt", {}, false},
        {Opcode::kRei, "rei", {}, false},
        {Opcode::kChmk, "chmk", {rd_l}, false},
        {Opcode::kMtpr, "mtpr", {rd_l, rd_l}, true},
        {Opcode::kMfpr, "mfpr", {rd_l, wr_l}, true},
        {Opcode::kSvpctx, "svpctx", {}, true},
        {Opcode::kLdpctx, "ldpctx", {}, true},

        {Opcode::kMovl, "movl", {rd_l, wr_l}, false},
        {Opcode::kMovb, "movb", {rd_b, wr_b}, false},
        {Opcode::kMovzbl, "movzbl", {rd_b, wr_l}, false},
        {Opcode::kMoval, "moval", {addr, wr_l}, false},
        {Opcode::kPushl, "pushl", {rd_l}, false},
        {Opcode::kClrl, "clrl", {wr_l}, false},
        {Opcode::kClrb, "clrb", {wr_b}, false},
        {Opcode::kMnegl, "mnegl", {rd_l, wr_l}, false},
        {Opcode::kMovw, "movw", {rd_w, wr_w}, false},
        {Opcode::kMovzwl, "movzwl", {rd_w, wr_l}, false},

        {Opcode::kAddl2, "addl2", {rd_l, mod_l}, false},
        {Opcode::kAddl3, "addl3", {rd_l, rd_l, wr_l}, false},
        {Opcode::kSubl2, "subl2", {rd_l, mod_l}, false},
        {Opcode::kSubl3, "subl3", {rd_l, rd_l, wr_l}, false},
        {Opcode::kMull2, "mull2", {rd_l, mod_l}, false},
        {Opcode::kMull3, "mull3", {rd_l, rd_l, wr_l}, false},
        {Opcode::kDivl2, "divl2", {rd_l, mod_l}, false},
        {Opcode::kDivl3, "divl3", {rd_l, rd_l, wr_l}, false},
        {Opcode::kIncl, "incl", {mod_l}, false},
        {Opcode::kDecl, "decl", {mod_l}, false},
        {Opcode::kCmpl, "cmpl", {rd_l, rd_l}, false},
        {Opcode::kCmpb, "cmpb", {rd_b, rd_b}, false},
        {Opcode::kTstl, "tstl", {rd_l}, false},
        {Opcode::kTstb, "tstb", {rd_b}, false},
        {Opcode::kCmpw, "cmpw", {rd_w, rd_w}, false},
        {Opcode::kTstw, "tstw", {rd_w}, false},

        {Opcode::kBisl2, "bisl2", {rd_l, mod_l}, false},
        {Opcode::kBisl3, "bisl3", {rd_l, rd_l, wr_l}, false},
        {Opcode::kBicl2, "bicl2", {rd_l, mod_l}, false},
        {Opcode::kBicl3, "bicl3", {rd_l, rd_l, wr_l}, false},
        {Opcode::kXorl2, "xorl2", {rd_l, mod_l}, false},
        {Opcode::kXorl3, "xorl3", {rd_l, rd_l, wr_l}, false},
        {Opcode::kBitl, "bitl", {rd_l, rd_l}, false},
        {Opcode::kAshl, "ashl", {rd_b, rd_l, wr_l}, false},

        {Opcode::kBrb, "brb", {b8}, false},
        {Opcode::kBrw, "brw", {b16}, false},
        {Opcode::kBneq, "bneq", {b8}, false},
        {Opcode::kBeql, "beql", {b8}, false},
        {Opcode::kBgtr, "bgtr", {b8}, false},
        {Opcode::kBleq, "bleq", {b8}, false},
        {Opcode::kBgeq, "bgeq", {b8}, false},
        {Opcode::kBlss, "blss", {b8}, false},
        {Opcode::kBgtru, "bgtru", {b8}, false},
        {Opcode::kBlequ, "blequ", {b8}, false},
        {Opcode::kBgequ, "bgequ", {b8}, false},
        {Opcode::kBlssu, "blssu", {b8}, false},
        {Opcode::kBvc, "bvc", {b8}, false},
        {Opcode::kBvs, "bvs", {b8}, false},
        {Opcode::kJmp, "jmp", {addr}, false},
        {Opcode::kJsb, "jsb", {addr}, false},
        {Opcode::kRsb, "rsb", {}, false},
        {Opcode::kSobgtr, "sobgtr", {mod_l, b8}, false},
        {Opcode::kSobgeq, "sobgeq", {mod_l, b8}, false},
        {Opcode::kAoblss, "aoblss", {rd_l, mod_l, b8}, false},
        {Opcode::kCalls, "calls", {rd_l, addr}, false},
        {Opcode::kRet, "ret", {}, false},
        // CASEL's word displacement table follows the operands in the
        // instruction stream; its length is data-dependent, so the table
        // is not part of the decoded instruction length.
        {Opcode::kCasel, "casel", {rd_l, rd_l, rd_l}, false},

        {Opcode::kMovc3, "movc3", {rd_l, addr, addr}, false},
        {Opcode::kInsque, "insque", {addr, addr}, false},
        {Opcode::kRemque, "remque", {addr, wr_l}, false},
        {Opcode::kCmpc3, "cmpc3", {rd_l, addr, addr}, false},
        {Opcode::kLocc, "locc", {rd_b, rd_l, addr}, false},
    };
}

struct Tables {
    std::array<InstrInfo, 256> info;
    std::vector<Opcode> assigned;

    Tables()
    {
        for (auto& e : info)
            e = InstrInfo{"?", {}, false, false};
        for (auto& e : MakeEntries()) {
            auto idx = static_cast<size_t>(e.op);
            if (info[idx].valid)
                Panic("duplicate opcode 0x", std::hex, idx);
            info[idx] = InstrInfo{e.mnemonic, std::move(e.operands),
                                  e.privileged, true};
            assigned.push_back(e.op);
        }
    }
};

const Tables&
GetTables()
{
    static const Tables& tables = *new Tables();
    return tables;
}

}  // namespace

const InstrInfo&
GetInstrInfo(Opcode op)
{
    return GetTables().info[static_cast<size_t>(op)];
}

const std::vector<Opcode>&
AllOpcodes()
{
    return GetTables().assigned;
}

std::string
MnemonicOf(Opcode op)
{
    const InstrInfo& info = GetInstrInfo(op);
    if (info.valid)
        return info.mnemonic;
    char buf[8];
    std::snprintf(buf, sizeof buf, "?%02x", static_cast<unsigned>(op));
    return buf;
}

}  // namespace atum::isa
