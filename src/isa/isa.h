#ifndef ATUM_ISA_ISA_H_
#define ATUM_ISA_ISA_H_

/**
 * @file
 * The VCX-32 instruction set: a from-scratch, VAX-flavoured CISC ISA.
 *
 * VCX-32 reproduces the structural properties of the VAX that made ATUM's
 * microcode tracing interesting:
 *  - variable-length instructions: an opcode byte followed by general
 *    operand specifiers (register, deferred, autoincrement/decrement,
 *    displacement, displacement-deferred, immediate, absolute);
 *  - memory-to-memory operations (any operand may touch memory);
 *  - microcoded "heavy" instructions (MOVC3 block copy, SVPCTX/LDPCTX
 *    context switch) that issue many memory references per instruction;
 *  - a privileged architecture (kernel/user modes, CHMK system calls,
 *    MTPR/MFPR processor registers, REI).
 *
 * An operand specifier is one byte, mode in the high nibble and register
 * number in the low nibble, optionally followed by extension bytes
 * (displacement or immediate). Using PC (r15) as the base register gives
 * PC-relative addressing for free, as on the VAX: the PC value used is the
 * address of the byte following the full specifier.
 */

#include <cstdint>
#include <string>
#include <vector>

namespace atum::isa {

/** General register numbers with architectural roles. */
inline constexpr unsigned kNumRegs = 16;
inline constexpr unsigned kRegFp = 13;  ///< frame pointer (CALLS/RET)
inline constexpr unsigned kRegSp = 14;  ///< stack pointer
inline constexpr unsigned kRegPc = 15;  ///< program counter

/** Operand specifier addressing modes (specifier byte, high nibble). */
enum class AddrMode : uint8_t {
    kReg = 0,        ///< Rn
    kRegDef = 1,     ///< (Rn)
    kAutoInc = 2,    ///< (Rn)+
    kAutoDec = 3,    ///< -(Rn)
    kDisp8 = 4,      ///< d8(Rn), sign-extended byte displacement
    kDisp32 = 5,     ///< d32(Rn)
    kDisp32Def = 6,  ///< @d32(Rn): one extra memory indirection
    kImm = 7,        ///< #literal (operand-sized extension)
    kAbs = 8,        ///< @#address (32-bit extension)
    // 9..15 are reserved; using them raises a reserved-operand fault.
};

/** Number of valid addressing modes (for sweeps in tests). */
inline constexpr uint8_t kNumAddrModes = 9;

/** Operand data types. */
enum class DataType : uint8_t {
    kByte = 1,  ///< 8 bits
    kWord = 2,  ///< 16 bits
    kLong = 4,  ///< 32 bits
};

/** How an instruction touches an operand. */
enum class Access : uint8_t {
    kRead,      ///< value is read
    kWrite,     ///< value is written
    kModify,    ///< read then written (e.g. ADDL2 destination)
    kAddress,   ///< the operand's *address* is used (MOVAL, JMP, JSB, MOVC3)
    kBranch8,   ///< raw signed 8-bit PC displacement (not a specifier)
    kBranch16,  ///< raw signed 16-bit PC displacement (not a specifier)
};

/** Opcode values. Gaps group related instructions. */
enum class Opcode : uint8_t {
    // System / privileged.
    kHalt = 0x00,
    kNop = 0x01,
    kBpt = 0x02,
    kRei = 0x03,
    kChmk = 0x04,
    kMtpr = 0x05,
    kMfpr = 0x06,
    kSvpctx = 0x07,
    kLdpctx = 0x08,

    // Moves.
    kMovl = 0x10,
    kMovb = 0x11,
    kMovzbl = 0x12,
    kMoval = 0x13,
    kPushl = 0x14,
    kClrl = 0x15,
    kClrb = 0x16,
    kMnegl = 0x17,
    kMovw = 0x18,
    kMovzwl = 0x19,

    // Integer arithmetic.
    kAddl2 = 0x20,
    kAddl3 = 0x21,
    kSubl2 = 0x22,
    kSubl3 = 0x23,
    kMull2 = 0x24,
    kMull3 = 0x25,
    kDivl2 = 0x26,
    kDivl3 = 0x27,
    kIncl = 0x28,
    kDecl = 0x29,
    kCmpl = 0x2a,
    kCmpb = 0x2b,
    kTstl = 0x2c,
    kTstb = 0x2d,
    kCmpw = 0x2e,
    kTstw = 0x2f,

    // Logical.
    kBisl2 = 0x30,
    kBisl3 = 0x31,
    kBicl2 = 0x32,
    kBicl3 = 0x33,
    kXorl2 = 0x34,
    kXorl3 = 0x35,
    kBitl = 0x36,
    kAshl = 0x37,

    // Control transfer.
    kBrb = 0x40,
    kBrw = 0x41,
    kBneq = 0x42,
    kBeql = 0x43,
    kBgtr = 0x44,
    kBleq = 0x45,
    kBgeq = 0x46,
    kBlss = 0x47,
    kBgtru = 0x48,
    kBlequ = 0x49,
    kBgequ = 0x4a,
    kBlssu = 0x4b,
    kBvc = 0x4c,
    kBvs = 0x4d,
    kJmp = 0x50,
    kJsb = 0x51,
    kRsb = 0x52,
    kSobgtr = 0x53,
    kSobgeq = 0x54,
    kAoblss = 0x55,
    kCalls = 0x56,
    kRet = 0x57,
    kCasel = 0x58,

    // Microcoded string and queue ops.
    kMovc3 = 0x60,
    kInsque = 0x61,
    kRemque = 0x62,
    kCmpc3 = 0x63,
    kLocc = 0x64,
};

/** Description of one operand slot of an instruction. */
struct OperandDesc {
    Access access;
    DataType type;
};

/** Static description of an instruction. */
struct InstrInfo {
    const char* mnemonic;
    std::vector<OperandDesc> operands;
    bool privileged;  ///< only legal in kernel mode
    bool valid;       ///< false for unassigned opcode values
};

/**
 * Returns the descriptor for `op`. Every 8-bit value is covered; entries
 * with valid == false denote unassigned encodings (reserved instruction
 * fault at execution time).
 */
const InstrInfo& GetInstrInfo(Opcode op);
inline const InstrInfo& GetInstrInfo(uint8_t raw)
{
    return GetInstrInfo(static_cast<Opcode>(raw));
}

/** Returns all assigned opcodes (for table-driven tests). */
const std::vector<Opcode>& AllOpcodes();

/** Returns "movl", "addl3", ... or "?%02x" for unassigned encodings. */
std::string MnemonicOf(Opcode op);

/** Encodes a specifier byte from mode and register. */
constexpr uint8_t
SpecifierByte(AddrMode mode, unsigned reg)
{
    return static_cast<uint8_t>((static_cast<unsigned>(mode) << 4) |
                                (reg & 0xf));
}

/** Processor (privileged, MTPR/MFPR-addressable) register numbers. */
enum class Ipr : uint32_t {
    kKsp = 0,          ///< kernel stack pointer (banked)
    kUsp = 1,          ///< user stack pointer (banked)
    kP0Br = 2,         ///< P0 page-table base (physical address)
    kP0Lr = 3,         ///< P0 page-table length (pages)
    kP1Br = 4,         ///< P1 page-table base (physical address)
    kP1Lr = 5,         ///< P1 page-table length (pages)
    kS0Br = 6,         ///< S0 page-table base (physical address)
    kS0Lr = 7,         ///< S0 page-table length (pages)
    kScbb = 8,         ///< system control block base (physical address)
    kPcbb = 9,         ///< current process control block (physical address)
    kMapen = 10,       ///< memory management enable (0/1)
    kTbia = 11,        ///< write: invalidate entire TB
    kTbis = 12,        ///< write: invalidate TB entry for virtual address
    kIccs = 13,        ///< interval clock control: bit0 = run
    kIcr = 14,         ///< interval count reload (instructions per tick)
    kConsTx = 15,      ///< write: console transmit byte
    kSirr = 16,        ///< write: request software interrupt
    kPid = 17,         ///< current process id (ATUM context tagging)
    kDmaSrc = 18,      ///< DMA engine: source physical address
    kDmaDst = 19,      ///< DMA engine: destination physical address
    kDmaLen = 20,      ///< DMA engine: byte count (multiple of 4)
    kDmaCtl = 21,      ///< write 1: start transfer; read: 1 while busy
    kNumIprs = 22,
};

}  // namespace atum::isa

#endif  // ATUM_ISA_ISA_H_
