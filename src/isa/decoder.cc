#include "isa/decoder.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace atum::isa {

namespace {

/** Tracks a read cursor over the instruction stream. */
class Cursor
{
  public:
    Cursor(uint32_t addr, const ByteReader& read) : addr_(addr), read_(read)
    {
    }

    uint8_t U8() { return read_(addr_++); }

    uint16_t U16()
    {
        const uint16_t lo = U8();
        return static_cast<uint16_t>(lo | (U8() << 8));
    }

    uint32_t U32()
    {
        const uint32_t lo = U16();
        return lo | (static_cast<uint32_t>(U16()) << 16);
    }

    uint32_t addr() const { return addr_; }

  private:
    uint32_t addr_;
    const ByteReader& read_;
};

/** True when mode `m` may legally serve an operand with access `a`. */
bool
ModeLegalFor(AddrMode m, Access a)
{
    if (m == AddrMode::kImm)
        return a == Access::kRead;  // cannot write to or take addr of a literal
    if (m == AddrMode::kReg)
        return a != Access::kAddress;  // registers have no address
    return true;
}

}  // namespace

std::optional<DecodedInst>
Decode(uint32_t addr, const ByteReader& read)
{
    Cursor cur(addr, read);
    DecodedInst out;
    const uint8_t raw_op = cur.U8();
    const InstrInfo& info = GetInstrInfo(raw_op);
    if (!info.valid)
        return std::nullopt;
    out.opcode = static_cast<Opcode>(raw_op);

    for (const OperandDesc& desc : info.operands) {
        if (desc.access == Access::kBranch8) {
            out.branch_disp = SignExtend(cur.U8(), 8);
            continue;
        }
        if (desc.access == Access::kBranch16) {
            out.branch_disp = SignExtend(cur.U16(), 16);
            continue;
        }
        Operand op;
        const uint8_t spec = cur.U8();
        const uint8_t mode_bits = spec >> 4;
        if (mode_bits >= kNumAddrModes)
            return std::nullopt;  // reserved addressing mode
        op.mode = static_cast<AddrMode>(mode_bits);
        op.reg = spec & 0xf;
        if (!ModeLegalFor(op.mode, desc.access))
            return std::nullopt;  // reserved operand
        switch (op.mode) {
          case AddrMode::kDisp8:
            op.disp = SignExtend(cur.U8(), 8);
            break;
          case AddrMode::kDisp32:
          case AddrMode::kDisp32Def:
            op.disp = static_cast<int32_t>(cur.U32());
            break;
          case AddrMode::kImm:
            op.imm = desc.type == DataType::kByte   ? cur.U8()
                     : desc.type == DataType::kWord ? cur.U16()
                                                    : cur.U32();
            break;
          case AddrMode::kAbs:
            op.imm = cur.U32();
            break;
          default:
            break;
        }
        out.operands.push_back(op);
    }
    out.length = cur.addr() - addr;
    return out;
}

std::optional<DecodedInst>
DecodeBuffer(const std::vector<uint8_t>& bytes, uint32_t offset)
{
    bool overran = false;
    auto reader = [&](uint32_t a) -> uint8_t {
        if (a >= bytes.size()) {
            overran = true;
            return 0;
        }
        return bytes[a];
    };
    auto decoded = Decode(offset, reader);
    if (overran)
        return std::nullopt;
    return decoded;
}

}  // namespace atum::isa
