#include "isa/disassembler.h"

#include <cstdio>
#include <sstream>

#include "util/logging.h"

namespace atum::isa {

namespace {

std::string
RegName(unsigned reg)
{
    switch (reg) {
      case kRegFp:
        return "fp";
      case kRegSp:
        return "sp";
      case kRegPc:
        return "pc";
      default:
        return "r" + std::to_string(reg);
    }
}

std::string
Hex(uint32_t v)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "0x%x", v);
    return buf;
}

}  // namespace

std::string
FormatOperand(const Operand& op)
{
    const std::string r = RegName(op.reg);
    switch (op.mode) {
      case AddrMode::kReg:
        return r;
      case AddrMode::kRegDef:
        return "(" + r + ")";
      case AddrMode::kAutoInc:
        return "(" + r + ")+";
      case AddrMode::kAutoDec:
        return "-(" + r + ")";
      case AddrMode::kDisp8:
      case AddrMode::kDisp32:
        return std::to_string(op.disp) + "(" + r + ")";
      case AddrMode::kDisp32Def:
        return "@" + std::to_string(op.disp) + "(" + r + ")";
      case AddrMode::kImm:
        return "#" + Hex(op.imm);
      case AddrMode::kAbs:
        return "@#" + Hex(op.imm);
    }
    Panic("unreachable addressing mode");
}

std::string
FormatInst(const DecodedInst& inst, uint32_t pc)
{
    std::ostringstream os;
    os << MnemonicOf(inst.opcode);
    bool first = true;
    auto sep = [&]() {
        os << (first ? "  " : ", ");
        first = false;
    };
    for (const Operand& op : inst.operands) {
        sep();
        os << FormatOperand(op);
    }
    if (inst.branch_disp) {
        sep();
        // Branch displacements are relative to the end of the instruction.
        os << Hex(pc + inst.length + *inst.branch_disp);
    }
    return os.str();
}

}  // namespace atum::isa
