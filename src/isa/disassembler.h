#ifndef ATUM_ISA_DISASSEMBLER_H_
#define ATUM_ISA_DISASSEMBLER_H_

/**
 * @file
 * Text rendering of decoded VCX-32 instructions, VAX-assembler flavoured:
 *   movl  #10, r0
 *   addl3 4(r1), (r2)+, @#0x1200
 *   brb   0x104
 */

#include <string>

#include "isa/decoder.h"

namespace atum::isa {

/** Renders one operand, e.g. "-(r3)", "#0x10", "@8(r2)". */
std::string FormatOperand(const Operand& op);

/**
 * Renders a decoded instruction. `pc` is the address of the instruction's
 * first byte and is used to resolve branch targets to absolute addresses.
 */
std::string FormatInst(const DecodedInst& inst, uint32_t pc);

}  // namespace atum::isa

#endif  // ATUM_ISA_DISASSEMBLER_H_
