#ifndef ATUM_ISA_DECODER_H_
#define ATUM_ISA_DECODER_H_

/**
 * @file
 * Stateless instruction decoder for VCX-32.
 *
 * The decoder extracts the full structure of one instruction (opcode,
 * operand specifiers, raw branch displacements, total length) from a byte
 * source. It performs no side effects and is used by the disassembler,
 * the assembler's self-checks, and tests; the CPU's executor evaluates
 * specifiers itself because evaluation has architectural side effects
 * (autoincrement, faults) interleaved with micro-ops.
 */

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "isa/isa.h"

namespace atum::isa {

/** One decoded operand specifier. */
struct Operand {
    AddrMode mode = AddrMode::kReg;
    uint8_t reg = 0;
    int32_t disp = 0;   ///< for kDisp8/kDisp32/kDisp32Def
    uint32_t imm = 0;   ///< for kImm (zero-extended to 32 bits)
};

/** A fully decoded instruction. */
struct DecodedInst {
    Opcode opcode = Opcode::kHalt;
    std::vector<Operand> operands;        ///< general specifiers, in order
    std::optional<int32_t> branch_disp;   ///< raw branch displacement
    uint32_t length = 0;                  ///< total encoded bytes
};

/**
 * Reads one byte of instruction stream at `addr`. Decoding a malformed
 * stream never reads past the bytes the encoding requires.
 */
using ByteReader = std::function<uint8_t(uint32_t addr)>;

/**
 * Decodes the instruction at `addr`. Returns std::nullopt for an
 * unassigned opcode or a reserved addressing mode, or when an immediate
 * specifier is used for a written/address operand (reserved operand).
 */
std::optional<DecodedInst> Decode(uint32_t addr, const ByteReader& read);

/** Convenience overload decoding from a flat buffer starting at offset. */
std::optional<DecodedInst> DecodeBuffer(const std::vector<uint8_t>& bytes,
                                        uint32_t offset);

}  // namespace atum::isa

#endif  // ATUM_ISA_DECODER_H_
