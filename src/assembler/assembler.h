#ifndef ATUM_ASSEMBLER_ASSEMBLER_H_
#define ATUM_ASSEMBLER_ASSEMBLER_H_

/**
 * @file
 * A programmatic assembler for VCX-32.
 *
 * Guest code (the kernel and the workloads) is constructed from C++ with a
 * label/fixup API rather than by parsing text. Example:
 *
 *   Assembler a(0x0);
 *   Label loop = a.NewLabel("loop");
 *   a.Emit(Opcode::kMovl, {Imm(100), R(0)});
 *   a.Bind(loop);
 *   a.Emit(Opcode::kSobgtr, {R(0)}, loop);   // trailing branch operand
 *   a.Emit(Opcode::kChmk, {Imm(0)});         // sys_exit
 *   Program p = a.Finish();
 *
 * Label references in general operands assemble to d32(PC) (PC-relative,
 * position-independent) or to @#abs32 via AbsRef(). Branch operands are
 * 8- or 16-bit PC displacements; Finish() fails fatally if out of range.
 */

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "isa/isa.h"

namespace atum::assembler {

/** Handle to a code/data position; create with NewLabel, fix with Bind. */
struct Label {
    uint32_t id = ~0u;
    bool valid() const { return id != ~0u; }
};

/** One assembler-level operand (a specifier, possibly label-relative). */
struct AsmOperand {
    isa::AddrMode mode = isa::AddrMode::kReg;
    uint8_t reg = 0;
    int32_t disp = 0;
    uint32_t imm = 0;
    std::optional<Label> label;  ///< when set, mode is kDisp32(PC) or kAbs
};

/** Register operand Rn. */
AsmOperand R(unsigned reg);
/** Register-deferred operand (Rn). */
AsmOperand Def(unsigned reg);
/** Autoincrement operand (Rn)+. */
AsmOperand Inc(unsigned reg);
/** Autodecrement operand -(Rn). */
AsmOperand Dec(unsigned reg);
/** Displacement operand disp(Rn); assembles to d8 or d32 form. */
AsmOperand Disp(int32_t disp, unsigned reg);
/** Displacement-deferred operand @disp(Rn). */
AsmOperand DispDef(int32_t disp, unsigned reg);
/** Immediate operand #value. */
AsmOperand Imm(uint32_t value);
/** Absolute operand @#address. */
AsmOperand Abs(uint32_t address);
/** PC-relative reference to a label: assembles to d32(PC). */
AsmOperand Ref(Label label);
/** Absolute reference to a label: assembles to @#address. */
AsmOperand AbsRef(Label label);

/** A fully assembled, relocated image. */
struct Program {
    uint32_t origin = 0;            ///< address of bytes[0]
    std::vector<uint8_t> bytes;
    std::map<std::string, uint32_t> symbols;  ///< named labels → addresses

    uint32_t size() const { return static_cast<uint32_t>(bytes.size()); }
    /** Returns the address of a named label; Fatal if unknown. */
    uint32_t SymbolAddr(const std::string& name) const;
};

class Assembler
{
  public:
    /** Creates an assembler emitting at virtual address `origin`. */
    explicit Assembler(uint32_t origin);

    Assembler(const Assembler&) = delete;
    Assembler& operator=(const Assembler&) = delete;

    /** Creates an unbound label. Named labels appear in Program::symbols. */
    Label NewLabel(const std::string& name = "");
    /** Binds `label` to the current emission address; a label binds once. */
    void Bind(Label label);
    /** Shorthand: NewLabel + Bind. */
    Label Here(const std::string& name = "");

    /**
     * Emits one instruction. `operands` covers the general specifier
     * operands in order; `branch` must be given exactly when the opcode has
     * a trailing branch-displacement operand (BRB/Bcc/BRW/SOBGTR/...).
     */
    void Emit(isa::Opcode op, const std::vector<AsmOperand>& operands = {},
              std::optional<Label> branch = std::nullopt);

    /**
     * Emits a CASEL word-displacement table: one 16-bit entry per target,
     * each the offset of its target relative to the table start (the
     * convention the CASEL microcode uses). Call immediately after
     * emitting the CASEL instruction.
     */
    void CaseTable(const std::vector<Label>& targets);

    /** Emits a 32-bit little-endian literal. */
    void Long(uint32_t v);
    /** Emits the address of `label` as 32-bit data (fixed up at Finish). */
    void LongRef(Label label);
    /** Emits one byte of data. */
    void Byte(uint8_t v);
    /** Emits `n` zero bytes. */
    void Space(uint32_t n);
    /** Pads with zero bytes to the given power-of-two alignment. */
    void Align(uint32_t alignment);

    /** Current emission address (origin + bytes emitted). */
    uint32_t here() const
    {
        return origin_ + static_cast<uint32_t>(bytes_.size());
    }

    /**
     * Resolves all fixups and returns the image. Fatal on unbound labels or
     * out-of-range branch displacements. The assembler must not be reused.
     */
    Program Finish();

  private:
    enum class FixupKind { kBranch8, kBranch16, kPcRel32, kAbs32, kCase16 };

    struct Fixup {
        FixupKind kind;
        uint32_t offset;  ///< where in bytes_ the field starts
        uint32_t label_id;
        uint32_t base_offset = 0;  ///< kCase16: table start within bytes_
    };

    void EmitSpecifier(const AsmOperand& op, isa::DataType type,
                       isa::Access access);
    void Put8(uint8_t v) { bytes_.push_back(v); }
    void Put16(uint16_t v);
    void Put32(uint32_t v);

    uint32_t origin_;
    std::vector<uint8_t> bytes_;
    std::vector<std::optional<uint32_t>> label_addrs_;
    std::vector<std::string> label_names_;
    std::vector<Fixup> fixups_;
    bool finished_ = false;
};

}  // namespace atum::assembler

#endif  // ATUM_ASSEMBLER_ASSEMBLER_H_
