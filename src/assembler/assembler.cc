#include "assembler/assembler.h"

#include "util/bitops.h"
#include "util/logging.h"

namespace atum::assembler {

using isa::AddrMode;
using isa::Access;
using isa::DataType;
using isa::Opcode;

AsmOperand
R(unsigned reg)
{
    return {AddrMode::kReg, static_cast<uint8_t>(reg), 0, 0, std::nullopt};
}

AsmOperand
Def(unsigned reg)
{
    return {AddrMode::kRegDef, static_cast<uint8_t>(reg), 0, 0, std::nullopt};
}

AsmOperand
Inc(unsigned reg)
{
    return {AddrMode::kAutoInc, static_cast<uint8_t>(reg), 0, 0,
            std::nullopt};
}

AsmOperand
Dec(unsigned reg)
{
    return {AddrMode::kAutoDec, static_cast<uint8_t>(reg), 0, 0,
            std::nullopt};
}

AsmOperand
Disp(int32_t disp, unsigned reg)
{
    const bool fits8 = disp >= -128 && disp <= 127;
    return {fits8 ? AddrMode::kDisp8 : AddrMode::kDisp32,
            static_cast<uint8_t>(reg), disp, 0, std::nullopt};
}

AsmOperand
DispDef(int32_t disp, unsigned reg)
{
    return {AddrMode::kDisp32Def, static_cast<uint8_t>(reg), disp, 0,
            std::nullopt};
}

AsmOperand
Imm(uint32_t value)
{
    return {AddrMode::kImm, 0, 0, value, std::nullopt};
}

AsmOperand
Abs(uint32_t address)
{
    return {AddrMode::kAbs, 0, 0, address, std::nullopt};
}

AsmOperand
Ref(Label label)
{
    AsmOperand op{AddrMode::kDisp32, isa::kRegPc, 0, 0, label};
    return op;
}

AsmOperand
AbsRef(Label label)
{
    AsmOperand op{AddrMode::kAbs, 0, 0, 0, label};
    return op;
}

uint32_t
Program::SymbolAddr(const std::string& name) const
{
    auto it = symbols.find(name);
    if (it == symbols.end())
        Fatal("unknown symbol: ", name);
    return it->second;
}

Assembler::Assembler(uint32_t origin) : origin_(origin) {}

Label
Assembler::NewLabel(const std::string& name)
{
    label_addrs_.push_back(std::nullopt);
    label_names_.push_back(name);
    return Label{static_cast<uint32_t>(label_addrs_.size() - 1)};
}

void
Assembler::Bind(Label label)
{
    if (!label.valid() || label.id >= label_addrs_.size())
        Panic("Bind on invalid label");
    if (label_addrs_[label.id])
        Fatal("label '", label_names_[label.id], "' bound twice");
    label_addrs_[label.id] = here();
}

Label
Assembler::Here(const std::string& name)
{
    Label l = NewLabel(name);
    Bind(l);
    return l;
}

void
Assembler::Put16(uint16_t v)
{
    Put8(static_cast<uint8_t>(v));
    Put8(static_cast<uint8_t>(v >> 8));
}

void
Assembler::Put32(uint32_t v)
{
    Put16(static_cast<uint16_t>(v));
    Put16(static_cast<uint16_t>(v >> 16));
}

void
Assembler::EmitSpecifier(const AsmOperand& op, DataType type, Access access)
{
    // Reserved-operand checks mirror the decoder's rules so mistakes fail
    // at assembly time instead of at guest run time.
    if (op.mode == AddrMode::kImm && access != Access::kRead)
        Fatal("immediate operand used as destination/address");
    if (op.mode == AddrMode::kReg && access == Access::kAddress)
        Fatal("register operand where an address is required");

    Put8(isa::SpecifierByte(op.mode, op.reg));
    switch (op.mode) {
      case AddrMode::kDisp8:
        Put8(static_cast<uint8_t>(op.disp));
        break;
      case AddrMode::kDisp32:
        if (op.label) {
            fixups_.push_back({FixupKind::kPcRel32,
                               static_cast<uint32_t>(bytes_.size()),
                               op.label->id});
            Put32(0);
        } else {
            Put32(static_cast<uint32_t>(op.disp));
        }
        break;
      case AddrMode::kDisp32Def:
        Put32(static_cast<uint32_t>(op.disp));
        break;
      case AddrMode::kImm:
        if (type == DataType::kByte)
            Put8(static_cast<uint8_t>(op.imm));
        else if (type == DataType::kWord)
            Put16(static_cast<uint16_t>(op.imm));
        else
            Put32(op.imm);
        break;
      case AddrMode::kAbs:
        if (op.label) {
            fixups_.push_back({FixupKind::kAbs32,
                               static_cast<uint32_t>(bytes_.size()),
                               op.label->id});
            Put32(0);
        } else {
            Put32(op.imm);
        }
        break;
      default:
        break;
    }
}

void
Assembler::Emit(Opcode op, const std::vector<AsmOperand>& operands,
                std::optional<Label> branch)
{
    if (finished_)
        Panic("Emit after Finish");
    const isa::InstrInfo& info = isa::GetInstrInfo(op);
    if (!info.valid)
        Fatal("emitting unassigned opcode 0x", std::hex,
              static_cast<unsigned>(op));

    size_t want_specifiers = 0;
    bool want_branch8 = false;
    bool want_branch16 = false;
    for (const auto& desc : info.operands) {
        if (desc.access == Access::kBranch8)
            want_branch8 = true;
        else if (desc.access == Access::kBranch16)
            want_branch16 = true;
        else
            ++want_specifiers;
    }
    if (operands.size() != want_specifiers) {
        Fatal(info.mnemonic, " takes ", want_specifiers,
              " general operand(s), got ", operands.size());
    }
    if ((want_branch8 || want_branch16) != branch.has_value())
        Fatal(info.mnemonic, want_branch8 || want_branch16
                                 ? " requires a branch label"
                                 : " takes no branch label");

    Put8(static_cast<uint8_t>(op));
    size_t next = 0;
    for (const auto& desc : info.operands) {
        if (desc.access == Access::kBranch8) {
            fixups_.push_back({FixupKind::kBranch8,
                               static_cast<uint32_t>(bytes_.size()),
                               branch->id});
            Put8(0);
        } else if (desc.access == Access::kBranch16) {
            fixups_.push_back({FixupKind::kBranch16,
                               static_cast<uint32_t>(bytes_.size()),
                               branch->id});
            Put16(0);
        } else {
            EmitSpecifier(operands[next++], desc.type, desc.access);
        }
    }
}

void
Assembler::CaseTable(const std::vector<Label>& targets)
{
    const uint32_t table_start = static_cast<uint32_t>(bytes_.size());
    for (const Label& target : targets) {
        fixups_.push_back({FixupKind::kCase16,
                           static_cast<uint32_t>(bytes_.size()), target.id,
                           table_start});
        Put16(0);
    }
}

void
Assembler::Long(uint32_t v)
{
    Put32(v);
}

void
Assembler::LongRef(Label label)
{
    fixups_.push_back({FixupKind::kAbs32,
                       static_cast<uint32_t>(bytes_.size()), label.id});
    Put32(0);
}

void
Assembler::Byte(uint8_t v)
{
    Put8(v);
}

void
Assembler::Space(uint32_t n)
{
    bytes_.insert(bytes_.end(), n, 0);
}

void
Assembler::Align(uint32_t alignment)
{
    if (!IsPowerOfTwo(alignment))
        Fatal("alignment must be a power of two, got ", alignment);
    while (here() % alignment != 0)
        Put8(0);
}

Program
Assembler::Finish()
{
    if (finished_)
        Panic("Finish called twice");
    finished_ = true;

    for (const Fixup& f : fixups_) {
        if (!label_addrs_[f.label_id]) {
            Fatal("unbound label '", label_names_[f.label_id],
                  "' referenced at offset ", f.offset);
        }
        const uint32_t target = *label_addrs_[f.label_id];
        const uint32_t field_addr = origin_ + f.offset;
        switch (f.kind) {
          case FixupKind::kBranch8: {
            const int64_t disp = static_cast<int64_t>(target) -
                                 (static_cast<int64_t>(field_addr) + 1);
            if (disp < -128 || disp > 127) {
                Fatal("branch to '", label_names_[f.label_id],
                      "' out of byte range (", disp, ")");
            }
            bytes_[f.offset] = static_cast<uint8_t>(disp);
            break;
          }
          case FixupKind::kBranch16: {
            const int64_t disp = static_cast<int64_t>(target) -
                                 (static_cast<int64_t>(field_addr) + 2);
            if (disp < -32768 || disp > 32767) {
                Fatal("branch to '", label_names_[f.label_id],
                      "' out of word range (", disp, ")");
            }
            bytes_[f.offset] = static_cast<uint8_t>(disp);
            bytes_[f.offset + 1] = static_cast<uint8_t>(disp >> 8);
            break;
          }
          case FixupKind::kPcRel32: {
            // PC-relative: PC reads as the address after the 4-byte field.
            const uint32_t disp = target - (field_addr + 4);
            for (int i = 0; i < 4; ++i)
                bytes_[f.offset + i] = static_cast<uint8_t>(disp >> (8 * i));
            break;
          }
          case FixupKind::kAbs32: {
            for (int i = 0; i < 4; ++i)
                bytes_[f.offset + i] =
                    static_cast<uint8_t>(target >> (8 * i));
            break;
          }
          case FixupKind::kCase16: {
            const int64_t disp = static_cast<int64_t>(target) -
                                 (static_cast<int64_t>(origin_) +
                                  f.base_offset);
            if (disp < -32768 || disp > 32767) {
                Fatal("case target '", label_names_[f.label_id],
                      "' out of word range (", disp, ")");
            }
            bytes_[f.offset] = static_cast<uint8_t>(disp);
            bytes_[f.offset + 1] = static_cast<uint8_t>(disp >> 8);
            break;
          }
        }
    }

    Program p;
    p.origin = origin_;
    p.bytes = std::move(bytes_);
    for (size_t i = 0; i < label_addrs_.size(); ++i) {
        if (!label_names_[i].empty()) {
            if (!label_addrs_[i])
                Fatal("named label '", label_names_[i], "' never bound");
            p.symbols[label_names_[i]] = *label_addrs_[i];
        }
    }
    return p;
}

}  // namespace atum::assembler
