// Experiment T1 (reconstructed): per-workload trace characteristics.
//
// The ATUM paper tabulated, for each captured workload, the trace length
// and the composition of references (instruction stream vs data reads vs
// writes, and how much of everything belonged to the operating system).
// This harness regenerates that table for every workload alone and for
// the degree-3 multiprogrammed mix.
//
// Paper shape to reproduce: the OS contributes a large minority of all
// references, and writes are roughly a third of data references.

#include <cstdio>

#include "common.h"
#include "trace/stats.h"
#include "util/table.h"

namespace atum {
namespace {

void
AddRow(Table& table, bench::BenchReport& report, const std::string& name,
       const bench::Capture& capture)
{
    trace::TraceStats stats;
    for (const auto& r : capture.records)
        stats.Accumulate(r);

    const double mem = static_cast<double>(stats.mem_refs());
    report.Add("mem_refs", mem, "records", {{"workload", name}});
    report.Add("os_share", 100.0 * stats.KernelFraction(), "%",
               {{"workload", name}});
    report.Add("write_share",
               100.0 * stats.CountOf(trace::RecordType::kWrite) / mem, "%",
               {{"workload", name}});
    table.AddRow({
        name,
        std::to_string(capture.session.instructions),
        std::to_string(stats.mem_refs()),
        Table::Fmt(100.0 * stats.CountOf(trace::RecordType::kIFetch) / mem, 1),
        Table::Fmt(100.0 * stats.CountOf(trace::RecordType::kRead) / mem, 1),
        Table::Fmt(100.0 * stats.CountOf(trace::RecordType::kWrite) / mem, 1),
        Table::Fmt(100.0 * stats.CountOf(trace::RecordType::kPte) / mem, 1),
        Table::Fmt(100.0 * stats.KernelFraction(), 1),
        std::to_string(capture.context_switches),
        std::to_string(capture.page_faults),
    });
}

int
Run()
{
    std::printf("T1: trace characteristics (full-system ATUM capture)\n\n");
    Table table({"workload", "instrs", "mem-refs", "ifetch%", "read%",
                 "write%", "pte%", "os%", "ctxsw", "pgflts"});
    bench::BenchReport report("t1_trace_characteristics");

    for (const std::string& name : workloads::AllWorkloadNames()) {
        AddRow(table, report, name,
               bench::CaptureFullSystem({workloads::MakeWorkload(name)}));
    }
    AddRow(table, report, "mix-3",
           bench::CaptureFullSystem(bench::MixOfDegree(3)));

    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: OS share is a substantial minority and\n"
                "writes are a sizeable fraction of data references.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
