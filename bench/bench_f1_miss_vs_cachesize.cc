// Experiment F1 (reconstructed): cache miss rate vs cache size,
// full-system ATUM trace vs the pre-ATUM user-only trace.
//
// This is the paper's headline comparison: caches sized on user-only
// traces looked far better than they behaved under a real multiprogrammed
// OS. Direct-mapped, 16-byte blocks, flush-on-switch (no PID tags, the
// common design of the era).
//
// Paper shape to reproduce: the full-system miss rate is markedly higher,
// and the gap *widens* with cache size (user-only curves keep improving
// while system effects put a floor under the real curve).

#include <cstdio>

#include "common.h"
#include "replay/sweep.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    const bench::Capture full =
        bench::CaptureFullSystem(bench::MixOfDegree(3));
    const bench::Capture user = bench::CaptureUserOnly(bench::MixOfDegree(3));

    cache::CacheConfig base{.block_bytes = 16, .assoc = 1};
    cache::DriverOptions full_opts;
    full_opts.flush_on_switch = true;
    cache::DriverOptions user_opts;  // a single-process trace: no switches

    const std::vector<uint32_t> sizes = {1u << 10, 2u << 10, 4u << 10,
                                         8u << 10, 16u << 10, 32u << 10,
                                         64u << 10, 128u << 10, 256u << 10,
                                         512u << 10};
    // All sizes of one trace replay concurrently; results stay in input
    // (size) order.
    std::vector<replay::SweepConfig> full_jobs, user_jobs;
    for (uint32_t size : sizes) {
        base.size_bytes = size;
        full_jobs.push_back(replay::MakeCacheJob(base, full_opts));
        user_jobs.push_back(replay::MakeCacheJob(base, user_opts));
    }
    const replay::SweepRunner runner;
    const auto full_points = runner.Run(full.records, full_jobs);
    const auto user_points = runner.Run(user.records, user_jobs);

    std::printf("F1: miss rate vs cache size (direct-mapped, 16B blocks)\n");
    std::printf("full-system trace: %zu refs; user-only trace: %zu refs\n\n",
                full.records.size(), user.records.size());
    Table table({"cache", "full-system%", "user-only%", "ratio"});
    bench::BenchReport report("f1_miss_vs_cachesize");
    for (size_t i = 0; i < sizes.size(); ++i) {
        const double f = full_points[i].MissRate();
        const double u = user_points[i].MissRate();
        const std::string size_kb = std::to_string(sizes[i] / 1024);
        report.Add("miss_rate", 100.0 * f, "%",
                   {{"size_kb", size_kb}, {"trace", "full-system"}});
        report.Add("miss_rate", 100.0 * u, "%",
                   {{"size_kb", size_kb}, {"trace", "user-only"}});
        table.AddRow({
            std::to_string(sizes[i] / 1024) + "K",
            Table::Fmt(100.0 * f, 2),
            Table::Fmt(100.0 * u, 2),
            u > 0 ? Table::Fmt(f / u, 2) : "inf",
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: full-system misses exceed user-only at every\n"
                "size and the ratio grows with cache size.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
