// Ablation A7: set-sampled cache simulation — accuracy and its hazard.
//
// Set sampling simulates 1/2^k of the sets — the standard way the era
// stretched limited trace-processing budgets. Its accuracy depends
// entirely on how evenly traffic spreads across sets. Loop-dominated
// CISC instruction streams concentrate most hits in a handful of sets,
// so small samples that miss the hot sets overestimate wildly; the
// harness quantifies exactly that (the caveat the sampling literature
// warned about), alongside the regime where the estimate is usable.

#include <cstdio>

#include "analysis/compare.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3));
    cache::DriverOptions opts;
    opts.flush_on_switch = true;

    std::printf("A7: set-sampling accuracy (direct-mapped, 16B blocks, "
                "full-system trace)\n\n");
    Table table({"cache", "full-miss%", "1/2-sets%", "1/4-sets%",
                 "1/16-sets%", "1/16-access-share%"});
    bench::BenchReport report("a7_set_sampling");
    for (uint32_t kib : {8u, 32u, 128u}) {
        cache::CacheConfig config{.size_bytes = kib << 10,
                                  .block_bytes = 16,
                                  .assoc = 1};
        const auto full = analysis::SimulateCache(cap.records, config, opts);
        const auto s2 =
            analysis::SetSampledMissRate(cap.records, config, opts, 1);
        const auto s4 =
            analysis::SetSampledMissRate(cap.records, config, opts, 2);
        const auto s16 =
            analysis::SetSampledMissRate(cap.records, config, opts, 4);
        report.Add("miss_rate", 100.0 * full.MissRate(), "%",
                   {{"size_kb", std::to_string(kib)}, {"sets", "full"}});
        for (const auto& [frac, stats] :
             {std::pair<const char*, const analysis::SampledStats*>{
                  "1/2", &s2},
              {"1/4", &s4}, {"1/16", &s16}}) {
            report.Add("miss_rate", 100.0 * stats->MissRate(), "%",
                       {{"size_kb", std::to_string(kib)},
                        {"sets", frac}});
        }
        table.AddRow({
            std::to_string(kib) + "K",
            Table::Fmt(100.0 * full.MissRate(), 3),
            Table::Fmt(100.0 * s2.MissRate(), 3),
            Table::Fmt(100.0 * s4.MissRate(), 3),
            Table::Fmt(100.0 * s16.MissRate(), 3),
            // How much of the total traffic the 1/16 sample saw: far
            // below 1/16 when loops concentrate accesses elsewhere.
            Table::Fmt(100.0 * static_cast<double>(s16.sampled_accesses) /
                           static_cast<double>(full.accesses),
                       2),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: half-the-sets samples track the truth, but\n"
                "small samples that miss the loop-hot sets overestimate\n"
                "several-fold — set sampling is only as reliable as the\n"
                "traffic is uniform, the caveat the literature documented.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
