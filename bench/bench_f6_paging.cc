// Experiment F6 (extension): memory pressure and the pager in the traces.
//
// ATUM's full-system traces captured VMS's paging activity; this harness
// recreates that class of study: shrink the frame pool under a fixed
// workload and watch fault rate, swap traffic, and the OS share of all
// memory references climb — the thrashing curve.

#include <cstdio>

#include "common.h"
#include "kernel/layout.h"
#include "trace/stats.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    std::printf("F6: frame-pool size vs paging activity (sort workload)\n\n");
    Table table({"pool(frames)", "pgfaults", "swap-outs", "swap-ins",
                 "os-refs%", "instr"});
    bench::BenchReport report("f6_paging");

    for (uint32_t pool : {0u, 48u, 32u, 24u, 16u, 12u}) {
        cpu::Machine machine(bench::StandardMachineConfig());
        trace::VectorSink sink;
        core::AtumTracer tracer(machine, sink);
        kernel::BootOptions options;
        options.swap_frames = 512;
        options.max_pool_frames = pool;
        kernel::BootInfo info = kernel::BootSystem(
            machine, {workloads::MakeSort(6000)}, options);
        const auto result = core::RunTraced(machine, tracer, 400'000'000);
        if (!result.halted)
            Fatal("paging run did not complete at pool=", pool);

        trace::TraceStats stats;
        for (const auto& r : sink.records())
            stats.Accumulate(r);

        const std::string pool_key =
            pool == 0 ? "unlimited" : std::to_string(pool);
        report.Add("page_faults",
                   static_cast<double>(info.ReadKdata(
                       machine, kernel::KdataOffsets::kPfCount)),
                   "faults", {{"pool_frames", pool_key}});
        report.Add("os_share", 100.0 * stats.KernelFraction(), "%",
                   {{"pool_frames", pool_key}});
        table.AddRow({
            pool == 0 ? "unlimited" : std::to_string(pool),
            std::to_string(
                info.ReadKdata(machine, kernel::KdataOffsets::kPfCount)),
            std::to_string(
                info.ReadKdata(machine, kernel::KdataOffsets::kSwapOuts)),
            std::to_string(
                info.ReadKdata(machine, kernel::KdataOffsets::kSwapIns)),
            Table::Fmt(100.0 * stats.KernelFraction(), 1),
            std::to_string(result.instructions),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: shrinking memory multiplies page faults and\n"
                "swap traffic, and the OS share of references climbs —\n"
                "thrashing, visible only in a full-system trace.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
