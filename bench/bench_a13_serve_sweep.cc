// Ablation A13: resumable replay sweeps through the serve daemon.
//
// Four measurements against a ServeCore in drill mode on an in-memory
// disk (deterministic rows, wall-clock latencies banded in the gate):
//
//   1. Row latency — wall time of one single-config sweep job, which
//      includes the S4 journal append+fsync each row pays before it is
//      reported, as p50/p99 across a burst of sweeps.
//   2. Sweep throughput — config rows completed per second through one
//      wide sweep, with the deterministic row/record totals.
//   3. Resume cost — the wide sweep's journal cut back to one completed
//      row (the state a power cut mid-sweep leaves), a fresh core booted
//      on it, and the recovery + remainder re-run timed; aborts unless
//      the merged result is byte-identical to the clean run (S5).
//   4. Kill-restart sweep campaign — the mixed-fault serve drill with
//      seed-scripted sweeps (chaos/campaign.h), recovered and S1–S5
//      checked. Aborts on any violation; reports the deterministic
//      ack/row/partial-resume counts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "common.h"
#include "io/mem_vfs.h"
#include "obs/metrics.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/logging.h"
#include "util/table.h"

namespace atum {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kRowBurst = 24;    // single-config sweeps in the burst
constexpr uint32_t kWideConfigs = 12; // configs in the throughput sweep

double
Percentile(std::vector<uint64_t> sorted_us, double p)
{
    if (sorted_us.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted_us.size() - 1) / 100.0 + 0.5);
    return static_cast<double>(sorted_us[std::min(idx,
                                                  sorted_us.size() - 1)]);
}

serve::ServeConfig
BenchConfig()
{
    serve::ServeConfig config;
    config.dir = ".";
    config.workers = 0;  // drill mode: synchronous, deterministic
    config.buffer_bytes = 4u << 10;
    config.chunk_records = 64;
    config.checkpoint_every_fills = 1;
    config.keep_checkpoints = 2;
    config.admission.max_queue_depth = kRowBurst + 8;
    config.admission.max_per_tenant = kRowBurst + 8;
    config.admission.default_max_instructions = 4000;
    return config;
}

/** The three simulator kinds, cycled so the burst exercises each. */
serve::SweepConfigSpec
ConfigFor(uint32_t i)
{
    serve::SweepConfigSpec spec;
    switch (i % 3) {
      case 0:
        spec.kind = "cache";
        spec.size_kb = 4u << (i % 4);
        spec.assoc = 1u << (i % 2);
        break;
      case 1:
        spec.kind = "hierarchy";
        spec.size_kb = 32u << (i % 2);
        spec.assoc = 2;
        break;
      default:
        spec.kind = "tlb";
        spec.entries = 16u << (i % 3);
        spec.ways = (i % 2) != 0 ? 4 : 0;
        break;
    }
    return spec;
}

uint64_t
RequestId(serve::ServeCore& core, const serve::Request& request)
{
    const std::string response =
        core.HandleRequest(serve::SerializeRequest(request));
    util::StatusOr<util::JsonValue> doc = util::JsonValue::Parse(response);
    if (!doc.ok() || !doc->Get("ok").AsBool())
        Fatal("A13: request refused: ", response);
    return doc->Get("id").AsU64();
}

uint64_t
SubmitSweep(serve::ServeCore& core, uint64_t of,
            const std::vector<serve::SweepConfigSpec>& configs)
{
    serve::Request request;
    request.op = serve::RequestOp::kSweep;
    request.sweep_of = of;
    request.sweep_configs = configs;
    return RequestId(core, request);
}

const serve::JobInfo*
FindJob(const std::vector<serve::JobInfo>& jobs, uint64_t id)
{
    for (const serve::JobInfo& job : jobs)
        if (job.id == id)
            return &job;
    return nullptr;
}

int
Run()
{
    bench::BenchReport report("a13_serve_sweep");
    Table table({"metric", "value", "unit"});

    // One finished capture feeds every sweep below.
    io::MemVfs vfs;
    obs::Registry registry;
    serve::ServeCore core(BenchConfig(), vfs, &registry);
    if (!core.Start().ok())
        Fatal("A13: daemon failed to start");
    serve::Request submit;
    submit.op = serve::RequestOp::kSubmit;
    const uint64_t capture = RequestId(core, submit);
    if (!core.RunNextQueuedJob())
        Fatal("A13: capture did not run");

    // -- 1. row latency burst ----------------------------------------------
    std::vector<uint64_t> row_us;
    row_us.reserve(kRowBurst);
    for (uint32_t i = 0; i < kRowBurst; ++i) {
        SubmitSweep(core, capture, {ConfigFor(i)});
        const Clock::time_point t0 = Clock::now();
        if (!core.RunNextQueuedJob())
            Fatal("A13: burst sweep did not run");
        row_us.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - t0)
                .count()));
    }
    std::sort(row_us.begin(), row_us.end());
    const double row_p50 = Percentile(row_us, 50);
    const double row_p99 = Percentile(row_us, 99);
    report.Add("sweep_row_p50", row_p50, "us", {});
    report.Add("sweep_row_p99", row_p99, "us", {});
    table.AddRow({"row p50", Table::Fmt(row_p50, 0), "us"});
    table.AddRow({"row p99", Table::Fmt(row_p99, 0), "us"});

    // -- 2. wide-sweep throughput ------------------------------------------
    std::vector<serve::SweepConfigSpec> wide;
    for (uint32_t i = 0; i < kWideConfigs; ++i)
        wide.push_back(ConfigFor(i));
    const uint64_t sweep = SubmitSweep(core, capture, wide);
    const Clock::time_point wide0 = Clock::now();
    if (!core.RunNextQueuedJob())
        Fatal("A13: wide sweep did not run");
    const double wide_s =
        std::chrono::duration<double>(Clock::now() - wide0).count();

    std::vector<serve::JobInfo> jobs = core.Jobs();
    const serve::JobInfo* wide_job = FindJob(jobs, sweep);
    if (wide_job == nullptr || wide_job->outcome != "done")
        Fatal("A13: wide sweep did not finish clean");
    const std::vector<std::string> golden = wide_job->sweep_rows;
    const double rows_per_s =
        wide_s > 0.0 ? static_cast<double>(kWideConfigs) / wide_s : 0.0;
    report.Add("sweep_throughput", rows_per_s, "/s", {});
    report.Add("rows_completed",
               static_cast<double>(wide_job->configs_done), "rows", {});
    table.AddRow({"throughput", Table::Fmt(rows_per_s, 1), "rows/s"});
    table.AddRow({"rows", std::to_string(wide_job->configs_done), "rows"});
    // The core is dropped without Shutdown below, like a SIGKILL.

    // -- 3. resume from a one-row journal prefix ---------------------------
    std::string bytes;
    {
        util::StatusOr<std::unique_ptr<io::ReadableFile>> in =
            vfs.OpenRead("serve.journal");
        if (!in.ok())
            Fatal("A13: journal unreadable: ", in.status().ToString());
        char buf[4096];
        for (;;) {
            util::StatusOr<size_t> n = (*in)->Read(buf, sizeof buf);
            if (!n.ok())
                Fatal("A13: journal read: ", n.status().ToString());
            if (*n == 0)
                break;
            bytes.append(buf, *n);
        }
    }
    // Cut just past the wide sweep's first kSweepConfig frame. Frames map
    // 1:1 onto the scan's record order: [u32 len][u32 crc][payload].
    const std::vector<serve::JournalRecord> records =
        serve::ScanJournalBytes(bytes, nullptr, nullptr);
    size_t cut = 0;
    bool found = false;
    {
        size_t off = 0;
        for (const serve::JournalRecord& record : records) {
            uint32_t len = 0;
            for (int b = 0; b < 4; ++b)
                len |= static_cast<uint32_t>(static_cast<unsigned char>(
                           bytes[off + static_cast<size_t>(b)]))
                       << (8 * b);
            off += 8 + len;
            if (record.kind == serve::JournalKind::kSweepConfig &&
                record.id == sweep) {
                cut = off;
                found = true;
                break;
            }
        }
    }
    if (!found)
        Fatal("A13: no sweep row record in the journal");
    {
        util::StatusOr<std::unique_ptr<io::WritableFile>> out =
            vfs.Create("serve.journal");
        if (!out.ok() ||
            !(*out)->Write(bytes.data(), cut).ok() ||
            !(*out)->Sync().ok() || !(*out)->Close().ok())
            Fatal("A13: journal cut failed");
    }

    obs::Registry registry2;
    serve::ServeCore core2(BenchConfig(), vfs, &registry2);
    const Clock::time_point resume0 = Clock::now();
    if (!core2.Start().ok())
        Fatal("A13: recovery boot failed");
    while (core2.RunNextQueuedJob()) {
    }
    const double resume_ms =
        std::chrono::duration<double>(Clock::now() - resume0).count() *
        1000.0;
    jobs = core2.Jobs();
    const serve::JobInfo* resumed = FindJob(jobs, sweep);
    if (resumed == nullptr || resumed->outcome != "done" ||
        !resumed->resumed)
        Fatal("A13: sweep did not resume to done");
    if (resumed->sweep_rows != golden)
        Fatal("A13: resumed sweep diverged from the clean run (S5)");
    core2.Shutdown();
    report.Add("resume_wall", resume_ms, "ms", {});
    report.Add("resume_rows_rerun",
               static_cast<double>(kWideConfigs - 1), "rows", {});
    report.Add("resume_identical", 1.0, "bool", {});
    table.AddRow({"resume wall", Table::Fmt(resume_ms, 1), "ms"});
    table.AddRow({"resume re-ran", std::to_string(kWideConfigs - 1),
                  "rows"});

    // -- 4. kill-restart sweep campaign ------------------------------------
    chaos::ServeCampaignSpec spec;
    spec.campaigns = {"powercut", "enospc", "torn-rename"};
    spec.jobs = 2;
    spec.max_instructions = 2000;
    spec.buffer_bytes = 8u << 10;
    spec.sweeps = 2;
    spec.sweep_configs = 3;
    util::StatusOr<chaos::ServeCampaignResult> campaign =
        chaos::RunServeCampaign(spec, /*first_seed=*/1, /*seeds=*/10,
                                [](const chaos::ServeSeedResult& r) {
                                    if (!r.ok())
                                        Fatal("A13: invariant violated: ",
                                              r.Summary());
                                });
    if (!campaign.ok())
        Fatal("A13: campaign failed to run: ",
              campaign.status().ToString());
    report.Add("drill_power_cuts",
               static_cast<double>(campaign->power_cuts), "cuts", {});
    report.Add("drill_sweeps_acked",
               static_cast<double>(campaign->sweeps_acked), "sweeps", {});
    report.Add("drill_sweep_rows",
               static_cast<double>(campaign->sweep_rows), "rows", {});
    report.Add("drill_partial_resumes",
               static_cast<double>(campaign->sweep_partial_resumes),
               "seeds", {});
    table.AddRow({"drill cuts/acked/rows/partial",
                  std::to_string(campaign->power_cuts) + "/" +
                      std::to_string(campaign->sweeps_acked) + "/" +
                      std::to_string(campaign->sweep_rows) + "/" +
                      std::to_string(campaign->sweep_partial_resumes),
                  ""});

    std::printf("A13: replay sweeps through the serve daemon, "
                "%u-row burst, %u-config sweep\n\n%s\n",
                kRowBurst, kWideConfigs, table.ToString().c_str());
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
