// Experiment T6 (reconstructed): dynamic opcode frequencies.
//
// ATUM-class traces (with opcode markers) let architects measure which
// CISC instructions software *actually executed* — numbers that fed
// directly into the RISC debate. This harness captures the standard mix
// with kOpcode records enabled and tabulates the dynamic instruction mix,
// split kernel vs user.

#include <algorithm>
#include <cstdio>
#include <map>

#include "common.h"
#include "isa/isa.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    core::AtumConfig config;
    config.record_opcodes = true;
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3), config);

    std::map<uint8_t, uint64_t> user_counts, kernel_counts;
    uint64_t total = 0;
    for (const trace::Record& r : cap.records) {
        if (r.type != trace::RecordType::kOpcode)
            continue;
        ++total;
        auto& counts = r.kernel() ? kernel_counts : user_counts;
        ++counts[static_cast<uint8_t>(r.info)];
    }

    std::map<uint8_t, uint64_t> combined = user_counts;
    for (const auto& [op, n] : kernel_counts)
        combined[op] += n;
    std::vector<std::pair<uint8_t, uint64_t>> ranked(combined.begin(),
                                                     combined.end());
    std::sort(ranked.begin(), ranked.end(),
              [](const auto& a, const auto& b) { return a.second > b.second; });

    std::printf("T6: dynamic opcode frequencies (%llu instructions, "
                "degree-3 mix)\n\n",
                static_cast<unsigned long long>(total));
    Table table({"rank", "opcode", "total%", "user%", "kernel%"});
    bench::BenchReport report("t6_opcode_mix");
    double cumulative = 0;
    for (size_t i = 0; i < ranked.size() && i < 15; ++i) {
        const auto [op, n] = ranked[i];
        const double pct = 100.0 * static_cast<double>(n) /
                           static_cast<double>(total);
        cumulative += pct;
        if (i < 5)
            report.Add("opcode_share", pct, "%",
                       {{"opcode",
                         isa::MnemonicOf(static_cast<isa::Opcode>(op))},
                        {"rank", std::to_string(i + 1)}});
        table.AddRow({
            std::to_string(i + 1),
            isa::MnemonicOf(static_cast<isa::Opcode>(op)),
            Table::Fmt(pct, 2),
            Table::Fmt(100.0 * static_cast<double>(user_counts[op]) /
                           static_cast<double>(total),
                       2),
            Table::Fmt(100.0 * static_cast<double>(kernel_counts[op]) /
                           static_cast<double>(total),
                       2),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("top-15 cover %.1f%% of dynamic instructions; %zu distinct "
                "opcodes executed\n\n",
                cumulative, combined.size());
    report.Add("top15_coverage", cumulative, "%");
    report.Add("distinct_opcodes", static_cast<double>(combined.size()),
               "opcodes");
    std::printf("Shape check: a handful of simple moves/branches dominate\n"
                "the dynamic mix of a CISC — the classic measurement that\n"
                "fed the RISC argument.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
