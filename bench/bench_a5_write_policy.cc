// Ablation A5: write-through + write buffer vs write-back.
//
// The 8200 era ran write-through caches; the question full-system traces
// could finally answer was how much bus traffic and how many write-buffer
// stalls that discipline really costs under multiprogrammed loads.

#include <cstdio>

#include "cache/cache.h"
#include "cache/trace_driver.h"
#include "cache/write_buffer.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3));

    // Write-back reference: traffic = (misses + writebacks) x block.
    cache::CacheConfig wb_config{.size_bytes = 64u << 10, .block_bytes = 16,
                                 .assoc = 2};
    cache::Cache wb_cache(wb_config);
    cache::TraceCacheDriver wb_driver(wb_cache, {});
    for (const auto& r : cap.records)
        wb_driver.Feed(r);
    const double wb_traffic =
        static_cast<double>(wb_cache.stats().misses +
                            wb_cache.stats().writebacks) *
        wb_config.block_bytes;

    std::printf("A5: write policies on the full-system trace "
                "(64K 2-way, 16B blocks)\n\n");
    std::printf("write-back: miss %.3f%%, traffic %.2f B/ref\n\n",
                100.0 * wb_cache.stats().MissRate(),
                wb_traffic / static_cast<double>(wb_cache.stats().accesses));

    // Write-through: every store goes to memory through a write buffer.
    Table table({"buffer-depth", "wt-traffic(B/ref)", "stalls/store",
                 "stall-cycles"});
    bench::BenchReport report("a5_write_policy");
    report.Add("wb_traffic",
               wb_traffic / static_cast<double>(wb_cache.stats().accesses),
               "B/ref");
    for (uint32_t depth : {1u, 2u, 4u, 8u}) {
        cache::CacheConfig wt_config = wb_config;
        wt_config.write_back = false;
        cache::Cache wt_cache(wt_config);
        cache::WriteBuffer buffer(
            {.depth = depth, .retire_cycles = 6, .block_bytes = 4});
        uint64_t writes = 0;
        uint16_t pid = 0;
        for (const auto& r : cap.records) {
            if (r.type == trace::RecordType::kCtxSwitch) {
                pid = r.info;
                continue;
            }
            if (!r.IsMemory() || r.type == trace::RecordType::kPte)
                continue;
            const bool is_write = r.type == trace::RecordType::kWrite;
            wt_cache.Access(r.addr, is_write, r.kernel() ? 0 : pid);
            if (is_write) {
                buffer.Write(r.addr);
                ++writes;
            } else {
                buffer.OnReference();
            }
        }
        // Write-through traffic: refills for read misses + every store.
        const double wt_traffic =
            static_cast<double>(wt_cache.stats().read_misses) *
                wt_config.block_bytes +
            static_cast<double>(writes) * 4.0;
        report.Add("wt_traffic",
                   wt_traffic /
                       static_cast<double>(wt_cache.stats().accesses),
                   "B/ref", {{"depth", std::to_string(depth)}});
        report.Add("stalls_per_store", buffer.StallsPerWrite(), "stalls",
                   {{"depth", std::to_string(depth)}});
        table.AddRow({
            std::to_string(depth),
            Table::Fmt(wt_traffic /
                           static_cast<double>(wt_cache.stats().accesses),
                       2),
            Table::Fmt(buffer.StallsPerWrite(), 3),
            std::to_string(buffer.stall_cycles()),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: write-through moves ~7x the bytes of\n"
                "write-back here; deeper buffers cut stalls, but the\n"
                "kernel's page-zeroing store bursts keep pressure on —\n"
                "an OS behaviour only full-system traces expose.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
