// Experiment T3 (reconstructed): trace-buffer sizing and extraction.
//
// ATUM wrote records into a reserved region of physical memory (~0.5 MB on
// the 8200) and froze the machine to extract it when full. This harness
// sweeps the reserved-buffer size and reports fills, records per fill, and
// the share of run time spent paused for extraction.
//
// Paper shape to reproduce: capture proceeds in buffer-sized chunks and
// the relative extraction overhead shrinks as the buffer grows.

#include <cstdio>

#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    std::printf("T3: reserved trace buffer behaviour (degree-2 mix)\n\n");
    Table table({"buffer", "records", "fills", "records/fill",
                 "pause-ucycles", "pause%"});
    bench::BenchReport report("t3_buffer_extraction");

    for (uint32_t kib : {16u, 64u, 256u, 1024u}) {
        core::AtumConfig config;
        config.buffer_bytes = kib << 10;
        const bench::Capture cap =
            bench::CaptureFullSystem(bench::MixOfDegree(2), config);
        const uint64_t pauses =
            cap.session.buffer_fills * config.drain_pause_ucycles;
        report.Add("buffer_fills",
                   static_cast<double>(cap.session.buffer_fills), "fills",
                   {{"buffer_kb", std::to_string(kib)}});
        report.Add("pause_share",
                   100.0 * static_cast<double>(pauses) /
                       static_cast<double>(cap.session.ucycles),
                   "%", {{"buffer_kb", std::to_string(kib)}});
        table.AddRow({
            std::to_string(kib) + "K",
            std::to_string(cap.session.records),
            std::to_string(cap.session.buffer_fills),
            std::to_string(cap.session.buffer_fills == 0
                               ? cap.session.records
                               : cap.session.records /
                                     cap.session.buffer_fills),
            std::to_string(pauses),
            Table::Fmt(100.0 * static_cast<double>(pauses) /
                           static_cast<double>(cap.session.ucycles),
                       2),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: fills scale inversely with buffer size; the\n"
                "extraction pause share becomes negligible at ~0.5-1 MB,\n"
                "matching the paper's choice of reserved region.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
