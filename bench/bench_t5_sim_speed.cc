// Experiment T5: engineering throughput numbers (google-benchmark).
//
// Not a paper table — this is the repo's own speed sheet: how fast the
// microcoded machine executes guest instructions with and without the
// ATUM patches installed, and how fast the trace-driven cache model
// consumes records.

#include <benchmark/benchmark.h>

#include "analysis/compare.h"
#include "common.h"

namespace atum {
namespace {

void
BM_MachineUntraced(benchmark::State& state)
{
    uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Machine machine(bench::StandardMachineConfig());
        kernel::BootSystem(machine, {workloads::MakeHash(1500)});
        const auto r = core::RunUntraced(machine, 400'000'000);
        instructions += r.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineUntraced)->Unit(benchmark::kMillisecond);

void
BM_MachineTraced(benchmark::State& state)
{
    uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Machine machine(bench::StandardMachineConfig());
        trace::CountingSink sink;
        core::AtumTracer tracer(machine, sink);
        kernel::BootSystem(machine, {workloads::MakeHash(1500)});
        const auto r = core::RunTraced(machine, tracer, 400'000'000);
        instructions += r.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineTraced)->Unit(benchmark::kMillisecond);

void
BM_CacheSimulation(benchmark::State& state)
{
    static const std::vector<trace::Record>& records = [] {
        return *new std::vector<trace::Record>(
            bench::CaptureFullSystem(bench::MixOfDegree(2)).records);
    }();
    uint64_t fed = 0;
    for (auto _ : state) {
        cache::Cache c({.size_bytes = 64u << 10,
                        .block_bytes = 16,
                        .assoc = static_cast<uint32_t>(state.range(0))});
        cache::TraceCacheDriver driver(c, {});
        for (const auto& r : records)
            driver.Feed(r);
        fed += driver.fed();
        benchmark::DoNotOptimize(c.stats().misses);
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(fed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheSimulation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void
BM_TraceCaptureOnly(benchmark::State& state)
{
    // Capture cost alone: boot + traced run + drain, per guest instruction.
    uint64_t records = 0;
    for (auto _ : state) {
        const auto cap = bench::CaptureFullSystem(
            {workloads::MakeGrep(4096, 2)});
        records += cap.records.size();
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceCaptureOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atum

BENCHMARK_MAIN();
