// Experiment T5: engineering throughput numbers (google-benchmark).
//
// Not a paper table — this is the repo's own speed sheet: how fast the
// microcoded machine executes guest instructions with and without the
// ATUM patches installed, and how fast the trace-driven cache model
// consumes records.

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/compare.h"
#include "common.h"

namespace atum {
namespace {

void
BM_MachineUntraced(benchmark::State& state)
{
    uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Machine machine(bench::StandardMachineConfig());
        kernel::BootSystem(machine, {workloads::MakeHash(1500)});
        const auto r = core::RunUntraced(machine, 400'000'000);
        instructions += r.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineUntraced)->Unit(benchmark::kMillisecond);

void
BM_MachineTraced(benchmark::State& state)
{
    uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Machine machine(bench::StandardMachineConfig());
        trace::CountingSink sink;
        core::AtumTracer tracer(machine, sink);
        kernel::BootSystem(machine, {workloads::MakeHash(1500)});
        const auto r = core::RunTraced(machine, tracer, 400'000'000);
        instructions += r.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineTraced)->Unit(benchmark::kMillisecond);

void
BM_CacheSimulation(benchmark::State& state)
{
    static const std::vector<trace::Record>& records = [] {
        return *new std::vector<trace::Record>(
            bench::CaptureFullSystem(bench::MixOfDegree(2)).records);
    }();
    uint64_t fed = 0;
    for (auto _ : state) {
        cache::Cache c({.size_bytes = 64u << 10,
                        .block_bytes = 16,
                        .assoc = static_cast<uint32_t>(state.range(0))});
        cache::TraceCacheDriver driver(c, {});
        for (const auto& r : records)
            driver.Feed(r);
        fed += driver.fed();
        benchmark::DoNotOptimize(c.stats().misses);
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(fed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheSimulation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void
BM_TraceCaptureOnly(benchmark::State& state)
{
    // Capture cost alone: boot + traced run + drain, per guest instruction.
    uint64_t records = 0;
    for (auto _ : state) {
        const auto cap = bench::CaptureFullSystem(
            {workloads::MakeGrep(4096, 2)});
        records += cap.records.size();
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceCaptureOnly)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace atum

// Custom main: console output as usual, plus the full google-benchmark
// JSON report written to ${ATUM_BENCH_DIR:-.}/BENCH_t5_sim_speed.json so
// the speed sheet lands next to the other BENCH_*.json files. An explicit
// --benchmark_out on the command line wins over the default.
int
main(int argc, char** argv)
{
    const char* dir = std::getenv("ATUM_BENCH_DIR");
    const std::string out_flag = "--benchmark_out=" +
                                 std::string(dir && *dir ? dir : ".") +
                                 "/BENCH_t5_sim_speed.json";
    std::vector<char*> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
            has_out = true;
    }
    std::string flag_storage = out_flag;
    std::string format_storage = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(flag_storage.data());
        args.push_back(format_storage.data());
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
