// Experiment T5: engineering throughput numbers (google-benchmark).
//
// Not a paper table — this is the repo's own speed sheet: how fast the
// microcoded machine executes guest instructions with and without the
// ATUM patches installed, and how fast the trace-driven cache model
// consumes records.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <string>
#include <vector>

#include "analysis/compare.h"
#include "common.h"
#include "obs/spans.h"

namespace atum {
namespace {

void
BM_MachineUntraced(benchmark::State& state)
{
    uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Machine machine(bench::StandardMachineConfig());
        kernel::BootSystem(machine, {workloads::MakeHash(1500)});
        const auto r = core::RunUntraced(machine, 400'000'000);
        instructions += r.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineUntraced)->Unit(benchmark::kMillisecond);

void
BM_MachineTraced(benchmark::State& state)
{
    uint64_t instructions = 0;
    for (auto _ : state) {
        cpu::Machine machine(bench::StandardMachineConfig());
        trace::CountingSink sink;
        core::AtumTracer tracer(machine, sink);
        kernel::BootSystem(machine, {workloads::MakeHash(1500)});
        const auto r = core::RunTraced(machine, tracer, 400'000'000);
        instructions += r.instructions;
    }
    state.counters["instr/s"] = benchmark::Counter(
        static_cast<double>(instructions), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MachineTraced)->Unit(benchmark::kMillisecond);

void
BM_CacheSimulation(benchmark::State& state)
{
    static const std::vector<trace::Record>& records = [] {
        return *new std::vector<trace::Record>(
            bench::CaptureFullSystem(bench::MixOfDegree(2)).records);
    }();
    uint64_t fed = 0;
    for (auto _ : state) {
        cache::Cache c({.size_bytes = 64u << 10,
                        .block_bytes = 16,
                        .assoc = static_cast<uint32_t>(state.range(0))});
        cache::TraceCacheDriver driver(c, {});
        for (const auto& r : records)
            driver.Feed(r);
        fed += driver.fed();
        benchmark::DoNotOptimize(c.stats().misses);
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(fed), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_CacheSimulation)->Arg(1)->Arg(4)->Unit(benchmark::kMillisecond);

void
BM_TraceCaptureOnly(benchmark::State& state)
{
    // Capture cost alone: boot + traced run + drain, per guest instruction.
    uint64_t records = 0;
    for (auto _ : state) {
        const auto cap = bench::CaptureFullSystem(
            {workloads::MakeGrep(4096, 2)});
        records += cap.records.size();
    }
    state.counters["records/s"] = benchmark::Counter(
        static_cast<double>(records), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_TraceCaptureOnly)->Unit(benchmark::kMillisecond);

/**
 * One supervised hash capture; returns wall milliseconds. The profiler
 * (may be null) attributes the run across the dispatch/translate/
 * memory/tracer/drain phases; `spans` toggles the span tracing layer so
 * the enabled-vs-disabled ratio measures its hot-path cost.
 */
double
SupervisedCaptureMs(obs::PhaseProfiler* profiler, bool spans)
{
    obs::SetSpansEnabled(spans);
    cpu::Machine machine(bench::StandardMachineConfig());
    trace::CountingSink sink;
    core::AtumTracer tracer(machine, sink);
    kernel::BootSystem(machine, {workloads::MakeHash(1500)});
    core::SupervisorOptions sup;
    sup.max_instructions = 400'000'000;
    sup.profiler = profiler;
    const uint64_t t0 = obs::MonotonicNowNs();
    const core::SessionResult r = core::RunSupervised(machine, tracer, sup);
    const uint64_t wall_ns = obs::MonotonicNowNs() - t0;
    if (!r.halted)
        Fatal("phase-breakdown capture did not run to completion");
    obs::SetSpansEnabled(true);
    return static_cast<double>(wall_ns) / 1e6;
}

/**
 * The dispatch-vs-drain speed sheet: a profiled supervised capture's
 * per-phase split plus the span layer's measured overhead, written as
 * BENCH_t5_phase_breakdown.json next to the google-benchmark report.
 */
void
EmitPhaseBreakdown()
{
    bench::BenchReport report("t5_phase_breakdown");

    obs::PhaseProfiler profiler;
    const double wall_ms = SupervisedCaptureMs(&profiler, true);
    report.Add("wall_ms", wall_ms, "ms");

    const std::vector<obs::PhaseProfiler::Row> rows = profiler.Breakdown();
    const double run_ms =
        static_cast<double>(profiler.run_ns()) / 1e6;
    for (const obs::PhaseProfiler::Row& row : rows) {
        if (row.ns == 0)
            continue;  // unexercised here (checkpoint/io): a zero
                       // baseline makes any later drift look infinite
        const double pct =
            run_ms > 0.0
                ? 100.0 * (static_cast<double>(row.ns) / 1e6) / run_ms
                : 0.0;
        report.Add("phase_pct", pct, "pct", {{"phase", row.name}});
    }
    report.Add("coverage_pct", 100.0 * profiler.CoverageFraction(), "pct");

    // Span-layer cost: the best of three supervised captures with the
    // tracing layer on vs off (min-of is robust to scheduler noise; the
    // ISSUE budget for the layer is <= 5%, i.e. a ratio of 1.05).
    double on_ms = SupervisedCaptureMs(nullptr, true);
    double off_ms = SupervisedCaptureMs(nullptr, false);
    for (int i = 0; i < 2; ++i) {
        on_ms = std::min(on_ms, SupervisedCaptureMs(nullptr, true));
        off_ms = std::min(off_ms, SupervisedCaptureMs(nullptr, false));
    }
    report.Add("span_overhead", off_ms > 0.0 ? on_ms / off_ms : 1.0, "x");

    report.Write();
    std::printf("phase breakdown: wall=%.1fms coverage=%.1f%% "
                "span-overhead=%.3fx -> BENCH_t5_phase_breakdown.json\n",
                wall_ms, 100.0 * profiler.CoverageFraction(),
                off_ms > 0.0 ? on_ms / off_ms : 1.0);
}

}  // namespace
}  // namespace atum

// Custom main: console output as usual, plus the full google-benchmark
// JSON report written to ${ATUM_BENCH_DIR:-.}/BENCH_t5_sim_speed.json so
// the speed sheet lands next to the other BENCH_*.json files. An explicit
// --benchmark_out on the command line wins over the default.
int
main(int argc, char** argv)
{
    const char* dir = std::getenv("ATUM_BENCH_DIR");
    const std::string out_flag = "--benchmark_out=" +
                                 std::string(dir && *dir ? dir : ".") +
                                 "/BENCH_t5_sim_speed.json";
    std::vector<char*> args(argv, argv + argc);
    bool has_out = false;
    for (int i = 1; i < argc; ++i) {
        if (std::string(argv[i]).rfind("--benchmark_out=", 0) == 0)
            has_out = true;
    }
    std::string flag_storage = out_flag;
    std::string format_storage = "--benchmark_out_format=json";
    if (!has_out) {
        args.push_back(flag_storage.data());
        args.push_back(format_storage.data());
    }
    int args_count = static_cast<int>(args.size());
    benchmark::Initialize(&args_count, args.data());
    if (benchmark::ReportUnrecognizedArguments(args_count, args.data()))
        return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    atum::EmitPhaseBreakdown();
    return 0;
}
