// Ablation A2: one-pass stack-distance analysis vs direct simulation.
//
// Mattson's algorithm gives the exact fully-associative LRU miss rate at
// every capacity in a single pass over the trace. This harness (a) prints
// the full-system vs user-only miss-rate curves it produces and (b)
// cross-checks a few points against the direct cache model.

#include <cstdio>

#include "analysis/stack_distance.h"
#include "cache/cache.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

constexpr unsigned kBlockShift = 4;  // 16-byte blocks

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3));

    analysis::StackDistanceAnalyzer full(kBlockShift);
    analysis::StackDistanceAnalyzer user(kBlockShift);
    for (const trace::Record& r : cap.records) {
        full.Feed(r);
        if (r.IsMemory() && !r.kernel() &&
            r.type != trace::RecordType::kPte) {
            user.Feed(r);
        }
    }

    std::printf("A2: fully-associative LRU miss rate from one-pass stack\n"
                "distances (16B blocks, no switch flushing)\n\n");
    Table table({"capacity", "full-system%", "user-only%"});
    bench::BenchReport report("a2_stack_distance");
    for (uint32_t kib : {1u, 4u, 16u, 64u, 256u}) {
        const uint64_t blocks = (kib << 10) >> kBlockShift;
        report.Add("miss_rate", 100.0 * full.MissRateForCapacity(blocks),
                   "%", {{"capacity_kb", std::to_string(kib)},
                         {"view", "full-system"}});
        table.AddRow({
            std::to_string(kib) + "K",
            Table::Fmt(100.0 * full.MissRateForCapacity(blocks), 3),
            Table::Fmt(100.0 * user.MissRateForCapacity(blocks), 3),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("distinct blocks: full=%llu user=%llu; cold misses: "
                "full=%llu user=%llu\n\n",
                static_cast<unsigned long long>(full.distinct_blocks()),
                static_cast<unsigned long long>(user.distinct_blocks()),
                static_cast<unsigned long long>(full.cold_misses()),
                static_cast<unsigned long long>(user.cold_misses()));

    // Cross-check one capacity against the direct simulator.
    const uint64_t check_blocks = (16u << 10) >> kBlockShift;
    cache::Cache direct({.size_bytes = 16u << 10, .block_bytes = 16,
                         .assoc = 0});
    for (const trace::Record& r : cap.records) {
        if (r.IsMemory() && r.type != trace::RecordType::kPte)
            direct.Access(r.addr, r.type == trace::RecordType::kWrite);
    }
    std::printf("cross-check @16K: one-pass misses=%llu, direct "
                "simulation misses=%llu (%s)\n",
                static_cast<unsigned long long>(
                    full.MissesForCapacity(check_blocks)),
                static_cast<unsigned long long>(direct.stats().misses),
                full.MissesForCapacity(check_blocks) ==
                        direct.stats().misses
                    ? "exact match"
                    : "MISMATCH");
    if (full.MissesForCapacity(check_blocks) != direct.stats().misses)
        Fatal("stack-distance analysis diverged from direct simulation");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
