// Ablation A10: crash-safety and recovery latency of the capture stack.
//
// Each row is a complete disaster drill through the chaos Vfs
// (chaos/campaign.h): a supervised full-system capture with rotating
// checkpoints runs against a seeded fault schedule — ENOSPC bursts, torn
// checkpoint publishes, power cuts mid-drain — then is recovered the way
// an operator would (resume from the newest durable checkpoint, or
// tolerant salvage) and the no-silent-loss invariant battery is applied.
// The run aborts on any violation.
//
// Reported per campaign: how much of the capture survived (deterministic
// per seed), how much loss was loudly declared, and the wall-clock
// latency of the recovery action itself — checkpoint load + trace reopen
// + state restore — as p50/p90/p99 across every power-cut drill.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "common.h"
#include "io/chaos.h"
#include "util/logging.h"
#include "util/table.h"

namespace atum {
namespace {

struct CampaignRow {
    std::string name;
    std::vector<std::string> campaigns;
    uint64_t seeds = 0;
};

double
Percentile(std::vector<uint64_t> sorted_us, double p)
{
    if (sorted_us.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted_us.size() - 1) / 100.0 + 0.5);
    return static_cast<double>(sorted_us[std::min(idx,
                                                  sorted_us.size() - 1)]);
}

int
Run()
{
    const chaos::CampaignSpec spec;  // the standard drill shape

    // The fault-free drill establishes what "everything survived" means.
    util::StatusOr<chaos::SeedResult> baseline =
        chaos::ReplaySchedule(spec, io::ChaosSchedule{});
    if (!baseline.ok() || !baseline->ok())
        Fatal("A10: fault-free baseline drill failed");
    const double total =
        static_cast<double>(baseline->data_records);
    std::printf("A10: fault recovery, %llu records per fault-free drill\n\n",
                static_cast<unsigned long long>(baseline->data_records));

    const std::vector<CampaignRow> rows = {
        {"powercut", {"powercut"}, 6},
        {"enospc", {"enospc"}, 4},
        {"torn-rename", {"torn-rename"}, 4},
        {"mixed", {"powercut", "enospc", "torn-rename"}, 10},
    };

    Table table({"campaign", "seeds", "faults", "cuts", "resumes",
                 "salvages", "survival%min", "lost-max"});
    bench::BenchReport report("a10_fault_recovery");
    std::vector<uint64_t> recovery_us;
    uint64_t drills = 0;

    for (const CampaignRow& row : rows) {
        chaos::CampaignSpec row_spec = spec;
        row_spec.campaigns = row.campaigns;

        double survival_min = 100.0;
        uint64_t lost_max = 0;
        util::StatusOr<chaos::CampaignResult> result = chaos::RunCampaign(
            row_spec, /*first_seed=*/1, row.seeds,
            [&](const chaos::SeedResult& r) {
                if (!r.ok())
                    Fatal("A10: invariant violated: ", r.Summary());
                const double survival =
                    100.0 * static_cast<double>(r.data_records) / total;
                survival_min = std::min(survival_min, survival);
                lost_max = std::max(lost_max, r.lost_records);
                if (r.recovery_us > 0)
                    recovery_us.push_back(r.recovery_us);
            });
        if (!result.ok())
            Fatal("A10: campaign failed to run: ",
                  result.status().ToString());
        drills += result->seeds_run;

        // Survival is deterministic per (campaign, seed) — exact-match
        // material for the regression gate. Latency is wall time (banded).
        report.Add("survival_min", survival_min, "%",
                   {{"campaign", row.name}});
        report.Add("declared_lost_max", static_cast<double>(lost_max),
                   "records", {{"campaign", row.name}});
        table.AddRow({row.name, std::to_string(result->seeds_run),
                      std::to_string(result->faults_fired),
                      std::to_string(result->power_cuts),
                      std::to_string(result->resumes),
                      std::to_string(result->salvages),
                      Table::Fmt(survival_min, 2),
                      std::to_string(lost_max)});
    }
    std::printf("%s\n", table.ToString().c_str());

    std::sort(recovery_us.begin(), recovery_us.end());
    const double p50 = Percentile(recovery_us, 50);
    const double p90 = Percentile(recovery_us, 90);
    const double p99 = Percentile(recovery_us, 99);
    report.Add("recovery_latency_p50", p50, "us", {});
    report.Add("recovery_latency_p90", p90, "us", {});
    report.Add("recovery_latency_p99", p99, "us", {});
    std::printf("recovery latency over %zu power-cut drills: "
                "p50 %.0f us, p90 %.0f us, p99 %.0f us\n",
                recovery_us.size(), p50, p90, p99);
    std::printf("all invariants held on %llu drills\n",
                static_cast<unsigned long long>(drills));
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
