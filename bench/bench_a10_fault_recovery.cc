// Ablation A10: crash-safety of the ATF2 trace container.
//
// One full-system capture is streamed through the Atf2Writer into a
// fault-injecting sink under a battery of deterministic, seeded fault
// plans — mid-stream write failures, short writes, in-flight bit flips,
// and crash truncations. Each damaged container then goes through the
// tolerant scanner, and the table reports how much of the capture
// survived each failure.
//
// Hard invariants checked per plan (the run aborts if violated):
//  - the scanner never reports more records than were written;
//  - every record in the guaranteed prefix is bit-identical to the
//    original capture at the same position (salvage >= valid prefix);
//  - re-containerizing the salvage yields an intact file holding
//    exactly the salvaged records — the --salvage round trip.

#include <cstdio>
#include <vector>

#include "common.h"
#include "trace/container.h"
#include "trace/fault.h"
#include "util/logging.h"
#include "util/table.h"

namespace atum {
namespace {

struct PlanOutcome {
    std::string name;
    uint64_t written_bytes = 0;
    uint64_t salvaged = 0;
    uint64_t prefix = 0;
    uint32_t chunks_bad = 0;
    bool sealed = false;
};

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(2));
    const std::vector<trace::Record>& records = cap.records;
    std::printf("A10: fault recovery, %zu captured records\n\n",
                records.size());

    // A clean write establishes the container size the plans corrupt.
    trace::MemoryByteSink clean;
    if (!trace::WriteAtf2(clean, records).ok())
        Fatal("clean container write failed");
    const uint64_t container_bytes = clean.bytes().size();

    struct NamedPlan {
        std::string name;
        trace::FaultPlan plan;
    };
    std::vector<NamedPlan> plans;
    plans.push_back({"fail-write-8", trace::FaultPlan{}.FailWrite(8)});
    plans.push_back(
        {"short-write-20", trace::FaultPlan{}.ShortWrite(20, 100)});
    plans.push_back(
        {"flip-mid", trace::FaultPlan{}.FlipByte(container_bytes / 2)});
    plans.push_back(
        {"crash-25%", trace::FaultPlan{}.TruncateAt(container_bytes / 4)});
    plans.push_back(
        {"crash-90%",
         trace::FaultPlan{}.TruncateAt(container_bytes * 9 / 10)});
    for (uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
        plans.push_back(
            {"seeded-" + std::to_string(seed),
             trace::FaultPlan::Random(seed, container_bytes, 3)});
    }

    std::vector<PlanOutcome> outcomes;
    for (const NamedPlan& np : plans) {
        trace::MemoryByteSink base;
        trace::FaultySink faulty(base, np.plan);
        trace::Atf2Writer writer(faulty);

        // The capture loop treats the sink exactly as the tracer drain
        // does: a refused append is retried once, then the record is
        // dropped (the fault plans here fire each fault only once, so one
        // retry always clears a transient write failure).
        uint64_t dropped = 0;
        for (const trace::Record& r : records) {
            if (writer.Append(r).ok())
                continue;
            if (!writer.Append(r).ok())
                ++dropped;
        }
        if (!writer.Seal().ok() && !writer.Seal().ok())
            Warn("plan ", np.name, ": container could not be sealed");

        std::vector<trace::Record> salvaged;
        trace::MemoryByteSource source(base.bytes());
        const trace::ScanReport report =
            trace::ScanTrace(source, &salvaged);

        // ---- invariants ------------------------------------------------
        const uint64_t written = records.size() - dropped;
        if (report.records_salvaged > written)
            Fatal("plan ", np.name, ": salvaged ", report.records_salvaged,
                  " of only ", written, " written records");
        if (report.records_salvaged < report.valid_prefix_records)
            Fatal("plan ", np.name, ": salvage below the valid prefix");
        for (uint64_t i = 0; i < report.valid_prefix_records; ++i) {
            if (!(salvaged[i] == records[i]))
                Fatal("plan ", np.name, ": prefix record ", i,
                      " not bit-identical");
        }
        trace::MemoryByteSink repaired;
        if (!trace::WriteAtf2(repaired, salvaged).ok())
            Fatal("plan ", np.name, ": salvage re-write failed");
        std::vector<trace::Record> reread;
        trace::MemoryByteSource repaired_source(repaired.bytes());
        const trace::ScanReport verify =
            trace::ScanTrace(repaired_source, &reread);
        if (!verify.intact() || !(reread == salvaged))
            Fatal("plan ", np.name, ": salvaged container not intact");

        outcomes.push_back({np.name, base.bytes().size(),
                            report.records_salvaged,
                            report.valid_prefix_records, report.chunks_bad,
                            report.sealed});
    }

    Table table({"plan", "bytes", "salvaged", "prefix", "bad-chunks",
                 "sealed", "survival%"});
    bench::BenchReport report("a10_fault_recovery");
    for (const PlanOutcome& o : outcomes) {
        report.Add("survival",
                   100.0 * static_cast<double>(o.salvaged) /
                       static_cast<double>(records.size()),
                   "%", {{"plan", o.name}});
        table.AddRow({o.name, std::to_string(o.written_bytes),
                      std::to_string(o.salvaged), std::to_string(o.prefix),
                      std::to_string(o.chunks_bad), o.sealed ? "yes" : "no",
                      Table::Fmt(100.0 * static_cast<double>(o.salvaged) /
                                     static_cast<double>(records.size()),
                                 2)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("clean container: %llu bytes, all invariants held on %zu "
                "fault plans\n",
                static_cast<unsigned long long>(container_bytes),
                outcomes.size());
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
