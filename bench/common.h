#ifndef ATUM_BENCH_COMMON_H_
#define ATUM_BENCH_COMMON_H_

/**
 * @file
 * Shared plumbing for the experiment harnesses: standard machines,
 * full-system capture, and the workload mixes each table/figure uses.
 */

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/atum_tracer.h"
#include "core/session.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace atum::bench {

/** The standard experiment machine: 4 MiB, 2-way 64-entry TB. */
inline cpu::Machine::Config
StandardMachineConfig(uint32_t timer_reload = 2000)
{
    cpu::Machine::Config config;
    config.mem_bytes = 4u << 20;
    config.timer_reload = timer_reload;
    return config;
}

/** Result of one full-system capture. */
struct Capture {
    std::vector<trace::Record> records;
    core::SessionResult session;
    std::string console;
    uint32_t page_faults = 0;
    uint32_t context_switches = 0;
};

/** Boots `programs`, traces the whole run with ATUM, returns the trace. */
inline Capture
CaptureFullSystem(std::vector<kernel::GuestProgram> programs,
                  const core::AtumConfig& tracer_config = {},
                  uint32_t timer_reload = 2000)
{
    cpu::Machine machine(StandardMachineConfig(timer_reload));
    trace::VectorSink sink;
    core::AtumTracer tracer(machine, sink, tracer_config);
    kernel::BootInfo info = kernel::BootSystem(machine, std::move(programs));
    Capture capture;
    capture.session = core::RunTraced(machine, tracer, 400'000'000);
    if (!capture.session.halted)
        Fatal("capture did not run to completion");
    capture.records = sink.TakeRecords();
    capture.console = machine.console_output();
    capture.page_faults = machine.memory().Read32(
        info.layout.kdata_pa + kernel::KdataOffsets::kPfCount);
    capture.context_switches = machine.memory().Read32(
        info.layout.kdata_pa + kernel::KdataOffsets::kCsCount);
    return capture;
}

/** Same run, but through the pre-ATUM user-only software probe. */
inline Capture
CaptureUserOnly(std::vector<kernel::GuestProgram> programs,
                uint16_t target_pid = 1, uint32_t timer_reload = 2000)
{
    cpu::Machine machine(StandardMachineConfig(timer_reload));
    trace::VectorSink sink;
    core::UserTracerConfig config;
    config.target_pid = target_pid;
    core::UserOnlyTracer tracer(machine, sink, config);
    kernel::BootSystem(machine, std::move(programs));
    Capture capture;
    capture.session = core::RunBaseline(machine, tracer, 400'000'000);
    if (!capture.session.halted)
        Fatal("capture did not run to completion");
    capture.records = sink.TakeRecords();
    capture.console = machine.console_output();
    return capture;
}

/** The multiprogrammed mixes used across experiments, by degree. The
 *  default scale gives each workload a multi-page footprint so cache
 *  curves have texture beyond tiny sizes. */
inline std::vector<kernel::GuestProgram>
MixOfDegree(uint32_t degree, uint32_t scale = 2)
{
    const std::vector<std::string>& names = workloads::AllWorkloadNames();
    std::vector<kernel::GuestProgram> programs;
    for (uint32_t i = 0; i < degree; ++i)
        programs.push_back(
            workloads::MakeWorkload(names[i % names.size()], scale));
    return programs;
}

}  // namespace atum::bench

#endif  // ATUM_BENCH_COMMON_H_
