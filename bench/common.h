#ifndef ATUM_BENCH_COMMON_H_
#define ATUM_BENCH_COMMON_H_

/**
 * @file
 * Shared plumbing for the experiment harnesses: standard machines,
 * full-system capture, and the workload mixes each table/figure uses.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/atum_tracer.h"
#include "core/session.h"
#include "core/user_tracer.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/record.h"
#include "trace/sink.h"
#include "util/build_info.h"
#include "util/json.h"
#include "util/logging.h"
#include "workloads/workloads.h"

namespace atum::bench {

/**
 * Machine-readable experiment output: collects named metrics and writes
 * them as BENCH_<name>.json into ${ATUM_BENCH_DIR} (default: the current
 * directory), next to the human tables the bench prints. Schema:
 *
 *   {"bench":"t2_slowdown","version":"<git describe>","build":"Release",
 *    "schema":1,
 *    "metrics":[{"name":"slowdown","value":21.4,"unit":"x",
 *                "config":{"mix":"degree-2"}}, ...]}
 *
 * The destructor writes the file if the bench forgot to; a write failure
 * is a warning, never a bench failure (the printed tables remain the
 * source of truth).
 */
class BenchReport
{
  public:
    explicit BenchReport(std::string name) : name_(std::move(name)) {}

    ~BenchReport()
    {
        if (!written_)
            Write();
    }

    BenchReport(const BenchReport&) = delete;
    BenchReport& operator=(const BenchReport&) = delete;

    /** Records one metric row; `config` keys identify the data point. */
    void Add(const std::string& metric, double value,
             const std::string& unit,
             std::vector<std::pair<std::string, std::string>> config = {})
    {
        metrics_.push_back(
            Metric{metric, value, unit, std::move(config)});
    }

    /** Writes BENCH_<name>.json; called automatically at destruction. */
    void Write()
    {
        written_ = true;
        util::JsonWriter w;
        w.BeginObject();
        w.KeyValue("bench", name_);
        w.KeyValue("version", util::kGitDescribe);
        w.KeyValue("build", util::kBuildType);
        w.KeyValue("schema", uint64_t{1});
        w.Key("metrics");
        w.BeginArray();
        for (const Metric& m : metrics_) {
            w.BeginObject();
            w.KeyValue("name", m.name);
            w.KeyValue("value", m.value);
            w.KeyValue("unit", m.unit);
            w.Key("config");
            w.BeginObject();
            for (const auto& [key, value] : m.config)
                w.KeyValue(key, value);
            w.EndObject();
            w.EndObject();
        }
        w.EndArray();
        w.EndObject();

        const char* dir = std::getenv("ATUM_BENCH_DIR");
        const std::string path = std::string(dir && *dir ? dir : ".") +
                                 "/BENCH_" + name_ + ".json";
        std::FILE* file = std::fopen(path.c_str(), "w");
        if (!file) {
            Warn("cannot write ", path);
            return;
        }
        std::fputs(w.str().c_str(), file);
        std::fputc('\n', file);
        if (std::fclose(file) != 0)
            Warn("short write to ", path);
    }

  private:
    struct Metric {
        std::string name;
        double value;
        std::string unit;
        std::vector<std::pair<std::string, std::string>> config;
    };

    std::string name_;
    std::vector<Metric> metrics_;
    bool written_ = false;
};

/** The standard experiment machine: 4 MiB, 2-way 64-entry TB. */
inline cpu::Machine::Config
StandardMachineConfig(uint32_t timer_reload = 2000)
{
    cpu::Machine::Config config;
    config.mem_bytes = 4u << 20;
    config.timer_reload = timer_reload;
    return config;
}

/** Result of one full-system capture. */
struct Capture {
    std::vector<trace::Record> records;
    core::SessionResult session;
    std::string console;
    uint32_t page_faults = 0;
    uint32_t context_switches = 0;
};

/** Boots `programs`, traces the whole run with ATUM, returns the trace. */
inline Capture
CaptureFullSystem(std::vector<kernel::GuestProgram> programs,
                  const core::AtumConfig& tracer_config = {},
                  uint32_t timer_reload = 2000)
{
    cpu::Machine machine(StandardMachineConfig(timer_reload));
    trace::VectorSink sink;
    core::AtumTracer tracer(machine, sink, tracer_config);
    kernel::BootInfo info = kernel::BootSystem(machine, std::move(programs));
    Capture capture;
    capture.session = core::RunTraced(machine, tracer, 400'000'000);
    if (!capture.session.halted)
        Fatal("capture did not run to completion");
    capture.records = sink.TakeRecords();
    capture.console = machine.console_output();
    capture.page_faults = machine.memory().Read32(
        info.layout.kdata_pa + kernel::KdataOffsets::kPfCount);
    capture.context_switches = machine.memory().Read32(
        info.layout.kdata_pa + kernel::KdataOffsets::kCsCount);
    return capture;
}

/** Same run, but through the pre-ATUM user-only software probe. */
inline Capture
CaptureUserOnly(std::vector<kernel::GuestProgram> programs,
                uint16_t target_pid = 1, uint32_t timer_reload = 2000)
{
    cpu::Machine machine(StandardMachineConfig(timer_reload));
    trace::VectorSink sink;
    core::UserTracerConfig config;
    config.target_pid = target_pid;
    core::UserOnlyTracer tracer(machine, sink, config);
    kernel::BootSystem(machine, std::move(programs));
    Capture capture;
    capture.session = core::RunBaseline(machine, tracer, 400'000'000);
    if (!capture.session.halted)
        Fatal("capture did not run to completion");
    capture.records = sink.TakeRecords();
    capture.console = machine.console_output();
    return capture;
}

/** The multiprogrammed mixes used across experiments, by degree. The
 *  default scale gives each workload a multi-page footprint so cache
 *  curves have texture beyond tiny sizes. */
inline std::vector<kernel::GuestProgram>
MixOfDegree(uint32_t degree, uint32_t scale = 2)
{
    const std::vector<std::string>& names = workloads::AllWorkloadNames();
    std::vector<kernel::GuestProgram> programs;
    for (uint32_t i = 0; i < degree; ++i)
        programs.push_back(
            workloads::MakeWorkload(names[i % names.size()], scale));
    return programs;
}

}  // namespace atum::bench

#endif  // ATUM_BENCH_COMMON_H_
