// Experiment T4 (reconstructed): translation-buffer sizing with and
// without operating-system effects.
//
// Paper shape to reproduce: OS references plus the VAX-style
// flush-on-switch discipline raise TLB miss rates substantially; sizing a
// TB from user-only traces looks deceptively rosy.

#include <cstdio>

#include "common.h"
#include "tlbsim/tlb_sim.h"
#include "util/table.h"

namespace atum {
namespace {

double
Simulate(const std::vector<trace::Record>& records,
         const tlbsim::TlbSimConfig& config)
{
    tlbsim::TlbSim sim(config);
    for (const auto& r : records)
        sim.Feed(r);
    return sim.stats().MissRate();
}

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3));

    std::printf("T4: TLB miss rate (fully associative, LRU) vs entries\n\n");
    Table table({"entries", "full+flush%", "full-noflush%", "user-only%"});
    bench::BenchReport report("t4_tlb");
    for (uint32_t entries : {8u, 16u, 32u, 64u, 128u, 256u}) {
        tlbsim::TlbSimConfig full_flush{.entries = entries};
        tlbsim::TlbSimConfig full_noflush{.entries = entries};
        full_noflush.flush_on_switch = false;
        tlbsim::TlbSimConfig user_only{.entries = entries};
        user_only.include_kernel = false;
        user_only.flush_on_switch = false;

        const double full = 100.0 * Simulate(cap.records, full_flush);
        const double user = 100.0 * Simulate(cap.records, user_only);
        report.Add("miss_rate", full, "%",
                   {{"entries", std::to_string(entries)},
                    {"mode", "full+flush"}});
        report.Add("miss_rate", user, "%",
                   {{"entries", std::to_string(entries)},
                    {"mode", "user-only"}});
        table.AddRow({
            std::to_string(entries),
            Table::Fmt(full, 3),
            Table::Fmt(100.0 * Simulate(cap.records, full_noflush), 3),
            Table::Fmt(user, 3),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: full-system misses exceed user-only at every\n"
                "size; switch flushes put a floor under large TLBs.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
