// Ablation A6: the machine's real translation buffer vs the trace-driven
// TLB model.
//
// The same workload runs on machines with different hardware TB
// geometries; the in-machine miss counts are compared against what the
// trace-driven simulator predicts from a single capture. Close agreement
// validates using traces for TB studies (ATUM's whole premise); the
// residual gap is real microcode behaviour the record stream abstracts
// away (modified-bit re-walks, TBIS operations).

#include <cstdio>

#include "common.h"
#include "tlbsim/tlb_sim.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    // One capture to drive the trace-based predictions (the capture
    // machine's own TB geometry does not affect the record stream).
    const bench::Capture cap =
        bench::CaptureFullSystem({workloads::MakeHash(2500)});

    std::printf("A6: hardware TB vs trace-driven prediction "
                "(hash workload)\n\n");
    Table table({"geometry", "hw-lookups", "hw-miss%", "trace-miss%",
                 "agreement"});
    bench::BenchReport report("a6_machine_tb");
    struct Geometry {
        unsigned sets, ways;
    };
    for (const Geometry g : {Geometry{8, 1}, Geometry{8, 2}, Geometry{16, 2},
                             Geometry{32, 2}, Geometry{64, 2}}) {
        // Real machine with this TB.
        cpu::Machine::Config config = bench::StandardMachineConfig();
        config.tlb_sets = g.sets;
        config.tlb_ways = g.ways;
        cpu::Machine machine(config);
        kernel::BootSystem(machine, {workloads::MakeHash(2500)});
        if (!core::RunUntraced(machine, 400'000'000).halted)
            Fatal("machine run did not complete");
        const auto& tlb = machine.mmu().tlb();
        const double hw_rate = static_cast<double>(tlb.misses()) /
                               static_cast<double>(tlb.lookups());

        // Trace-driven prediction at the same geometry.
        tlbsim::TlbSim sim({.entries = g.sets * g.ways, .ways = g.ways});
        for (const auto& r : cap.records)
            sim.Feed(r);
        const double sim_rate = sim.stats().MissRate();

        const std::string geom =
            std::to_string(g.sets) + "x" + std::to_string(g.ways);
        report.Add("hw_miss_rate", 100.0 * hw_rate, "%",
                   {{"geometry", geom}});
        report.Add("trace_miss_rate", 100.0 * sim_rate, "%",
                   {{"geometry", geom}});
        table.AddRow({
            std::to_string(g.sets) + "x" + std::to_string(g.ways),
            std::to_string(tlb.lookups()),
            Table::Fmt(100.0 * hw_rate, 3),
            Table::Fmt(100.0 * sim_rate, 3),
            Table::Fmt(hw_rate > 0 ? sim_rate / hw_rate : 0.0, 2) + "x",
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: trace-driven predictions track the hardware\n"
                "TB within a small factor across geometries; the residue\n"
                "is M-bit re-walks and TBIS traffic the records abstract.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
