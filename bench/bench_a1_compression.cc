// Ablation A1: compact trace encoding.
//
// The paper's records had to be small (a reserved half-megabyte buffer
// fills in tens of milliseconds of traced execution). This harness
// measures the delta/varint codec against the fixed 8-byte record on
// real full-system traces, per workload, and verifies losslessness.

#include <cstdio>

#include "common.h"
#include "trace/compress.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    std::printf("A1: compact trace encoding vs fixed 8-byte records\n\n");
    Table table({"workload", "records", "raw-KB", "packed-KB",
                 "bytes/record", "ratio"});
    bench::BenchReport report("a1_compression");

    for (const std::string& name : workloads::AllWorkloadNames()) {
        const bench::Capture cap =
            bench::CaptureFullSystem({workloads::MakeWorkload(name)});
        const auto bytes = trace::CompressTrace(cap.records);
        if (trace::DecompressTrace(bytes) != cap.records)
            Fatal("compression round-trip failed for ", name);
        const double raw = static_cast<double>(cap.records.size()) *
                           trace::kRecordBytes;
        report.Add("bytes_per_record",
                   static_cast<double>(bytes.size()) /
                       static_cast<double>(cap.records.size()),
                   "B", {{"workload", name}});
        report.Add("compression_ratio",
                   static_cast<double>(bytes.size()) / raw, "ratio",
                   {{"workload", name}});
        table.AddRow({
            name,
            std::to_string(cap.records.size()),
            Table::Fmt(raw / 1024.0, 0),
            Table::Fmt(static_cast<double>(bytes.size()) / 1024.0, 0),
            Table::Fmt(static_cast<double>(bytes.size()) /
                           static_cast<double>(cap.records.size()),
                       2),
            Table::Fmt(static_cast<double>(bytes.size()) / raw, 3),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: full-system traces pack to a fraction of the\n"
                "raw size (istream deltas dominate), losslessly.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
