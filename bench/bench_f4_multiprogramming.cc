// Experiment F4 (reconstructed): multiprogramming effects on the cache.
//
// ATUM's full-system traces let the field quantify, for the first time
// with real workloads, what context switching does to caches: a cache
// without process tags must be flushed on every switch, and the damage
// grows with the multiprogramming degree and the cache size.
//
// Paper shape to reproduce: miss rate rises with degree; flush-on-switch
// is consistently worse than PID-tagged caches; the effect is largest for
// big caches (whose contents a flush wipes out wholesale).

#include <cstdio>

#include "analysis/compare.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    std::printf("F4: multiprogramming degree vs miss rate "
                "(2-way, 16B blocks)\n\n");
    Table table({"degree", "cache", "flush-on-switch%", "pid-tagged%",
                 "flush-penalty%"});
    bench::BenchReport report("f4_multiprogramming");

    for (uint32_t degree : {1u, 2u, 4u}) {
        const bench::Capture cap =
            bench::CaptureFullSystem(bench::MixOfDegree(degree));
        for (uint32_t kib : {16u, 64u, 256u}) {
            cache::CacheConfig flush_cfg{.size_bytes = kib << 10,
                                         .block_bytes = 16,
                                         .assoc = 2};
            cache::CacheConfig pid_cfg = flush_cfg;
            pid_cfg.pid_tags = true;

            cache::DriverOptions flush_opts;
            flush_opts.flush_on_switch = true;
            cache::DriverOptions pid_opts;

            const auto flushed =
                analysis::SimulateCache(cap.records, flush_cfg, flush_opts);
            const auto tagged =
                analysis::SimulateCache(cap.records, pid_cfg, pid_opts);
            const double f = flushed.MissRate();
            const double p = tagged.MissRate();
            report.Add("miss_rate", 100.0 * f, "%",
                       {{"degree", std::to_string(degree)},
                        {"size_kb", std::to_string(kib)},
                        {"mode", "flush-on-switch"}});
            report.Add("miss_rate", 100.0 * p, "%",
                       {{"degree", std::to_string(degree)},
                        {"size_kb", std::to_string(kib)},
                        {"mode", "pid-tagged"}});
            table.AddRow({
                std::to_string(degree),
                std::to_string(kib) + "K",
                Table::Fmt(100.0 * f, 3),
                Table::Fmt(100.0 * p, 3),
                Table::Fmt(p > 0 ? 100.0 * (f - p) / p : 0.0, 1),
            });
        }
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: misses rise with degree; PID tags beat\n"
                "flushing everywhere, most dramatically at large caches.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
