// Ablation A3: two-level hierarchies on full-system traces.
//
// Sweeps the unified L2 size behind small split L1s and reports global
// miss rate and AMAT, with and without switch flushing — the "does an L2
// recover what multiprogramming destroys" question.

#include <cstdio>
#include <utility>
#include <vector>

#include "cache/hierarchy.h"
#include "common.h"
#include "replay/sweep.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3));

    std::printf("A3: L2 size sweep behind 4K+4K split L1s "
                "(full-system trace)\n\n");
    // All six (L2 size, discipline) points replay concurrently.
    std::vector<replay::SweepConfig> jobs;
    std::vector<std::pair<uint32_t, bool>> grid;
    for (uint32_t kib : {32u, 128u, 512u}) {
        for (bool flush : {true, false}) {
            cache::HierarchyConfig config;
            config.l2.size_bytes = kib << 10;
            config.flush_on_switch = flush;
            if (!flush) {
                config.l1i.pid_tags = true;
                config.l1d.pid_tags = true;
                config.l2.pid_tags = true;
            }
            jobs.push_back(replay::MakeHierarchyJob(config));
            grid.emplace_back(kib, flush);
        }
    }
    const auto results = replay::SweepRunner().Run(cap.records, jobs);

    Table table({"l2", "discipline", "l1d-miss%", "global-miss%", "amat"});
    bench::BenchReport report("a3_hierarchy");
    for (size_t i = 0; i < results.size(); ++i) {
        report.Add("global_miss_rate", 100.0 * results[i].global_miss_rate,
                   "%",
                   {{"l2_kb", std::to_string(grid[i].first)},
                    {"discipline", grid[i].second ? "flush" : "pid-tags"}});
        report.Add("amat", results[i].amat, "cycles",
                   {{"l2_kb", std::to_string(grid[i].first)},
                    {"discipline", grid[i].second ? "flush" : "pid-tags"}});
        table.AddRow({
            std::to_string(grid[i].first) + "K",
            grid[i].second ? "flush" : "pid-tags",
            Table::Fmt(100.0 * results[i].l1d_stats.MissRate(), 2),
            Table::Fmt(100.0 * results[i].global_miss_rate, 3),
            Table::Fmt(results[i].amat, 2),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: a big L2 pulls global miss rate toward zero\n"
                "only under PID tags; with flushing it keeps paying the\n"
                "post-switch refill, so AMAT stays elevated.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
