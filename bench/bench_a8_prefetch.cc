// Ablation A8: one-block lookahead prefetching (Smith's OBL).
//
// A miss also fills the next sequential block — cheap hardware that works
// exactly as well as the reference stream is sequential. Full-system
// traces show where it pays (the CISC istream) and where it pollutes
// (data-side pointer chasing).

#include <cstdio>

#include "cache/cache.h"
#include "cache/trace_driver.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

struct Split {
    double i_miss;
    double d_miss;
    uint64_t prefetches;
};

Split
RunSplit(const std::vector<trace::Record>& records, bool prefetch)
{
    cache::CacheConfig icfg{.size_bytes = 8u << 10, .block_bytes = 16,
                            .assoc = 1, .prefetch_next_on_miss = prefetch};
    cache::CacheConfig dcfg = icfg;
    cache::Cache icache(icfg);
    cache::Cache dcache(dcfg);
    cache::DriverOptions opts;
    opts.flush_on_switch = true;
    cache::TraceCacheDriver driver(dcache, opts, &icache);
    for (const auto& r : records)
        driver.Feed(r);
    return {icache.stats().MissRate(), dcache.stats().MissRate(),
            icache.stats().prefetch_fills + dcache.stats().prefetch_fills};
}

int
Run()
{
    std::printf("A8: one-block lookahead on split 8K I/D caches "
                "(full-system traces)\n\n");
    Table table({"workload", "I-miss%", "I-miss%+obl", "D-miss%",
                 "D-miss%+obl"});
    bench::BenchReport report("a8_prefetch");
    for (const char* name : {"grep", "matrix", "listproc", "hash"}) {
        const bench::Capture cap =
            bench::CaptureFullSystem({workloads::MakeWorkload(name, 2)});
        const Split base = RunSplit(cap.records, false);
        const Split obl = RunSplit(cap.records, true);
        report.Add("i_miss_rate", 100.0 * base.i_miss, "%",
                   {{"workload", name}, {"prefetch", "off"}});
        report.Add("i_miss_rate", 100.0 * obl.i_miss, "%",
                   {{"workload", name}, {"prefetch", "obl"}});
        report.Add("d_miss_rate", 100.0 * base.d_miss, "%",
                   {{"workload", name}, {"prefetch", "off"}});
        report.Add("d_miss_rate", 100.0 * obl.d_miss, "%",
                   {{"workload", name}, {"prefetch", "obl"}});
        table.AddRow({
            name,
            Table::Fmt(100.0 * base.i_miss, 3),
            Table::Fmt(100.0 * obl.i_miss, 3),
            Table::Fmt(100.0 * base.d_miss, 3),
            Table::Fmt(100.0 * obl.d_miss, 3),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: lookahead cuts instruction-stream misses\n"
                "sharply (sequential fetch); data-side gains depend on the\n"
                "workload's spatial locality, and pointer chasing can even\n"
                "lose to pollution.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
