// Ablation A9: parallel multi-config replay throughput.
//
// One full-system trace, a 16-config cache sweep (sizes x assoc), replayed
// by the SweepRunner at 1, 2, 4 and 8 worker threads. Reports configs/sec
// and speedup over the serial legacy loop, and cross-checks that every
// thread count produces bit-identical miss counts — the determinism
// contract the replay engine advertises.

#include <chrono>
#include <cstdio>
#include <vector>

#include "common.h"
#include "replay/sweep.h"
#include "util/logging.h"
#include "util/table.h"

namespace atum {
namespace {

double
SecondsSince(std::chrono::steady_clock::time_point start)
{
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
}

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3));

    std::vector<replay::SweepConfig> jobs;
    cache::DriverOptions opts;
    for (uint32_t kib : {4u, 16u, 64u, 256u}) {
        for (uint32_t assoc : {1u, 2u, 4u, 8u}) {
            cache::CacheConfig config{.size_bytes = kib << 10,
                                      .block_bytes = 16,
                                      .assoc = assoc,
                                      .pid_tags = true};
            jobs.push_back(replay::MakeCacheJob(config, opts));
        }
    }

    std::printf("A9: parallel sweep, %zu configs over %zu records\n\n",
                jobs.size(), cap.records.size());

    // Serial baseline: the legacy one-config-at-a-time loop.
    const auto serial_start = std::chrono::steady_clock::now();
    std::vector<replay::SweepResult> serial;
    for (const replay::SweepConfig& job : jobs)
        serial.push_back(replay::ReplayOne(cap.records, job));
    const double serial_secs = SecondsSince(serial_start);

    Table table({"threads", "seconds", "configs/sec", "speedup"});
    bench::BenchReport report("a9_parallel_sweep");
    report.Add("configs_per_sec",
               static_cast<double>(jobs.size()) / serial_secs, "configs/s",
               {{"threads", "serial"}});
    table.AddRow({"serial", Table::Fmt(serial_secs, 2),
                  Table::Fmt(static_cast<double>(jobs.size()) / serial_secs,
                             1),
                  "1.00"});
    for (unsigned threads : {1u, 2u, 4u, 8u}) {
        const auto start = std::chrono::steady_clock::now();
        const auto results =
            replay::SweepRunner(threads).Run(cap.records, jobs);
        const double secs = SecondsSince(start);
        for (size_t i = 0; i < jobs.size(); ++i) {
            if (results[i].cache_stats.misses !=
                    serial[i].cache_stats.misses ||
                results[i].cache_stats.accesses !=
                    serial[i].cache_stats.accesses)
                Fatal("nondeterministic replay at config ", i, " with ",
                      threads, " threads");
        }
        report.Add("configs_per_sec",
                   static_cast<double>(jobs.size()) / secs, "configs/s",
                   {{"threads", std::to_string(threads)}});
        report.Add("speedup", serial_secs / secs, "x",
                   {{"threads", std::to_string(threads)}});
        table.AddRow({std::to_string(threads), Table::Fmt(secs, 2),
                      Table::Fmt(static_cast<double>(jobs.size()) / secs, 1),
                      Table::Fmt(serial_secs / secs, 2)});
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: identical miss counts at every thread count;\n"
                "configs/sec scales with threads up to the core count\n"
                "(flat on a single-core host).\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
