// Ablation A11: counter cross-validation over the whole workload zoo.
//
// Every workload — the six paper-style generators plus the adversarial
// zoo — is captured twice in-process: once cleanly and once against a
// sink that refuses a full drain episode (forcing the tracer through its
// degrade-and-recover path, leaving a kLoss marker in the stream). Both
// traces are then cross-checked against the machine's independent event
// counters (analysis/crosscheck.h). The run aborts on any mismatch:
// a capture whose trace disagrees with the hardware is a correctness
// bug, not a data point.
//
// Reported per workload: stream length, instructions executed, loudly
// declared loss in the degraded run, and the pass verdicts (all exact-
// match material for the regression gate), plus the banded wall-clock
// throughput of the derivation pass itself.

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "analysis/crosscheck.h"
#include "common.h"
#include "core/atum_tracer.h"
#include "core/session.h"
#include "cpu/machine.h"
#include "kernel/boot.h"
#include "trace/sink.h"
#include "util/logging.h"
#include "util/table.h"
#include "workloads/workloads.h"

namespace atum {
namespace {

/** Sink that refuses the first `failures` appends, then accepts. */
class FlakySink : public trace::TraceSink
{
  public:
    explicit FlakySink(uint64_t failures) : remaining_(failures) {}

    util::Status Append(const trace::Record& record) override
    {
        if (remaining_ > 0) {
            --remaining_;
            return util::Unavailable("sink offline");
        }
        records_.push_back(record);
        return util::OkStatus();
    }

    const std::vector<trace::Record>& records() const { return records_; }

  private:
    uint64_t remaining_;
    std::vector<trace::Record> records_;
};

struct RunOutcome {
    std::vector<trace::Record> records;
    cpu::EventCounters ev;
    uint64_t lost = 0;
};

RunOutcome
Capture(const std::string& workload, trace::TraceSink& sink,
        const std::vector<trace::Record>& records_view)
{
    cpu::Machine machine(bench::StandardMachineConfig());
    core::AtumConfig config;
    config.buffer_bytes = 64u << 10;
    config.record_opcodes = true;
    core::AtumTracer tracer(machine, sink, config);
    kernel::BootSystem(machine, {workloads::MakeWorkload(workload)});
    const core::SessionResult result =
        core::RunTraced(machine, tracer, 500'000'000);
    if (!result.halted)
        Fatal("A11: workload '", workload, "' did not halt");
    RunOutcome out;
    out.records = records_view;
    out.ev = machine.event_counters();
    out.lost = result.lost_records;
    return out;
}

int
Run()
{
    std::printf("A11: trace-vs-counter crosscheck over %zu workloads\n\n",
                workloads::AllWorkloadNames().size());

    Table table({"workload", "records", "instructions", "clean",
                 "degraded-lost", "degraded"});
    bench::BenchReport report("a11_crosscheck");
    uint64_t total_records = 0;
    double derive_seconds = 0.0;

    for (const std::string& name : workloads::AllWorkloadNames()) {
        // Clean capture: every interval must pin its counter exactly.
        trace::VectorSink clean_sink;
        const RunOutcome clean =
            Capture(name, clean_sink, clean_sink.records());

        const auto derive_start = std::chrono::steady_clock::now();
        const analysis::CrosscheckReport clean_report =
            analysis::Crosscheck(clean.records, clean.ev);
        derive_seconds += std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - derive_start)
                              .count();
        total_records += clean.records.size();
        if (!clean_report.passed())
            Fatal("A11: clean crosscheck failed for '", name, "':\n",
                  clean_report.ToString());
        if (clean.lost != 0)
            Fatal("A11: clean capture of '", name, "' lost records");

        // Degraded capture: one failed drain episode; the loss-widened
        // intervals must still cover the true counters.
        FlakySink flaky(4);
        const RunOutcome degraded = Capture(name, flaky, flaky.records());
        const analysis::CrosscheckReport degraded_report =
            analysis::Crosscheck(degraded.records, degraded.ev);
        if (!degraded_report.passed())
            Fatal("A11: degraded crosscheck failed for '", name, "':\n",
                  degraded_report.ToString());
        if (degraded.lost == 0)
            Fatal("A11: degrade drill for '", name,
                  "' lost nothing; the scenario has gone soft");

        report.Add("records", static_cast<double>(clean.records.size()),
                   "records", {{"workload", name}});
        report.Add("instructions",
                   static_cast<double>(clean.ev.instructions),
                   "records", {{"workload", name}});
        report.Add("degraded_lost", static_cast<double>(degraded.lost),
                   "records", {{"workload", name}});
        table.AddRow({name, std::to_string(clean.records.size()),
                      std::to_string(clean.ev.instructions), "pass",
                      std::to_string(degraded.lost), "pass"});
    }
    std::printf("%s\n", table.ToString().c_str());

    const double rate =
        derive_seconds > 0.0
            ? static_cast<double>(total_records) / derive_seconds
            : 0.0;
    report.Add("derive_rate", rate, "records/s", {});
    std::printf("derivation throughput: %.0f records/s over %llu records\n",
                rate, static_cast<unsigned long long>(total_records));
    std::printf("all crosschecks held\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
