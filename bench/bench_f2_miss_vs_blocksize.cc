// Experiment F2 (reconstructed): miss rate vs block size at a fixed
// 64 KiB direct-mapped cache, full-system trace.
//
// Paper shape to reproduce: growing blocks first exploits spatial
// locality (miss rate falls), with diminishing returns at large blocks as
// fewer, wider lines start thrashing — the classic curve.

#include <cstdio>

#include "analysis/compare.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    const bench::Capture full =
        bench::CaptureFullSystem(bench::MixOfDegree(3));
    cache::CacheConfig base{.size_bytes = 64u << 10, .assoc = 1};
    cache::DriverOptions opts;
    opts.flush_on_switch = true;

    const std::vector<uint32_t> blocks = {4, 8, 16, 32, 64, 128};
    const auto points =
        analysis::SweepBlockSize(full.records, blocks, base, opts);

    std::printf("F2: miss rate vs block size (64K direct-mapped, "
                "full-system trace)\n\n");
    Table table({"block", "miss%", "misses", "traffic(B/ref)"});
    bench::BenchReport report("f2_miss_vs_blocksize");
    for (size_t i = 0; i < blocks.size(); ++i) {
        const auto stats =
            analysis::SimulateCache(full.records, [&] {
                cache::CacheConfig c = base;
                c.block_bytes = blocks[i];
                return c;
            }(), opts);
        // Memory traffic: every miss moves a block (plus writebacks).
        const double traffic =
            static_cast<double>((stats.misses + stats.writebacks)) *
            blocks[i] / static_cast<double>(stats.accesses);
        report.Add("miss_rate", 100.0 * points[i].miss_rate, "%",
                   {{"block_bytes", std::to_string(blocks[i])}});
        report.Add("traffic", traffic, "B/ref",
                   {{"block_bytes", std::to_string(blocks[i])}});
        table.AddRow({
            std::to_string(blocks[i]) + "B",
            Table::Fmt(100.0 * points[i].miss_rate, 2),
            std::to_string(stats.misses),
            Table::Fmt(traffic, 2),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: miss rate falls with block size (diminishing\n"
                "returns), while bus traffic per reference keeps rising.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
