// Ablation A4: trace sampling.
//
// Full ATUM traces were expensive (20x slowdown, buffer extractions), so
// the era's follow-up question was whether *sampled* traces — attach the
// patches for a window, detach for a gap — estimate cache behaviour well.
// This harness compares miss-rate estimates from sampled captures against
// the full trace, exposing the classic cold-start bias of short windows.

#include <cstdio>

#include "analysis/compare.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

double
MissRateOf(const std::vector<trace::Record>& records)
{
    cache::CacheConfig config{.size_bytes = 16u << 10, .block_bytes = 16,
                              .assoc = 1};
    cache::DriverOptions opts;
    opts.flush_on_switch = true;
    return analysis::SimulateCache(records, config, opts).MissRate();
}

int
Run()
{
    // Reference: the full trace.
    const bench::Capture full =
        bench::CaptureFullSystem(bench::MixOfDegree(2));
    const double full_rate = MissRateOf(full.records);

    std::printf("A4: sampled capture vs full trace "
                "(16K direct-mapped, flush-on-switch)\n\n");
    std::printf("full trace: %zu records, miss rate %.3f%%\n\n",
                full.records.size(), 100.0 * full_rate);

    Table table({"window(instr)", "duty", "records", "sampled-miss%",
                 "error%"});
    bench::BenchReport report("a4_sampling");
    report.Add("full_miss_rate", 100.0 * full_rate, "%");
    for (const auto& [window, period] :
         std::vector<std::pair<uint64_t, uint64_t>>{
             {5000, 50000}, {20000, 80000}, {20000, 40000},
             {50000, 100000}}) {
        cpu::Machine machine(bench::StandardMachineConfig());
        trace::VectorSink sink;
        core::AtumTracer tracer(machine, sink);
        kernel::BootSystem(machine, bench::MixOfDegree(2));
        while (!machine.halted()) {
            tracer.Attach();
            machine.Run(window);
            tracer.Flush();
            tracer.Detach();
            if (machine.halted())
                break;
            machine.Run(period - window);
        }
        const double rate = MissRateOf(sink.records());
        report.Add("sampled_miss_rate", 100.0 * rate, "%",
                   {{"window", std::to_string(window)},
                    {"period", std::to_string(period)}});
        report.Add("error", 100.0 * (rate - full_rate) / full_rate, "%",
                   {{"window", std::to_string(window)},
                    {"period", std::to_string(period)}});
        table.AddRow({
            std::to_string(window),
            Table::Fmt(100.0 * static_cast<double>(window) /
                           static_cast<double>(period),
                       0) + "%",
            std::to_string(sink.records().size()),
            Table::Fmt(100.0 * rate, 3),
            Table::Fmt(100.0 * (rate - full_rate) / full_rate, 1),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: sampling overestimates the miss rate (cold\n"
                "windows), less so for longer windows at equal duty —\n"
                "the bias the sampling literature corrected for.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
