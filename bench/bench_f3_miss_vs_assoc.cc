// Experiment F3 (reconstructed): miss rate vs associativity at a fixed
// 64 KiB cache with 16-byte blocks, full-system trace.
//
// Paper shape to reproduce: associativity helps, with the biggest step
// from direct-mapped to 2-way; beyond 4-8 ways the returns vanish.

#include <cstdio>

#include "common.h"
#include "replay/sweep.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    const bench::Capture full =
        bench::CaptureFullSystem(bench::MixOfDegree(3));
    // A PID-tagged cache sized near the mix's footprint: conflict misses
    // are visible instead of being drowned by switch-flush cold misses.
    cache::CacheConfig base{.size_bytes = 8u << 10, .block_bytes = 16,
                            .assoc = 1, .pid_tags = true};
    cache::DriverOptions opts;

    // The associativity ladder plus the LRU-vs-random side question all
    // replay concurrently as one sweep.
    const std::vector<uint32_t> assocs = {1, 2, 4, 8};
    std::vector<replay::SweepConfig> jobs;
    for (uint32_t assoc : assocs) {
        base.assoc = assoc;
        jobs.push_back(replay::MakeCacheJob(base, opts));
    }
    cache::CacheConfig random_cfg = base;
    random_cfg.assoc = 4;
    random_cfg.replacement = cache::Replacement::kRandom;
    jobs.push_back(replay::MakeCacheJob(random_cfg, opts));
    const auto points = replay::SweepRunner().Run(full.records, jobs);

    std::printf("F3: miss rate vs associativity (8K PID-tagged, 16B blocks, "
                "full-system trace)\n\n");
    Table table({"assoc", "miss%", "improvement-vs-prev%"});
    bench::BenchReport report("f3_miss_vs_assoc");
    double prev = 0;
    for (size_t i = 0; i < assocs.size(); ++i) {
        const double m = points[i].MissRate();
        report.Add("miss_rate", 100.0 * m, "%",
                   {{"assoc", std::to_string(assocs[i])},
                    {"replacement", "lru"}});
        table.AddRow({
            std::to_string(assocs[i]) + "-way",
            Table::Fmt(100.0 * m, 3),
            i == 0 ? "-"
                   : Table::Fmt(prev > 0 ? 100.0 * (prev - m) / prev : 0.0,
                                1),
        });
        prev = m;
    }

    std::printf("%s\n", table.ToString().c_str());
    std::printf("4-way random replacement: %.3f%% (vs LRU %.3f%%)\n\n",
                100.0 * points.back().MissRate(),
                100.0 * points[2].MissRate());
    report.Add("miss_rate", 100.0 * points.back().MissRate(), "%",
               {{"assoc", "4"}, {"replacement", "random"}});
    std::printf("Shape check: largest gain 1-way -> 2-way; LRU edges out\n"
                "random at equal geometry.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
