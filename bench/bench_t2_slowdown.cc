// Experiment T2 (reconstructed): tracing slowdown.
//
// ATUM slowed the VAX 8200 by roughly 10-20x: every memory reference ran
// extra patch micro-instructions. This harness measures the dilation of
// guest micro-cycles as a function of the patch cost per record, plus the
// buffer-extraction pauses.
//
// Paper shape to reproduce: around an order of magnitude of slowdown at
// realistic patch costs, scaling linearly with the per-record cost.

#include <cstdio>

#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    auto programs = [] { return bench::MixOfDegree(2); };

    // Baseline: the same run untraced.
    cpu::Machine plain(bench::StandardMachineConfig());
    kernel::BootSystem(plain, programs());
    const auto base = core::RunUntraced(plain, 400'000'000);
    if (!base.halted)
        Fatal("baseline run did not halt");

    std::printf("T2: microcode tracing slowdown (untraced = %llu ucycles, "
                "%llu instructions)\n\n",
                static_cast<unsigned long long>(base.ucycles),
                static_cast<unsigned long long>(base.instructions));

    Table table({"cost/record(uc)", "records", "traced-ucycles", "slowdown",
                 "overhead%"});
    bench::BenchReport report("t2_slowdown");
    for (uint32_t cost : {1u, 8u, 16u, 32u, 64u, 128u}) {
        core::AtumConfig config;
        config.cost_per_record = cost;
        const bench::Capture cap =
            bench::CaptureFullSystem(programs(), config);
        if (cap.session.instructions != base.instructions)
            Fatal("tracing perturbed the instruction stream");
        const double slowdown = static_cast<double>(cap.session.ucycles) /
                                static_cast<double>(base.ucycles);
        report.Add("slowdown", slowdown, "x",
                   {{"cost_per_record", std::to_string(cost)}});
        table.AddRow({
            std::to_string(cost),
            std::to_string(cap.session.records),
            std::to_string(cap.session.ucycles),
            Table::Fmt(slowdown, 2),
            Table::Fmt(100.0 *
                           static_cast<double>(cap.session.overhead_ucycles) /
                           static_cast<double>(cap.session.ucycles),
                       1),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("Shape check: slowdown grows linearly with patch cost and\n"
                "reaches the paper's ~10-20x regime at 64-128 ucycles/record\n"
                "(the library default is 64).\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
