// Ablation A12: the serve daemon under load and under the axe.
//
// Three measurements against a ServeCore in drill mode on an in-memory
// disk (no host filesystem, no thread scheduling noise in the
// deterministic rows):
//
//   1. Admission latency — wall time of one submit round-trip, which
//      includes the J1 journal append+fsync the ack waits on, as p50/p99
//      across a burst of submissions; plus the deterministic shed count
//      when the burst overruns a bounded queue (kResourceExhausted).
//   2. Job throughput — jobs drained per second through the fair-share
//      scheduler, with the deterministic record total they produced.
//   3. Kill-restart recovery — a mixed-fault serve campaign
//      (chaos/campaign.h): power cuts, ENOSPC, torn renames against the
//      whole daemon, recovered and invariant-checked. Aborts on any
//      violation; reports the deterministic cut/resume/salvage counts.
//
// Latency and throughput are wall-clock (banded in the regression gate);
// everything else is deterministic and exact-matched.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "chaos/campaign.h"
#include "common.h"
#include "io/mem_vfs.h"
#include "obs/metrics.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "util/logging.h"
#include "util/table.h"

namespace atum {
namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t kBurst = 128;     // submissions in the latency burst
constexpr uint32_t kQueueDepth = 8;  // bounded queue for the shed row
constexpr uint32_t kShedBurst = 24;  // submissions thrown at it

double
Percentile(std::vector<uint64_t> sorted_us, double p)
{
    if (sorted_us.empty())
        return 0.0;
    const size_t idx = static_cast<size_t>(
        p * static_cast<double>(sorted_us.size() - 1) / 100.0 + 0.5);
    return static_cast<double>(sorted_us[std::min(idx,
                                                  sorted_us.size() - 1)]);
}

serve::ServeConfig
BenchConfig()
{
    serve::ServeConfig config;
    config.dir = ".";
    config.workers = 0;  // drill mode: synchronous, deterministic
    config.buffer_bytes = 4u << 10;
    config.chunk_records = 64;
    config.checkpoint_every_fills = 1;
    config.keep_checkpoints = 2;
    config.admission.max_queue_depth = kBurst + 8;
    config.admission.max_per_tenant = kBurst + 8;
    config.admission.default_max_instructions = 4000;
    return config;
}

std::string
SubmitPayload(uint32_t tenant)
{
    serve::Request request;
    request.op = serve::RequestOp::kSubmit;
    request.tenant = "tenant-" + std::to_string(tenant % 4);
    request.workload = "grep";
    return serve::SerializeRequest(request);
}

int
Run()
{
    bench::BenchReport report("a12_serve");
    Table table({"metric", "value", "unit"});

    // -- 1. admission latency + shed ---------------------------------------
    io::MemVfs vfs;
    obs::Registry registry;
    serve::ServeCore core(BenchConfig(), vfs, &registry);
    if (!core.Start().ok())
        Fatal("A12: daemon failed to start");

    std::vector<uint64_t> admit_us;
    admit_us.reserve(kBurst);
    for (uint32_t i = 0; i < kBurst; ++i) {
        const std::string payload = SubmitPayload(i);
        const Clock::time_point t0 = Clock::now();
        const std::string response = core.HandleRequest(payload);
        const Clock::time_point t1 = Clock::now();
        if (!serve::ResponseStatus(response).ok())
            Fatal("A12: burst submission refused: ", response);
        admit_us.push_back(static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::microseconds>(t1 - t0)
                .count()));
    }
    std::sort(admit_us.begin(), admit_us.end());
    const double admit_p50 = Percentile(admit_us, 50);
    const double admit_p99 = Percentile(admit_us, 99);
    report.Add("admit_latency_p50", admit_p50, "us", {});
    report.Add("admit_latency_p99", admit_p99, "us", {});
    table.AddRow({"admit p50", Table::Fmt(admit_p50, 0), "us"});
    table.AddRow({"admit p99", Table::Fmt(admit_p99, 0), "us"});

    // -- 2. job throughput -------------------------------------------------
    const Clock::time_point run0 = Clock::now();
    uint32_t completed = 0;
    while (core.RunNextQueuedJob())
        ++completed;
    const double run_s =
        std::chrono::duration<double>(Clock::now() - run0).count();
    if (completed != kBurst)
        Fatal("A12: drained ", completed, " of ", kBurst, " jobs");

    uint64_t records_total = 0;
    for (const serve::JobInfo& job : core.Jobs()) {
        if (job.state != serve::JobState::kDone)
            Fatal("A12: job did not finish: id ", job.id, " ", job.detail);
        records_total += job.records;
    }
    core.Shutdown();
    const double throughput =
        run_s > 0.0 ? static_cast<double>(completed) / run_s : 0.0;
    report.Add("job_throughput", throughput, "/s", {});
    report.Add("jobs_completed", static_cast<double>(completed), "jobs", {});
    report.Add("records_total", static_cast<double>(records_total),
               "records", {});
    table.AddRow({"throughput", Table::Fmt(throughput, 1), "jobs/s"});
    table.AddRow({"records", std::to_string(records_total), "records"});

    // -- shed behavior under overload (deterministic) ----------------------
    io::MemVfs shed_vfs;
    obs::Registry shed_registry;
    serve::ServeConfig shed_config = BenchConfig();
    shed_config.admission.max_queue_depth = kQueueDepth;
    serve::ServeCore shed_core(shed_config, shed_vfs, &shed_registry);
    if (!shed_core.Start().ok())
        Fatal("A12: shed daemon failed to start");
    uint32_t shed = 0;
    for (uint32_t i = 0; i < kShedBurst; ++i) {
        const util::Status status = serve::ResponseStatus(
            shed_core.HandleRequest(SubmitPayload(i)));
        if (status.code() == util::StatusCode::kResourceExhausted)
            ++shed;
        else if (!status.ok())
            Fatal("A12: unexpected refusal: ", status.ToString());
    }
    shed_core.Shutdown();
    if (shed != kShedBurst - kQueueDepth)
        Fatal("A12: expected ", kShedBurst - kQueueDepth, " sheds, got ",
              shed);
    report.Add("jobs_shed", static_cast<double>(shed), "jobs", {});
    table.AddRow({"shed at depth " + std::to_string(kQueueDepth),
                  std::to_string(shed), "jobs"});

    // -- 3. kill-restart recovery campaign ---------------------------------
    chaos::ServeCampaignSpec spec;
    spec.campaigns = {"powercut", "enospc", "torn-rename"};
    spec.jobs = 3;
    spec.max_instructions = 4000;
    util::StatusOr<chaos::ServeCampaignResult> campaign =
        chaos::RunServeCampaign(spec, /*first_seed=*/1, /*seeds=*/10,
                                [](const chaos::ServeSeedResult& r) {
                                    if (!r.ok())
                                        Fatal("A12: invariant violated: ",
                                              r.Summary());
                                });
    if (!campaign.ok())
        Fatal("A12: campaign failed to run: ",
              campaign.status().ToString());
    report.Add("drill_power_cuts",
               static_cast<double>(campaign->power_cuts), "cuts", {});
    report.Add("drill_resumes", static_cast<double>(campaign->resumes),
               "jobs", {});
    report.Add("drill_salvages", static_cast<double>(campaign->salvages),
               "jobs", {});
    table.AddRow({"drill cuts/resumes/salvages",
                  std::to_string(campaign->power_cuts) + "/" +
                      std::to_string(campaign->resumes) + "/" +
                      std::to_string(campaign->salvages),
                  ""});

    // -- 4. hostile-wire drill + exactly-once dedup (deterministic) --------
    // A small net campaign (chaos stream seam, docs/SERVE.md "Network
    // failure model") plus a duplicate-token burst, reporting the
    // serve.net.* side of the daemon: faults absorbed, kill-restarts,
    // retries deduplicated, and the dup_token_hits counter itself.
    constexpr uint32_t kDupBurst = 16;
    io::MemVfs net_vfs;
    obs::Registry net_registry;
    serve::ServeCore net_core(BenchConfig(), net_vfs, &net_registry);
    if (!net_core.Start().ok())
        Fatal("A12: net daemon failed to start");
    serve::Request tokened;
    tokened.op = serve::RequestOp::kSubmit;
    tokened.workload = "grep";
    tokened.client_token = "a12-dup-token";
    const std::string tokened_payload = serve::SerializeRequest(tokened);
    for (uint32_t i = 0; i < kDupBurst; ++i)
        if (!serve::ResponseStatus(net_core.HandleRequest(tokened_payload))
                 .ok())
            Fatal("A12: tokened submit refused");
    net_core.Shutdown();
    const uint64_t dup_hits =
        net_registry.GetCounter("serve.net.dup_token_hits").value();
    if (dup_hits != kDupBurst - 1)
        Fatal("A12: expected ", kDupBurst - 1, " dup token hits, got ",
              dup_hits);
    report.Add("net_dup_token_hits", static_cast<double>(dup_hits),
               "hits", {});
    table.AddRow({"serve.net.dup_token_hits",
                  std::to_string(dup_hits),
                  "of " + std::to_string(kDupBurst) + " sends"});

    chaos::NetCampaignSpec net_spec;
    net_spec.campaigns = {"net-flaky", "net-cut", "net-flip",
                          "net-stall", "net-dup", "net-kill"};
    net_spec.submits = 3;
    net_spec.max_instructions = 2000;
    util::StatusOr<chaos::NetCampaignResult> net_campaign =
        chaos::RunNetCampaign(net_spec, /*first_seed=*/1, /*seeds=*/10,
                              [](const chaos::NetSeedResult& r) {
                                  if (!r.ok())
                                      Fatal("A12: net invariant violated: ",
                                            r.Summary());
                              });
    if (!net_campaign.ok())
        Fatal("A12: net campaign failed to run: ",
              net_campaign.status().ToString());
    report.Add("net_faults_fired",
               static_cast<double>(net_campaign->faults_fired), "faults",
               {});
    report.Add("net_kills", static_cast<double>(net_campaign->kills),
               "kills", {});
    report.Add("net_acks", static_cast<double>(net_campaign->acks), "acks",
               {});
    report.Add("net_dup_acks", static_cast<double>(net_campaign->dup_acks),
               "acks", {});
    report.Add("net_retries", static_cast<double>(net_campaign->retries),
               "retries", {});
    table.AddRow({"net faults/kills",
                  std::to_string(net_campaign->faults_fired) + "/" +
                      std::to_string(net_campaign->kills),
                  ""});
    table.AddRow({"net acks (dedup)/retries",
                  std::to_string(net_campaign->acks) + " (" +
                      std::to_string(net_campaign->dup_acks) + ")/" +
                      std::to_string(net_campaign->retries),
                  ""});

    std::printf("A12: serve daemon, %u-job burst, drill mode\n\n%s\n",
                kBurst, table.ToString().c_str());
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
