// Experiment F5 (reconstructed): working-set size vs window, full-system
// vs user-only views of the same execution.
//
// Paper shape to reproduce: including operating-system references (and
// the other processes of the mix) substantially enlarges the working set
// at every window size — memory sizing studies based on user-only traces
// understated real requirements.

#include <cstdio>

#include "analysis/working_set.h"
#include "common.h"
#include "util/table.h"

namespace atum {
namespace {

int
Run()
{
    const bench::Capture cap =
        bench::CaptureFullSystem(bench::MixOfDegree(3));

    const std::vector<uint64_t> windows = {100,    300,    1000,  3000,
                                           10000,  30000,  100000};
    analysis::WorkingSetAnalyzer full(windows);
    analysis::WorkingSetAnalyzer user_all(windows);  // all user processes
    analysis::WorkingSetAnalyzer kernel_only(windows);
    for (const trace::Record& r : cap.records) {
        full.Feed(r);
        if (!r.IsMemory() || r.type == trace::RecordType::kPte)
            continue;
        if (r.kernel())
            kernel_only.Feed(r);
        else
            user_all.Feed(r);
    }

    std::printf("F5: average working-set size (512B pages) vs window\n\n");
    Table table({"window(refs)", "full-system", "user-only", "kernel-only",
                 "full/user"});
    bench::BenchReport report("f5_working_sets");
    for (size_t i = 0; i < windows.size(); ++i) {
        const double f = full.AverageWorkingSet(i);
        const double u = user_all.AverageWorkingSet(i);
        report.Add("working_set", f, "pages",
                   {{"window", std::to_string(windows[i])},
                    {"view", "full-system"}});
        report.Add("working_set", u, "pages",
                   {{"window", std::to_string(windows[i])},
                    {"view", "user-only"}});
        table.AddRow({
            std::to_string(windows[i]),
            Table::Fmt(f, 1),
            Table::Fmt(u, 1),
            Table::Fmt(kernel_only.AverageWorkingSet(i), 1),
            Table::Fmt(u > 0 ? f / u : 0.0, 2),
        });
    }
    std::printf("%s\n", table.ToString().c_str());
    std::printf("distinct pages: full=%llu user=%llu kernel=%llu\n\n",
                static_cast<unsigned long long>(full.distinct_pages()),
                static_cast<unsigned long long>(user_all.distinct_pages()),
                static_cast<unsigned long long>(kernel_only.distinct_pages()));
    std::printf("Shape check: the full-system working set exceeds the\n"
                "user-only one at every window.\n");
    return 0;
}

}  // namespace
}  // namespace atum

int
main()
{
    return atum::Run();
}
